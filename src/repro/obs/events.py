"""The versioned event API: one typed vocabulary for every JSONL line.

Three subsystems used to emit ad-hoc dicts with overlapping-but-divergent
shapes: :mod:`repro.service.telemetry` (the trace file),
:mod:`repro.service.ledger` (the crash journal), and the batch summary.
Learning-based consumers — algorithm selectors trained on per-point
cost/visit telemetry, dashboards, regression tooling — need a schema
they can rely on across releases.  This module is that contract:

* every event is a frozen **dataclass** with explicit fields;
* every serialized record carries ``schema_version`` (currently
  ``1``) plus an ``event`` discriminator;
* records **round-trip**: ``from_json(event.to_json()) == event``;
* unknown-but-newer fields survive a round trip through the ``extra``
  mapping (forward compatibility), while :func:`validate_record` —
  the CI gate — rejects them, so the *emitters* in this repository
  cannot drift from the schema unnoticed;
* pre-versioning JSONL lines (the "v0" shape, identical field names but
  no ``schema_version``) remain readable through :func:`upgrade_v0`,
  which :func:`from_record` applies automatically.

Versioning policy (also documented in DESIGN.md §6.4): additions of
optional fields bump nothing; renaming/removing a field or changing a
field's meaning bumps ``SCHEMA_VERSION`` and adds an upgrade shim here,
next to ``upgrade_v0``.  Consumers should dispatch on ``event`` and
tolerate additive fields; producers must emit exactly the typed shapes.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, ClassVar, Dict, List, Mapping, Optional, Tuple, Type

#: The schema version stamped on every emitted record.
SCHEMA_VERSION = 1

#: Versions :func:`from_record` knows how to read.  ``0`` is the
#: pre-versioning shape, upgraded in place by :func:`upgrade_v0`.
SUPPORTED_VERSIONS = (0, 1)

#: Transport-layer fields the durable-journal framing adds to records on
#: disk (see :mod:`repro.durable.journal`).  They are not part of any
#: event's schema — both the codec and the CI validator strip them
#: before looking at the record, the same way an IP stack strips its
#: checksum before handing a packet up.
FRAME_FIELDS = ("crc32",)


class EventSchemaError(ValueError):
    """A record does not conform to the event schema."""


_REGISTRY: Dict[str, Type["EventBase"]] = {}


def _register(cls: Type["EventBase"]) -> Type["EventBase"]:
    _REGISTRY[cls.EVENT] = cls
    return cls


class EventBase:
    """Shared (de)serialization for the typed events.

    Subclasses are frozen dataclasses; ``extra`` carries fields a newer
    producer added, so older readers do not destroy information.
    """

    EVENT: ClassVar[str] = ""

    def to_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"event": self.EVENT}
        for spec in dataclasses.fields(self):
            if spec.name == "extra":
                continue
            record[spec.name] = getattr(self, spec.name)
        record.update(getattr(self, "extra", {}))
        return record

    def to_json(self) -> str:
        return json.dumps(self.to_record())

    @property
    def name(self) -> str:
        return self.EVENT


# -- telemetry events ---------------------------------------------------------

@_register
@dataclass(frozen=True)
class BatchStart(EventBase):
    EVENT: ClassVar[str] = "batch_start"
    ts: float
    jobs: int
    workers: int
    cache: Optional[str] = None
    manifest: Optional[str] = None
    resumed_jobs: int = 0
    schema_version: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class JobStart(EventBase):
    EVENT: ClassVar[str] = "job_start"
    ts: float
    job_id: str
    attempt: int
    schema_version: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class JobFinish(EventBase):
    """One attempt succeeded; carries the worker's full result counters."""

    EVENT: ClassVar[str] = "job_finish"
    ts: float
    job_id: str
    attempt: int
    selected_unroll: Optional[List[int]] = None
    program: Optional[str] = None
    board: Optional[str] = None
    cycles: Optional[int] = None
    space: Optional[int] = None
    speedup: Optional[float] = None
    points_searched: Optional[int] = None
    design_space_size: Optional[int] = None
    cache_hits: Optional[int] = None
    cache_misses: Optional[int] = None
    cache_evictions: Optional[int] = None
    cache_save_error: Optional[str] = None
    estimator_retries: Optional[int] = None
    deadline_hits: Optional[int] = None
    wall_seconds: Optional[float] = None
    phase_seconds: Optional[Mapping[str, float]] = None
    infeasible_count: Optional[int] = None
    baseline_degraded: Optional[bool] = None
    strategy: Optional[str] = None
    schema_version: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class StrategySelected(EventBase):
    """``--strategy auto`` resolved: which algorithm the selector picked
    for one job's design space, and from what evidence."""

    EVENT: ClassVar[str] = "strategy_selected"
    ts: float
    job_id: str
    strategy: str
    reason: str = ""
    features: Optional[Mapping[str, Any]] = None
    schema_version: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class StrategyOutcome(EventBase):
    """One strategy's scored run: the win-rate ledger's unit of
    evidence.  ``won`` means the walk found a real speedup without
    degrading the baseline; ``win_rate``/``trials`` snapshot the
    scoreboard *after* folding this outcome."""

    EVENT: ClassVar[str] = "strategy_outcome"
    ts: float
    job_id: str
    strategy: str
    won: bool = False
    speedup: Optional[float] = None
    points_searched: Optional[int] = None
    trials: int = 0
    win_rate: float = 0.0
    schema_version: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class JobRetry(EventBase):
    EVENT: ClassVar[str] = "job_retry"
    ts: float
    job_id: str
    attempt: int
    reason: str = ""
    kind: str = "exception"
    transient: bool = True
    schema_version: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class JobFailed(EventBase):
    EVENT: ClassVar[str] = "job_failed"
    ts: float
    job_id: str
    attempt: int
    reason: str = ""
    kind: str = "exception"
    transient: bool = False
    schema_version: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class JobResumed(EventBase):
    """A resumed run adopted this job's ledger result without re-running."""

    EVENT: ClassVar[str] = "job_resumed"
    ts: float
    job_id: str
    status: str = "ok"
    attempts: int = 1
    schema_version: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class PoolUnavailable(EventBase):
    EVENT: ClassVar[str] = "pool_unavailable"
    ts: float
    error: str = ""
    schema_version: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class BatchFinish(EventBase):
    EVENT: ClassVar[str] = "batch_finish"
    ts: float
    succeeded: int
    failed: int
    resumed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    points_synthesized: int = 0
    telemetry_dropped: int = 0
    ledger_dropped: int = 0
    schema_version: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)


# -- ledger events ------------------------------------------------------------

@_register
@dataclass(frozen=True)
class RunStart(EventBase):
    EVENT: ClassVar[str] = "run_start"
    ts: float
    fingerprint: str
    jobs: int = 0
    manifest_source: Optional[str] = None
    schema_version: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class RunResume(EventBase):
    EVENT: ClassVar[str] = "run_resume"
    ts: float
    completed: int = 0
    in_flight: int = 0
    schema_version: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class JobAttempt(EventBase):
    EVENT: ClassVar[str] = "job_attempt"
    ts: float
    job_id: str
    attempt: int = 1
    spec_hash: Optional[str] = None
    schema_version: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class JobDone(EventBase):
    """A job's terminal journal record (payload xor failure set)."""

    EVENT: ClassVar[str] = "job_done"
    ts: float
    job_id: str
    status: str = "ok"
    attempts: int = 1
    spec_hash: Optional[str] = None
    payload: Optional[Mapping[str, Any]] = None
    failure: Optional[Mapping[str, Any]] = None
    schema_version: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class RunFinish(EventBase):
    EVENT: ClassVar[str] = "run_finish"
    ts: float
    succeeded: int = 0
    failed: int = 0
    schema_version: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)


# -- fleet events -------------------------------------------------------------

@_register
@dataclass(frozen=True)
class WorkerRegistered(EventBase):
    """A worker was granted (or re-granted) a lease."""

    EVENT: ClassVar[str] = "worker_registered"
    ts: float
    worker: str
    ttl_s: float = 0.0
    schema_version: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class LeaseRenewed(EventBase):
    EVENT: ClassVar[str] = "lease_renewed"
    ts: float
    worker: str
    schema_version: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class LeaseExpired(EventBase):
    """A worker's lease lapsed; its shards are about to be rehomed."""

    EVENT: ClassVar[str] = "lease_expired"
    ts: float
    worker: str
    schema_version: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class ShardDispatched(EventBase):
    EVENT: ClassVar[str] = "shard_dispatched"
    ts: float
    shard_id: str
    job_id: str
    worker: str
    points: int = 0
    schema_version: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class ShardRehomed(EventBase):
    """An orphaned shard went back to the front of the dispatch queue."""

    EVENT: ClassVar[str] = "shard_rehomed"
    ts: float
    shard_id: str
    job_id: str
    from_worker: str = ""
    schema_version: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class ShardDone(EventBase):
    """One shard's terminal record; ``result`` is the full point set the
    deterministic merge folds."""

    EVENT: ClassVar[str] = "shard_done"
    ts: float
    shard_id: str
    job_id: str
    worker: str = ""
    result: Optional[Mapping[str, Any]] = None
    schema_version: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)


# -- durable-journal events ---------------------------------------------------

@_register
@dataclass(frozen=True)
class JournalSnapshot(EventBase):
    """A compaction checkpoint: the folded state of every retired
    segment, written as the first record of a fresh segment.

    Replay resets to ``state`` and continues with subsequent events, so
    a compacted journal folds to exactly the state the uncompacted one
    did (see DESIGN.md §6.8 for the crash-window argument).
    """

    EVENT: ClassVar[str] = "journal_snapshot"
    ts: float
    journal: str
    state: Mapping[str, Any] = field(default_factory=dict)
    folded_segments: int = 0
    folded_records: int = 0
    schema_version: int = SCHEMA_VERSION
    extra: Mapping[str, Any] = field(default_factory=dict)


# -- the escape hatch ---------------------------------------------------------

@dataclass(frozen=True)
class GenericEvent(EventBase):
    """A structurally sound record whose name this schema predates.

    Produced only by non-strict :func:`from_record` so tooling can
    stream past events injected by tests or future producers; never
    accepted by :func:`validate_record`.
    """

    event: str = ""
    ts: float = 0.0
    schema_version: int = SCHEMA_VERSION
    data: Mapping[str, Any] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        return {
            "event": self.event,
            "ts": self.ts,
            "schema_version": self.schema_version,
            **self.data,
        }

    @property
    def name(self) -> str:
        return self.event


# -- codec --------------------------------------------------------------------

def event_types() -> Dict[str, Type[EventBase]]:
    """The event-name -> dataclass registry (a copy)."""
    return dict(_REGISTRY)


def upgrade_v0(record: Mapping[str, Any]) -> Dict[str, Any]:
    """Lift a pre-versioning record to v1.

    The v0 vocabulary used the same event names and field names as v1 —
    the only difference is the absent ``schema_version`` — so the shim
    stamps the version and leaves everything else in place.  A future
    v1 -> v2 shim would live next to this one.
    """
    upgraded = dict(record)
    upgraded["schema_version"] = SCHEMA_VERSION
    return upgraded


def from_record(record: Mapping[str, Any], strict: bool = False) -> EventBase:
    """Decode one JSONL record into its typed event.

    Non-strict (the default) is the *reader* posture: v0 records are
    upgraded, unknown event names become :class:`GenericEvent`, and
    unknown fields ride in ``extra``.  Strict is the *producer-audit*
    posture used by CI: anything the schema does not name is an
    :class:`EventSchemaError`.
    """
    if not isinstance(record, Mapping):
        raise EventSchemaError(f"event record must be an object, got {type(record).__name__}")
    body = dict(record)
    for frame_field in FRAME_FIELDS:
        body.pop(frame_field, None)
    name = body.pop("event", None)
    if not isinstance(name, str) or not name:
        raise EventSchemaError("record has no 'event' discriminator")
    if "schema_version" not in body:
        if strict:
            raise EventSchemaError(f"{name}: record carries no schema_version")
        body = upgrade_v0(body)
    version = body.get("schema_version")
    if version not in SUPPORTED_VERSIONS:
        raise EventSchemaError(f"{name}: unsupported schema_version {version!r}")
    cls = _REGISTRY.get(name)
    if cls is None:
        if strict:
            raise EventSchemaError(f"unknown event {name!r}")
        ts = body.pop("ts", 0.0)
        version = body.pop("schema_version")
        return GenericEvent(event=name, ts=ts, schema_version=version, data=body)
    known = {spec.name for spec in dataclasses.fields(cls)} - {"extra"}
    fields = {key: value for key, value in body.items() if key in known}
    extra = {key: value for key, value in body.items() if key not in known}
    if strict and extra:
        raise EventSchemaError(f"{name}: unknown fields {sorted(extra)}")
    try:
        return cls(extra=extra, **fields)
    except TypeError as error:
        raise EventSchemaError(f"{name}: {error}") from None


def from_json(line: str, strict: bool = False) -> EventBase:
    """Decode one JSONL line (see :func:`from_record`)."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as error:
        raise EventSchemaError(f"not valid JSON: {error}") from None
    return from_record(record, strict=strict)


def validate_record(record: Any) -> List[str]:
    """Audit one record against the v1 schema; returns the problems.

    This is the CI gate over emitted streams: the record must name a
    known event, carry a supported ``schema_version`` explicitly, supply
    every required field, and introduce no fields the schema does not
    declare.  An empty list means the record conforms.
    """
    if not isinstance(record, Mapping):
        return [f"record must be an object, got {type(record).__name__}"]
    record = {k: v for k, v in record.items() if k not in FRAME_FIELDS}
    name = record.get("event")
    if not isinstance(name, str) or not name:
        return ["record has no 'event' discriminator"]
    problems: List[str] = []
    cls = _REGISTRY.get(name)
    if cls is None:
        return [f"unknown event {name!r}"]
    version = record.get("schema_version")
    if version is None:
        problems.append(f"{name}: missing schema_version")
    elif version != SCHEMA_VERSION:
        problems.append(f"{name}: schema_version {version!r} != {SCHEMA_VERSION}")
    specs = [s for s in dataclasses.fields(cls) if s.name != "extra"]
    known = {s.name for s in specs}
    for spec in specs:
        required = (
            spec.default is dataclasses.MISSING
            and spec.default_factory is dataclasses.MISSING  # type: ignore[misc]
        )
        if required and spec.name not in record:
            problems.append(f"{name}: missing required field {spec.name!r}")
    unknown = sorted(set(record) - known - {"event"})
    if unknown:
        problems.append(f"{name}: unknown fields {unknown}")
    return problems


def validate_jsonl(path: Path) -> List[str]:
    """Validate every line of a JSONL event stream; returns all
    problems, each prefixed with its 1-based line number."""
    problems: List[str] = []
    try:
        text = Path(path).read_text()
    except OSError as error:
        return [f"cannot read {path}: {error}"]
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            problems.append(f"line {lineno}: not valid JSON: {error}")
            continue
        for problem in validate_record(record):
            problems.append(f"line {lineno}: {problem}")
    return problems


def read_events(path: Path, strict: bool = False) -> List[EventBase]:
    """Load a JSONL event stream into typed events, skipping torn lines
    (non-strict) the way the telemetry reader always has."""
    events: List[EventBase] = []
    try:
        text = Path(path).read_text()
    except OSError:
        return events
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(from_json(line, strict=strict))
        except EventSchemaError:
            if strict:
                raise
            continue
    return events
