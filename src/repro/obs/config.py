"""Observability configuration — the single knob callers pass around.

``ObsConfig`` is the keyword-only bundle the redesigned APIs
(:func:`repro.dse.explore` via ``ExploreConfig.obs``, the batch worker)
accept instead of growing tracer/registry/path kwargs one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NullTracer, Tracer


@dataclass
class ObsConfig:
    """How one exploration (or batch) should be observed.

    Attributes:
        enabled: master switch; ``False`` wires the null tracer in even
            when one was supplied, so a config can be toggled without
            being rebuilt.
        tracer: the span sink.  When ``None`` and ``enabled``, the
            consumer creates a :class:`~repro.obs.trace.Tracer` and
            stores it back on this field so the caller can read the
            spans afterwards.
        metrics: the metrics sink; same create-and-store-back contract
            as ``tracer``.
        spans_path: when set, finished spans are also appended to this
            JSONL file (the batch engine points it at
            ``<run-dir>/spans.jsonl``).
    """

    enabled: bool = True
    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None
    spans_path: Optional[Path] = None

    def ensure(self) -> "ObsConfig":
        """Materialize the sinks this config implies (in place)."""
        if not self.enabled:
            return self
        if self.tracer is None:
            self.tracer = Tracer()
        if self.metrics is None:
            self.metrics = MetricsRegistry()
        return self

    def active_tracer(self):
        """The tracer consumers should install (null when disabled)."""
        if not self.enabled:
            return NullTracer()
        self.ensure()
        return self.tracer
