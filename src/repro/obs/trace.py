"""Structured tracing: spans with monotonic timing and nesting.

The DSE service's headline claim is *search efficiency* — the guided
walk visits a fraction of a percent of the design space — but "where did
the time and the visits go" must be answerable from a recorded run, not
by re-executing it.  A :class:`Span` is one timed region (a pipeline
stage, an estimator call, a design-point evaluation) with a name, a
duration measured on a monotonic clock, a wall-clock anchor for
cross-process ordering, parent/child nesting, and free-form attributes
(kernel, board, unroll vector, outcome).  A :class:`Tracer` collects
spans; the batch worker ships them back to the coordinator, which
appends them to ``<run-dir>/spans.jsonl`` for ``repro trace`` to render.

Design constraints, in order:

* **Zero cost when off.**  The ambient tracer defaults to
  :class:`NullTracer`, whose ``span()`` is a reusable no-op context
  manager — instrumented hot paths (every design-point evaluation) pay
  one global read and one method call.
* **Deterministic under test.**  Both clocks are injectable: a tracer
  built with a fake monotonic clock produces byte-identical span
  records, which is how the unit suite pins nesting and timing.
* **Nothing rich crosses the pipe.**  Spans serialize to primitives-only
  dicts (``to_dict``/``from_dict``); attribute values must be
  JSON-representable scalars or lists thereof.

Instrumented code reaches the tracer ambiently::

    from repro.obs import current_tracer

    with current_tracer().span("pipeline.unroll", kernel=name) as span:
        ...
        span.set_attribute("registers_added", n)

and an orchestration layer (the batch worker, ``explore()`` with an
:class:`~repro.obs.config.ObsConfig`) installs a real tracer around a
region with :func:`use_tracer`.  The ambient slot is a plain module
global, not a context variable, so helper threads (the estimation
guard's deadline reaper) see the same tracer as the thread that
installed it.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional

#: Schema version stamped on every serialized span record (shared with
#: the event schema in :mod:`repro.obs.events`).
SPAN_SCHEMA_VERSION = 1


class Span:
    """One timed, named, attributed region of execution."""

    __slots__ = (
        "name", "span_id", "parent_id", "t_wall", "duration_s",
        "attributes", "status", "_start_mono",
    )

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: Optional[str] = None,
        t_wall: float = 0.0,
        attributes: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        #: wall-clock anchor (epoch seconds) — orders spans *across*
        #: processes, where monotonic clocks are incomparable.
        self.t_wall = t_wall
        #: monotonic duration; ``None`` while the span is open.
        self.duration_s: Optional[float] = None
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.status = "ok"
        self._start_mono = 0.0

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": SPAN_SCHEMA_VERSION,
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t_wall": self.t_wall,
            "duration_s": self.duration_s,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "Span":
        span = cls(
            name=str(record.get("name", "")),
            span_id=str(record.get("span_id", "")),
            parent_id=record.get("parent_id"),
            t_wall=float(record.get("t_wall", 0.0)),
            attributes=dict(record.get("attributes") or {}),
        )
        duration = record.get("duration_s")
        span.duration_s = None if duration is None else float(duration)
        span.status = str(record.get("status", "ok"))
        return span

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, duration={self.duration_s})"
        )


class _NullSpan:
    """The no-op span the :class:`NullTracer` hands out."""

    __slots__ = ()

    def set_attribute(self, key: str, value: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """A tracer that records nothing — the zero-overhead default."""

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[_NullSpan]:
        yield _NULL_SPAN

    @property
    def finished(self) -> List[Span]:
        return []

    def to_dicts(self) -> List[Dict[str, Any]]:
        return []


class Tracer:
    """Collects spans with parent/child nesting.

    Args:
        clock: monotonic clock for durations (injectable for
            deterministic tests).
        wall: wall clock for cross-process anchors.
        base_attributes: merged into every span this tracer opens —
            the batch worker stamps ``job`` here so a run's combined
            span file can be grouped per job.

    Span ids are sequential (``s1``, ``s2``, ...) in open order, so a
    tracer driven by a fake clock is fully deterministic.
    """

    def __init__(
        self,
        clock=time.monotonic,
        wall=time.time,
        base_attributes: Optional[Mapping[str, Any]] = None,
    ):
        self._clock = clock
        self._wall = wall
        self._base = dict(base_attributes or {})
        self._stack: List[Span] = []
        self._next_id = 1
        #: spans in *finish* order (children before parents).
        self.finished: List[Span] = []

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a child of the innermost open span; record on exit.

        An escaping exception marks the span ``status="error"`` with the
        exception class name in the ``error`` attribute, then
        propagates — tracing never swallows failures.
        """
        span = Span(
            name=name,
            span_id=f"s{self._next_id}",
            parent_id=self._stack[-1].span_id if self._stack else None,
            t_wall=self._wall(),
            attributes={**self._base, **attributes},
        )
        self._next_id += 1
        span._start_mono = self._clock()
        self._stack.append(span)
        try:
            yield span
        except BaseException as error:
            span.status = "error"
            span.set_attribute("error", type(error).__name__)
            raise
        finally:
            span.duration_s = self._clock() - span._start_mono
            if self._stack and self._stack[-1] is span:
                self._stack.pop()
            else:  # defensive: a helper thread unbalanced the stack
                try:
                    self._stack.remove(span)
                except ValueError:
                    pass
            self.finished.append(span)

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.finished]

    def write_jsonl(self, path: Path, mode: str = "w") -> None:
        """Dump finished spans, one JSON object per line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, mode) as stream:
            for span in self.finished:
                stream.write(json.dumps(span.to_dict()) + "\n")


def read_spans(path: Path) -> List[Span]:
    """Load a spans JSONL file, skipping torn/unparseable lines (a
    killed run legitimately truncates its tail)."""
    spans: List[Span] = []
    try:
        text = Path(path).read_text()
    except OSError:
        return spans
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict):
            spans.append(Span.from_dict(record))
    return spans


# -- the ambient tracer -------------------------------------------------------

_current: Any = NullTracer()


def current_tracer():
    """The ambient tracer instrumented code records against."""
    return _current


@contextmanager
def use_tracer(tracer) -> Iterator[Any]:
    """Install ``tracer`` as the ambient tracer for a region.

    A module global rather than a context variable on purpose: the
    estimation guard's deadline reaper thread must observe the same
    tracer as its parent, which contextvars do not provide.
    """
    global _current
    previous = _current
    _current = tracer
    try:
        yield tracer
    finally:
        _current = previous
