"""Durable-state substrate: checksummed segmented journals + fsck.

``repro.durable.journal`` is the write/replay layer both long-lived
journals (the server's job store, the batch run ledger) sit on;
``repro.durable.fsck`` is the offline inspection/repair toolkit behind
the ``repro fsck`` CLI verb.  See DESIGN.md §6.8 for the on-disk format
and the corruption taxonomy.
"""

from repro.durable.journal import (
    DEFAULT_SEGMENT_BYTES,
    FRAME_FIELD,
    QUARANTINE_SUFFIX,
    SNAPSHOT_EVENT,
    DamagedRecord,
    DurableJournal,
    JournalScan,
    frame_record,
    quarantine_path,
    quarantine_records,
    record_crc,
    scan_journal,
    segment_paths,
    verify_line,
)
from repro.durable.fsck import (
    JournalReport,
    RepairReport,
    discover_journals,
    inspect_journal,
    inspect_path,
    repair_journal,
    repair_path,
)

__all__ = [
    "DEFAULT_SEGMENT_BYTES",
    "FRAME_FIELD",
    "QUARANTINE_SUFFIX",
    "SNAPSHOT_EVENT",
    "DamagedRecord",
    "DurableJournal",
    "JournalReport",
    "JournalScan",
    "RepairReport",
    "discover_journals",
    "frame_record",
    "inspect_journal",
    "inspect_path",
    "quarantine_path",
    "quarantine_records",
    "record_crc",
    "repair_journal",
    "repair_path",
    "scan_journal",
    "segment_paths",
    "verify_line",
]
