"""The shared durable-log layer: checksummed, segmented JSONL journals.

Both long-lived journals in this system — the server's job store
(``jobs.jsonl`` under ``--state-dir``) and the batch run ledger
(``ledger.jsonl`` under ``--run-dir``) — started as single append-only
files whose replay tolerated exactly one failure mode: a clean torn
tail.  That is not what disks do.  Bit rot, partial sector writes, and
filesystem bugs damage records *in the middle* of a file, and an
unchecksummed reader either misparses them or silently drops them,
which makes "restart-resume" only as trustworthy as the medium.  This
module is the common durability substrate beneath both journals:

**Per-record CRC32 framing.**  Every appended record is stamped with a
``crc32`` field — CRC32 over the record's canonical JSON serialization
(sorted keys, compact separators, ``crc32`` itself excluded).  The line
on disk stays plain JSON, so every existing consumer (``repro trace``,
smoke scripts, ad-hoc ``jq``) keeps working, and journals written
*before* checksumming replay unchanged: a record without ``crc32`` is a
legacy record, accepted as-is with the old torn-tail-only semantics.
A framed record whose checksum does not match is **corrupt** — the
reader can now distinguish "the process died mid-append" (only ever the
final line of the final segment) from "the disk lied" (anywhere else).

**Segment rotation.**  The journal is an ordered list of segment files:
the legacy base name (``jobs.jsonl``) is segment zero, and rotation
continues into ``jobs.0001.jsonl``, ``jobs.0002.jsonl``, …  A fresh
journal starts at the base name, so small deployments never see more
than one file; size- and age-based rotation bound how much any single
corruption event can take down and give compaction whole-file units to
retire.

**Snapshot compaction.**  :meth:`DurableJournal.compact` folds the
owner-provided state into a single ``journal_snapshot`` record, writes
it as the first record of a fresh segment (atomically: temp file +
fsync + rename), then retires every older segment.  Replay folds a
snapshot by *resetting* to its state and continuing with subsequent
events — so a compacted journal replays to exactly the state the
uncompacted one did, in O(live state) instead of O(history).

**Damage discipline.**  :func:`scan_journal` never raises on damaged
input.  It returns every good record in order plus a precise damage
report: mid-file corruption (bad JSON, non-object, checksum mismatch)
with segment/line positions, and at most one torn tail (damage confined
to the final line of the final segment).  Callers decide policy —
the job store quarantines corrupt records to a ``.quarantine`` sidecar
and keeps replaying; ``repro fsck --repair`` truncates torn tails and
rewrites clean segments.

Fault sites (see :mod:`repro.faults`): ``disk_full`` fires before every
append (an ``io_error`` rule turns it into ENOSPC), ``journal_bitflip``
flips one deterministic bit in the serialized line, ``journal_torn``
truncates the line mid-record and suppresses the newline — the three
ways a journal append lies, injectable on demand.
"""

from __future__ import annotations

import json
import os
import re
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro import faults

#: The reserved frame field carried on every checksummed record.
FRAME_FIELD = "crc32"

#: The snapshot record's event name (typed in :mod:`repro.obs.events`).
SNAPSHOT_EVENT = "journal_snapshot"

#: Rotate the active segment once it exceeds this many bytes.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

#: Numbered segment files: ``<prefix>.0001.jsonl`` and up.
_SEGMENT_RE = re.compile(r"^(?P<prefix>.+)\.(?P<index>\d{4,})\.jsonl$")

#: Sidecar holding quarantined (checksum-failed / unparseable) records.
QUARANTINE_SUFFIX = ".quarantine"


class JournalClosed(ValueError):
    """Append on a closed journal (the owner forgot to reopen)."""


# -- framing ------------------------------------------------------------------

def canonical_json(record: Mapping[str, Any]) -> str:
    """The byte-stable serialization the checksum covers."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def record_crc(record: Mapping[str, Any]) -> str:
    """CRC32 (8 hex chars) over the record's canonical form, with any
    existing frame field excluded."""
    body = {k: v for k, v in record.items() if k != FRAME_FIELD}
    crc = zlib.crc32(canonical_json(body).encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x}"


def frame_record(record: Mapping[str, Any]) -> str:
    """Serialize one record with its checksum stamped.

    The result is still one plain-JSON line — the frame is a field, not
    a wrapper — so pre-checksum readers parse it unchanged.
    """
    framed = dict(record)
    framed[FRAME_FIELD] = record_crc(record)
    return canonical_json(framed)


def verify_line(line: str) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
    """Decode one journal line; returns ``(record, problem)``.

    Exactly one of the pair is ``None``.  Problems: ``bad_json`` (does
    not parse), ``not_object`` (parses to a non-dict), ``crc_mismatch``
    (framed, but the checksum disagrees — the disk lied).  A record with
    no frame field is legacy (pre-checksum) and is accepted verbatim.
    """
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None, "bad_json"
    if not isinstance(record, dict):
        return None, "not_object"
    stamped = record.get(FRAME_FIELD)
    if stamped is None:
        return record, None
    record = {k: v for k, v in record.items() if k != FRAME_FIELD}
    if not isinstance(stamped, str) or stamped != record_crc(record):
        return None, "crc_mismatch"
    return record, None


# -- segment discovery --------------------------------------------------------

def segment_paths(directory: Path, prefix: str) -> List[Path]:
    """Every segment of a journal, oldest first.

    The legacy base file (``<prefix>.jsonl``) sorts before every
    numbered segment — it is segment zero by construction.
    """
    directory = Path(directory)
    paths: List[Path] = []
    base = directory / f"{prefix}.jsonl"
    if base.exists():
        paths.append(base)
    numbered: List[Tuple[int, Path]] = []
    if directory.is_dir():
        for entry in directory.iterdir():
            match = _SEGMENT_RE.match(entry.name)
            if match and match.group("prefix") == prefix:
                numbered.append((int(match.group("index")), entry))
    paths.extend(path for _, path in sorted(numbered))
    return paths


def quarantine_path(directory: Path, prefix: str) -> Path:
    return Path(directory) / f"{prefix}{QUARANTINE_SUFFIX}"


# -- scanning -----------------------------------------------------------------

@dataclass(frozen=True)
class DamagedRecord:
    """One journal line that failed framing, parsing, or checksum."""

    segment: str          # segment file name
    lineno: int           # 1-based within the segment
    problem: str          # bad_json | not_object | crc_mismatch
    raw: str              # the damaged line, verbatim

    def key(self) -> str:
        """Content identity for quarantine dedup across replays."""
        digest = zlib.crc32(self.raw.encode("utf-8", "replace")) & 0xFFFFFFFF
        return f"{self.segment}:{self.lineno}:{digest:08x}"


@dataclass
class JournalScan:
    """Everything one pass over a journal's segments learned."""

    records: List[Dict[str, Any]] = field(default_factory=list)
    #: mid-file damage — never includes the torn tail
    corrupt: List[DamagedRecord] = field(default_factory=list)
    #: damage confined to the final line of the final segment
    torn_tail: Optional[DamagedRecord] = None
    segments: List[Path] = field(default_factory=list)
    framed_records: int = 0
    legacy_records: int = 0
    snapshot_records: int = 0

    @property
    def total_records(self) -> int:
        return len(self.records)


def scan_journal(directory: Path, prefix: str) -> JournalScan:
    """Read every segment, verifying frames; never raises on damage.

    The one concession to the pre-checksum crash model: damage on the
    *final* line of the *final* segment is a torn tail (the process died
    mid-append), reported separately from mid-file corruption so callers
    can keep the old "skip the torn write" semantics without also
    forgiving the disk.
    """
    scan = JournalScan(segments=segment_paths(directory, prefix))
    damaged: List[DamagedRecord] = []
    last_entry: Optional[Tuple[str, int]] = None  # (segment name, lineno)
    for segment in scan.segments:
        try:
            text = segment.read_text(errors="replace")
        except OSError:
            continue
        for lineno, line in enumerate(text.splitlines(), start=1):
            stripped = line.strip()
            if not stripped:
                continue
            last_entry = (segment.name, lineno)
            record, problem = verify_line(stripped)
            if problem is not None:
                damaged.append(DamagedRecord(
                    segment=segment.name, lineno=lineno,
                    problem=problem, raw=stripped,
                ))
                continue
            if FRAME_FIELD in stripped:
                scan.framed_records += 1
            else:
                scan.legacy_records += 1
            if record.get("event") == SNAPSHOT_EVENT:
                scan.snapshot_records += 1
            scan.records.append(record)
    if damaged and last_entry is not None:
        tail = damaged[-1]
        if (tail.segment, tail.lineno) == last_entry:
            scan.torn_tail = tail
            damaged = damaged[:-1]
    scan.corrupt = damaged
    return scan


def quarantine_records(directory: Path, prefix: str,
                       damaged: List[DamagedRecord],
                       clock: Callable[[], float] = time.time) -> int:
    """Append damaged records to the journal's ``.quarantine`` sidecar.

    Each entry wraps the raw line with its provenance (segment, line,
    problem).  Entries are deduplicated by content key so a store that
    replays the same damaged journal twice (the operator has not run
    ``fsck --repair`` yet) does not grow the sidecar without bound.
    Returns how many entries were newly written; sidecar write failures
    are swallowed — quarantine is best-effort bookkeeping, replay must
    continue regardless.
    """
    if not damaged:
        return 0
    path = quarantine_path(directory, prefix)
    seen = set()
    try:
        for line in path.read_text().splitlines():
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and "key" in entry:
                seen.add(entry["key"])
    except OSError:
        pass
    written = 0
    try:
        with open(path, "a") as stream:
            for record in damaged:
                if record.key() in seen:
                    continue
                stream.write(json.dumps({
                    "ts": clock(),
                    "key": record.key(),
                    "segment": record.segment,
                    "lineno": record.lineno,
                    "problem": record.problem,
                    "raw": record.raw,
                }) + "\n")
                written += 1
    except OSError:
        return written
    return written


# -- the writer ---------------------------------------------------------------

class DurableJournal:
    """Append-only writer over a journal's segment chain.

    One instance owns the *active* segment: the newest existing segment
    at open time (the legacy base name for a fresh journal).  ``append``
    frames, writes, flushes, and fsyncs one line, rotating first when
    the active segment has outgrown ``max_segment_bytes`` or
    ``max_segment_age_s``.  OSErrors propagate to the caller — append
    policy (required vs counted-drop vs read-only degradation) is the
    owner's concern, not the transport's.

    ``line_filter`` lets an owner keep a legacy mangle site in the write
    path (the run ledger's ``ledger_line``); any filter- or fault-damage
    to the line is counted on :attr:`damaged_writes` and reported
    through ``on_damage`` — a damaged write *is* a lost record, the
    checksum just makes the loss honest.
    """

    def __init__(
        self,
        directory: Path,
        prefix: str,
        clock: Callable[[], float] = time.time,
        max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        max_segment_age_s: Optional[float] = None,
        line_filter: Optional[Callable[[str], str]] = None,
        on_damage: Optional[Callable[[], None]] = None,
    ):
        self.directory = Path(directory)
        self.prefix = prefix
        self.max_segment_bytes = max(1, int(max_segment_bytes))
        self.max_segment_age_s = max_segment_age_s
        self.damaged_writes = 0
        self.rotations = 0
        self.compactions = 0
        self._clock = clock
        self._line_filter = line_filter
        self._on_damage = on_damage
        self._stream = None
        self._active: Optional[Path] = None
        self._active_bytes = 0
        self._opened_at = 0.0

    # -- lifecycle ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._stream is None

    @property
    def active_path(self) -> Optional[Path]:
        return self._active

    def open(self) -> None:
        """(Re)open the newest segment for appending."""
        if self._stream is not None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        segments = segment_paths(self.directory, self.prefix)
        active = segments[-1] if segments else (
            self.directory / f"{self.prefix}.jsonl"
        )
        self._open_segment(active)

    def _open_segment(self, path: Path) -> None:
        self._stream = open(path, "a")
        self._active = path
        try:
            self._active_bytes = path.stat().st_size
        except OSError:
            self._active_bytes = 0
        self._opened_at = self._clock()

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    # -- appending ------------------------------------------------------------

    def append(self, record: Mapping[str, Any]) -> bool:
        """Frame, write, flush, fsync one record; returns ``True`` when
        this append rotated onto a new segment.

        Raises :class:`JournalClosed` when closed and lets ``OSError``
        (ENOSPC, EIO, …) and serialization errors propagate — policy
        belongs to the owner.
        """
        if self._stream is None:
            raise JournalClosed(f"journal {self.prefix} is closed")
        faults.check("disk_full", key=self.prefix)
        rotated = self._maybe_rotate()
        line = frame_record(record)
        written = line
        if self._line_filter is not None:
            written = self._line_filter(written)
        written = faults.mangle("journal_bitflip", written, key=self.prefix)
        torn = faults.mangle("journal_torn", written, key=self.prefix)
        damaged = torn != line
        if torn != written:
            # A torn write stops mid-record: no newline ever lands.
            self._write(torn, newline=False)
        else:
            self._write(written, newline=True)
        if damaged:
            self.damaged_writes += 1
            if self._on_damage is not None:
                self._on_damage()
        return rotated

    def _write(self, text: str, newline: bool) -> None:
        data = text + ("\n" if newline else "")
        self._stream.write(data)
        self._stream.flush()
        os.fsync(self._stream.fileno())
        self._active_bytes += len(data.encode("utf-8", "replace"))

    def _maybe_rotate(self) -> bool:
        over_size = self._active_bytes >= self.max_segment_bytes
        over_age = (
            self.max_segment_age_s is not None
            and self._clock() - self._opened_at >= self.max_segment_age_s
        )
        if not over_size and not over_age:
            return False
        self.rotate()
        return True

    def rotate(self) -> Path:
        """Close the active segment and start the next numbered one."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None
        next_path = self._next_segment_path()
        self._open_segment(next_path)
        self.rotations += 1
        return next_path

    def _next_segment_path(self) -> Path:
        highest = 0
        for path in segment_paths(self.directory, self.prefix):
            match = _SEGMENT_RE.match(path.name)
            if match and match.group("prefix") == self.prefix:
                highest = max(highest, int(match.group("index")))
        return self.directory / f"{self.prefix}.{highest + 1:04d}.jsonl"

    # -- compaction -----------------------------------------------------------

    def closed_segment_count(self) -> int:
        """Segments other than the active one — compaction's fodder."""
        segments = segment_paths(self.directory, self.prefix)
        if self._active is not None and self._active in segments:
            return len(segments) - 1
        return len(segments)

    def compact(self, state: Mapping[str, Any],
                schema_version: int = 1) -> Path:
        """Fold ``state`` into one snapshot record atomically, retire
        every older segment, and continue appending after the snapshot.

        The snapshot segment is written complete (temp file, flushed,
        fsync'd) and published with an atomic rename *before* any old
        segment is unlinked, so every crash window replays to the same
        state: crash before the rename reads the old segments; crash
        after it reads the snapshot (old segments, if any survive, are
        superseded the moment the replay folds the snapshot record).
        """
        retired = segment_paths(self.directory, self.prefix)
        folded_records = 0
        for segment in retired:
            try:
                folded_records += sum(
                    1 for line in segment.read_text(errors="replace")
                    .splitlines() if line.strip()
                )
            except OSError:
                continue
        snapshot = {
            "ts": self._clock(),
            "schema_version": schema_version,
            "event": SNAPSHOT_EVENT,
            "journal": self.prefix,
            "state": dict(state),
            "folded_segments": len(retired),
            "folded_records": folded_records,
        }
        target = self._next_segment_path()
        temp = target.with_suffix(target.suffix + ".tmp")
        with open(temp, "w") as stream:
            stream.write(frame_record(snapshot) + "\n")
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp, target)
        self._fsync_directory()
        if self._stream is not None:
            self._stream.close()
            self._stream = None
        for segment in retired:
            if segment == target:
                continue
            try:
                segment.unlink()
            except OSError:
                pass  # a survivor is superseded by the snapshot anyway
        self._open_segment(target)
        self.compactions += 1
        return target

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(str(self.directory), os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)


__all__ = [
    "DEFAULT_SEGMENT_BYTES",
    "FRAME_FIELD",
    "QUARANTINE_SUFFIX",
    "SNAPSHOT_EVENT",
    "DamagedRecord",
    "DurableJournal",
    "JournalClosed",
    "JournalScan",
    "canonical_json",
    "frame_record",
    "quarantine_path",
    "quarantine_records",
    "record_crc",
    "scan_journal",
    "segment_paths",
    "verify_line",
]
