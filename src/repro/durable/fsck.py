"""``repro fsck``: offline inspection and repair of durable journals.

A journal that replays is not necessarily a journal that is *healthy*:
replay quarantines checksum failures and keeps going, which is the
right posture for a server that must come back up, but it leaves the
damage on disk where every future boot re-reads it.  fsck is the
offline half of the recovery story — point it at a server state
directory or a batch run directory and it will:

* discover every journal there (``jobs``, ``ledger``) including all
  rotated segments;
* verify framing, checksums, and — for records the v1 event schema
  names — field shapes, reporting damage per segment and line;
* with ``--repair``: truncate torn tails, move corrupt records to the
  ``.quarantine`` sidecar and drop them from the segments (atomic
  rewrite: temp file, fsync, rename), leaving a journal whose next
  replay is byte-deterministic and damage-free;
* with ``--repair --compact``: additionally fold the repaired journal
  into a single :data:`~repro.durable.journal.SNAPSHOT_EVENT`
  checkpoint, retiring the event history (use after the damage is
  understood — compaction folds away the per-event audit trail).

The default repair deliberately preserves every undamaged record
verbatim — same bytes, same order — so invariants that count events
(exactly one ``job_started`` per job) hold across a repair by
construction, not by re-derivation.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.durable.journal import (
    DamagedRecord,
    JournalScan,
    quarantine_records,
    scan_journal,
    segment_paths,
)
from repro.errors import JournalError

#: The journals fsck knows how to find and (for repair) re-fold.
KNOWN_PREFIXES = ("jobs", "ledger", "memo")


# -- reports ------------------------------------------------------------------

@dataclass
class SegmentReport:
    """One segment file's health."""

    name: str
    records: int = 0
    framed: int = 0
    legacy: int = 0
    corrupt: List[Dict[str, Any]] = field(default_factory=list)
    torn_tail: bool = False

    def to_doc(self) -> Dict[str, Any]:
        return {
            "segment": self.name,
            "records": self.records,
            "framed": self.framed,
            "legacy": self.legacy,
            "corrupt": list(self.corrupt),
            "torn_tail": self.torn_tail,
        }


@dataclass
class JournalReport:
    """One journal's full inspection result."""

    directory: Path
    prefix: str
    segments: List[SegmentReport] = field(default_factory=list)
    corrupt_records: int = 0
    torn_tail: Optional[Dict[str, Any]] = None
    schema_problems: List[str] = field(default_factory=list)
    snapshot_records: int = 0
    total_records: int = 0

    @property
    def clean(self) -> bool:
        """No framing damage.  Schema problems are reported but do not
        make a journal dirty — they are a producer bug, not disk damage,
        and dropping the records would destroy information."""
        return self.corrupt_records == 0 and self.torn_tail is None

    def to_doc(self) -> Dict[str, Any]:
        return {
            "directory": str(self.directory),
            "journal": self.prefix,
            "clean": self.clean,
            "total_records": self.total_records,
            "snapshot_records": self.snapshot_records,
            "corrupt_records": self.corrupt_records,
            "torn_tail": self.torn_tail,
            "segments": [segment.to_doc() for segment in self.segments],
            "schema_problems": list(self.schema_problems),
        }


@dataclass
class RepairReport:
    """What ``--repair`` changed."""

    directory: Path
    prefix: str
    quarantined: int = 0
    dropped_records: int = 0
    truncated_tail: bool = False
    rewritten_segments: List[str] = field(default_factory=list)
    compacted: bool = False

    def to_doc(self) -> Dict[str, Any]:
        return {
            "directory": str(self.directory),
            "journal": self.prefix,
            "quarantined": self.quarantined,
            "dropped_records": self.dropped_records,
            "truncated_tail": self.truncated_tail,
            "rewritten_segments": list(self.rewritten_segments),
            "compacted": self.compacted,
        }


# -- discovery ----------------------------------------------------------------

def discover_journals(path: Path) -> List[Tuple[Path, str]]:
    """The durable journals under ``path`` (a state dir or run dir).

    Raises :class:`~repro.errors.JournalError` when the directory holds
    none — pointing fsck at the wrong directory should be loud, not a
    vacuous "all clean".
    """
    path = Path(path)
    if not path.is_dir():
        raise JournalError(f"{path} is not a directory")
    found: List[Tuple[Path, str]] = []
    for prefix in KNOWN_PREFIXES:
        if segment_paths(path, prefix):
            found.append((path, prefix))
    # The incremental memo journal lives in a ``memo/`` subdirectory by
    # convention (<run-dir>/memo, <state-dir>/memo) — cover it when fsck
    # is pointed at the parent.
    memo_dir = path / "memo"
    if memo_dir.is_dir() and segment_paths(memo_dir, "memo"):
        found.append((memo_dir, "memo"))
    if not found:
        raise JournalError(
            f"{path} holds no durable journal (looked for "
            f"{', '.join(f'{p}.jsonl' for p in KNOWN_PREFIXES)} "
            f"and rotated segments)"
        )
    return found


# -- inspection ---------------------------------------------------------------

def _damage_doc(record: DamagedRecord) -> Dict[str, Any]:
    return {
        "segment": record.segment,
        "line": record.lineno,
        "problem": record.problem,
    }


def _schema_problems(scan: JournalScan) -> List[str]:
    """Validate the surviving records against the v1 event schema.

    Unknown event names are tolerated (forward compatibility — the
    store's replay tolerates them too); known events with malformed
    fields are reported.
    """
    from repro.obs.events import validate_record
    problems: List[str] = []
    for position, record in enumerate(scan.records, start=1):
        found = [p for p in validate_record(record)
                 if not p.startswith("unknown event")]
        problems.extend(f"record {position}: {p}" for p in found)
    return problems


def inspect_journal(directory: Path, prefix: str) -> JournalReport:
    """Pure inspection: scan every segment, touch nothing."""
    scan = scan_journal(directory, prefix)
    report = JournalReport(
        directory=Path(directory), prefix=prefix,
        corrupt_records=len(scan.corrupt),
        torn_tail=_damage_doc(scan.torn_tail) if scan.torn_tail else None,
        snapshot_records=scan.snapshot_records,
        total_records=scan.total_records,
        schema_problems=_schema_problems(scan),
    )
    per_segment: Dict[str, SegmentReport] = {}
    for path in scan.segments:
        per_segment[path.name] = SegmentReport(name=path.name)
        report.segments.append(per_segment[path.name])
    # Re-walk per segment for the per-segment tallies the summary scan
    # does not keep (fsck output is per-segment; replay's is not).
    for path in scan.segments:
        segment = per_segment[path.name]
        try:
            text = path.read_text(errors="replace")
        except OSError:
            continue
        from repro.durable.journal import FRAME_FIELD, verify_line
        for line in text.splitlines():
            stripped = line.strip()
            if not stripped:
                continue
            record, problem = verify_line(stripped)
            if problem is not None:
                continue  # counted below from the scan's damage lists
            segment.records += 1
            if FRAME_FIELD in stripped:
                segment.framed += 1
            else:
                segment.legacy += 1
    for damaged in scan.corrupt:
        segment = per_segment.get(damaged.segment)
        if segment is not None:
            segment.corrupt.append(_damage_doc(damaged))
    if scan.torn_tail is not None:
        segment = per_segment.get(scan.torn_tail.segment)
        if segment is not None:
            segment.torn_tail = True
    return report


def inspect_path(path: Path) -> List[JournalReport]:
    """Inspect every journal under a state/run directory."""
    return [inspect_journal(directory, prefix)
            for directory, prefix in discover_journals(path)]


# -- repair -------------------------------------------------------------------

def _rewrite_segment(path: Path, drop: Set[int]) -> None:
    """Rewrite one segment without the dropped line numbers, atomically.

    Surviving lines are preserved byte-for-byte — repair removes damage,
    it never re-serializes healthy records.
    """
    text = path.read_text(errors="replace")
    kept = [
        line for lineno, line in enumerate(text.splitlines(), start=1)
        if lineno not in drop and line.strip()
    ]
    temp = path.with_suffix(path.suffix + ".tmp")
    with open(temp, "w") as stream:
        for line in kept:
            stream.write(line + "\n")
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(temp, path)


def _compact_journal(directory: Path, prefix: str,
                     clock: Callable[[], float]) -> bool:
    """Re-fold a repaired journal into one snapshot checkpoint."""
    if prefix == "jobs":
        from repro.server.store import JobStore
        store = JobStore(directory, clock=clock, passive=True)
        try:
            store.compact()
        finally:
            store.close()
        return True
    if prefix == "ledger":
        from repro.service.ledger import compact_ledger_dir
        return compact_ledger_dir(directory, clock=clock)
    if prefix == "memo":
        # Replay the (now repaired) journal into a fresh store and fold
        # it back into one snapshot segment — same path the online
        # compactor takes, so fsck and runtime compaction agree.
        from repro.incremental.journal import MemoJournal
        from repro.incremental.memo import MemoStore
        store = MemoStore()
        journal = MemoJournal(directory, clock=clock)
        store.attach_journal(journal)
        return journal.compact()
    return False


def repair_journal(directory: Path, prefix: str, compact: bool = False,
                   clock: Callable[[], float] = time.time) -> RepairReport:
    """Make a journal's next replay damage-free.

    Corrupt records are quarantined (sidecar) then dropped from their
    segments; a torn tail is truncated.  Every rewrite is atomic, so a
    crash mid-repair leaves either the old damaged segment or the new
    clean one — never a half-rewritten file.
    """
    directory = Path(directory)
    scan = scan_journal(directory, prefix)
    report = RepairReport(directory=directory, prefix=prefix)
    report.quarantined = quarantine_records(
        directory, prefix, list(scan.corrupt), clock=clock,
    )
    drops: Dict[str, Set[int]] = {}
    for damaged in scan.corrupt:
        drops.setdefault(damaged.segment, set()).add(damaged.lineno)
        report.dropped_records += 1
    if scan.torn_tail is not None:
        drops.setdefault(scan.torn_tail.segment, set()).add(
            scan.torn_tail.lineno
        )
        report.truncated_tail = True
    for segment in scan.segments:
        if segment.name not in drops:
            continue
        try:
            _rewrite_segment(segment, drops[segment.name])
        except OSError as error:
            raise JournalError(
                f"cannot rewrite {segment}: {error}"
            ) from None
        report.rewritten_segments.append(segment.name)
    if compact:
        report.compacted = _compact_journal(directory, prefix, clock)
    return report


def repair_path(path: Path, compact: bool = False,
                clock: Callable[[], float] = time.time) -> List[RepairReport]:
    """Repair every journal under a state/run directory."""
    return [repair_journal(directory, prefix, compact=compact, clock=clock)
            for directory, prefix in discover_journals(path)]


__all__ = [
    "KNOWN_PREFIXES",
    "JournalReport",
    "RepairReport",
    "SegmentReport",
    "discover_journals",
    "inspect_journal",
    "inspect_path",
    "repair_journal",
    "repair_path",
]
