"""Differential fuzzing: random affine loop nests vs. the interpreter.

The pipeline's correctness story leans on two oracles:

* the **printer/parser round trip** — every program the generator emits
  must survive ``parse(print(p)) == p`` structurally, the same pin the
  kernels carry in ``tests/unit/test_printer.py``;
* the **reference interpreter** (:mod:`repro.ir.interp`) — a transform
  is semantics-preserving iff the transformed program computes the same
  array contents as the original on concrete inputs.

``run_fuzz`` draws seeded random near-perfect affine loop nests, checks
both oracles, and differentially tests unroll-and-jam (divisor vectors
gated by :func:`check_unroll_legality`, plus always-legal innermost
epilogue unrolling), loop peeling, and tiling.  Every transformed
program additionally passes the IR verifier with the affine contract
(:func:`repro.ir.verify.check_ir`).

Determinism: iteration ``k`` of ``run_fuzz(seed=s)`` derives its RNG
from the string ``"{s}:{k}"``, so any failure reproduces from
``(seed, iteration)`` alone — which is exactly what a crash artifact
records.  Scalar temporaries are *not* compared (unroll privatizes and
renames them); array state is the semantics.

Failure policy: a mismatch, verifier violation, or unexpected exception
becomes a :class:`FuzzFailure` in the report — ``run_fuzz`` itself never
raises on a bad program, so a CI fuzz job distinguishes "found a bug"
(report, artifacts) from "the harness crashed" (non-zero for the wrong
reason).  :class:`~repro.ir.interp.InterpBudgetExceeded` and illegal
unroll vectors are *skips*, not bugs.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError, TransformError, failure_kind
from repro.frontend import compile_source
from repro.ir.expr import ArrayRef, BinOp, Expr, IntLit, UnOp, VarRef
from repro.ir.interp import InterpBudgetExceeded, Interpreter
from repro.ir.printer import print_program
from repro.ir.stmt import Assign, For, If, Stmt
from repro.ir.symbols import Program, VarDecl
from repro.ir.verify import check_ir
from repro.transform.peel import peel_loop
from repro.transform.pipeline import check_unroll_legality
from repro.transform.tiling import tile_loop
from repro.transform.unroll import UnrollVector, unroll_and_jam

#: Generated nests execute at most a few hundred statements; anything
#: past this budget is a runaway and is counted as a skip.
DEFAULT_MAX_STEPS = 200_000


# -- the generator -----------------------------------------------------------


@dataclass(frozen=True)
class _LoopSpec:
    var: str
    lower: int
    step: int
    trip: int

    @property
    def upper(self) -> int:
        return self.lower + self.trip * self.step

    @property
    def max_value(self) -> int:
        """Largest value the index variable takes."""
        return self.lower + (self.trip - 1) * self.step


class _ArraySpec:
    def __init__(self, name: str, dims: Tuple[int, ...]):
        self.name = name
        self.dims = dims


class _NestGenerator:
    """Builds one random, in-bounds, affine near-perfect loop nest."""

    def __init__(self, rng: random.Random, name: str):
        self.rng = rng
        self.name = name
        self.loops: List[_LoopSpec] = []
        self.arrays: List[_ArraySpec] = []
        self.out: Optional[_ArraySpec] = None
        self.has_temp = False
        self.temp_live = False

    def generate(self) -> Program:
        rng = self.rng
        depth = rng.choice((1, 2, 2, 3))
        for d in range(depth):
            self.loops.append(_LoopSpec(
                var=f"i{d}",
                lower=rng.choice((0, 0, 0, 1)),
                step=rng.choice((1, 1, 1, 2)),
                trip=rng.randint(2, 6),
            ))
        for k in range(rng.randint(1, 2)):
            self.arrays.append(self._make_array(chr(ord("a") + k)))
        self.out = self._make_array("out")
        self.has_temp = rng.random() < 0.5

        body = self._innermost_body()
        stmt: Stmt = None  # type: ignore[assignment]
        for spec in reversed(self.loops):
            inner: Tuple[Stmt, ...] = body if stmt is None else (stmt,)
            stmt = For(spec.var, spec.lower, spec.upper, spec.step, inner)
            body = ()

        decls = [
            VarDecl(a.name, dims=a.dims) for a in self.arrays + [self.out]
        ]
        if self.has_temp:
            decls.append(VarDecl("t"))
        return Program(self.name, tuple(decls), (stmt,))

    def _make_array(self, name: str) -> _ArraySpec:
        rng = self.rng
        rank = rng.randint(1, min(2, len(self.loops)))
        dims = []
        for _ in range(rank):
            anchor = rng.choice(self.loops)
            coeff = rng.choice((1, 1, 2))
            dims.append(coeff * anchor.max_value + rng.randint(0, 2) + 1)
        return _ArraySpec(name, tuple(dims))

    def _innermost_body(self) -> Tuple[Stmt, ...]:
        rng = self.rng
        stmts: List[Stmt] = []
        if self.has_temp:
            stmts.append(Assign(VarRef("t"), self._expr(2)))
            self.temp_live = True
        for _ in range(rng.randint(1, 2)):
            write = Assign(
                ArrayRef(self.out.name, self._subscript(self.out)),
                self._expr(2),
            )
            if rng.random() < 0.3:
                guard = rng.choice(self.loops)
                cond = BinOp(
                    rng.choice(("<", "<=", "==", "!=")),
                    VarRef(guard.var),
                    IntLit(rng.randint(guard.lower, guard.max_value)),
                )
                stmts.append(If(cond, (write,), ()))
            else:
                stmts.append(write)
        return tuple(stmts)

    def _subscript(self, array: _ArraySpec) -> Tuple[Expr, ...]:
        return tuple(self._index_expr(extent) for extent in array.dims)

    def _index_expr(self, extent: int) -> Expr:
        """An affine, provably in-bounds index for a dimension of size
        ``extent`` (coefficients nonnegative, so the max lands at the
        anchor loop's last iteration)."""
        rng = self.rng
        anchor = rng.choice(self.loops)
        top = anchor.max_value
        coeffs = [c for c in (0, 1, 1, 1, 2) if c * top <= extent - 1]
        coeff = rng.choice(coeffs or [0])
        offset = rng.randint(0, extent - 1 - coeff * top)
        if coeff == 0:
            return IntLit(offset)
        term: Expr = VarRef(anchor.var)
        if coeff != 1:
            term = BinOp("*", IntLit(coeff), term)
        if offset:
            term = BinOp("+", term, IntLit(offset))
        return term

    def _expr(self, budget: int) -> Expr:
        rng = self.rng
        if budget <= 0 or rng.random() < 0.35:
            return self._leaf()
        op = rng.choice(("+", "+", "-", "*"))
        return BinOp(op, self._expr(budget - 1), self._expr(budget - 1))

    def _leaf(self) -> Expr:
        rng = self.rng
        roll = rng.random()
        if roll < 0.25:
            value = rng.randint(-4, 4)
            # Negative literals do not round-trip structurally (the
            # parser reads "-3" as unary minus), so spell them that way.
            if value < 0:
                return UnOp("-", IntLit(-value))
            return IntLit(value)
        if roll < 0.45:
            return VarRef(rng.choice(self.loops).var)
        if roll < 0.55 and self.temp_live:
            return VarRef("t")
        # Mostly read inputs; occasionally read the output array to
        # create loop-carried dependences the legality check must judge.
        pool = list(self.arrays)
        if rng.random() < 0.2:
            pool.append(self.out)
        array = rng.choice(pool)
        return ArrayRef(array.name, self._subscript(array))


def generate_program(rng: random.Random, name: str = "fuzz") -> Program:
    """One random affine near-perfect loop nest (see module docstring)."""
    return _NestGenerator(rng, name).generate()


# -- reporting ---------------------------------------------------------------


@dataclass(frozen=True)
class FuzzFailure:
    """One fuzz finding, with everything needed to reproduce it."""

    iteration: int
    seed: str
    stage: str
    kind: str
    message: str
    source: str
    unroll: Optional[Tuple[int, ...]] = None

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "iteration": self.iteration,
            "seed": self.seed,
            "stage": self.stage,
            "kind": self.kind,
            "message": self.message,
        }
        if self.unroll is not None:
            record["unroll"] = list(self.unroll)
        return record

    def __str__(self) -> str:
        extra = f" U={self.unroll}" if self.unroll else ""
        return (
            f"iteration {self.iteration} (seed {self.seed}) "
            f"[{self.stage}{extra}] {self.kind}: {self.message}"
        )


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzz run."""

    iterations: int
    seed: int
    checked: int = 0
    skipped: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    artifacts: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.iterations} iterations (seed {self.seed}), "
            f"{self.checked} checks, {self.skipped} skipped, "
            f"{len(self.failures)} failures"
        ]
        for failure in self.failures:
            lines.append(f"  {failure}")
        for path in self.artifacts:
            lines.append(f"  artifact: {path}")
        return "\n".join(lines)


# -- the harness -------------------------------------------------------------


def _divisors(n: int) -> List[int]:
    return [d for d in range(1, n + 1) if n % d == 0]


class _Iteration:
    """One generated program and its battery of checks."""

    def __init__(
        self,
        index: int,
        seed: str,
        rng: random.Random,
        max_steps: int,
        report: FuzzReport,
    ):
        self.index = index
        self.seed = seed
        self.rng = rng
        self.max_steps = max_steps
        self.report = report
        self.program: Optional[Program] = None
        self.source = ""
        self.inputs: Dict[str, Sequence[int]] = {}
        self.baseline: Optional[Dict[str, Tuple[int, ...]]] = None

    def fail(
        self,
        stage: str,
        message: str,
        kind: str = "fuzz",
        unroll: Optional[Tuple[int, ...]] = None,
    ) -> None:
        self.report.failures.append(FuzzFailure(
            iteration=self.index, seed=self.seed, stage=stage, kind=kind,
            message=message, source=self.source, unroll=unroll,
        ))

    def run(self) -> None:
        try:
            self.program = generate_program(self.rng, name=f"fuzz_{self.index}")
            self.source = print_program(self.program)
        except Exception as error:  # generator bug: report, keep fuzzing
            self.fail("generate", str(error), kind=failure_kind(error))
            return
        for check in (self._check_wellformed, self._check_roundtrip,
                      self._check_baseline):
            if not self._guarded(check.__name__, check):
                return
        for check in (self._check_unroll_divisor, self._check_unroll_epilogue,
                      self._check_peel, self._check_tiling):
            self._guarded(check.__name__, check)

    def _guarded(self, label: str, check) -> bool:
        """Run one check, converting unexpected exceptions to findings.
        Returns False when later checks cannot proceed."""
        stage = label.replace("_check_", "")
        try:
            check()
            return True
        except InterpBudgetExceeded:
            self.report.skipped += 1
            return False
        except Exception as error:
            self.fail(stage, str(error), kind=failure_kind(error))
            return False

    # -- individual checks ---------------------------------------------------

    def _check_wellformed(self) -> None:
        check_ir(self.program, require_affine=True, stage="generate")
        self.report.checked += 1

    def _check_roundtrip(self) -> None:
        reparsed = compile_source(self.source, name=self.program.name)
        if reparsed != self.program:
            self.fail(
                "roundtrip",
                "parse(print(p)) != p: the printed form does not "
                "reconstruct the generated program",
            )
            return
        self.report.checked += 1

    def _check_baseline(self) -> None:
        data = random.Random(f"{self.seed}:data")
        for decl in self.program.decls:
            if decl.is_array:
                self.inputs[decl.name] = [
                    data.randint(-20, 20) for _ in range(decl.element_count)
                ]
        state = Interpreter(self.program, max_steps=self.max_steps).run(self.inputs)
        self.baseline = state.snapshot_arrays()
        self.report.checked += 1

    def _differential(
        self, stage: str, transformed: Program,
        unroll: Optional[Tuple[int, ...]] = None,
    ) -> None:
        check_ir(transformed, require_affine=True, stage=stage,
                 kernel=self.program.name)
        state = Interpreter(transformed, max_steps=self.max_steps).run(self.inputs)
        after = state.snapshot_arrays()
        for name, cells in self.baseline.items():
            if after.get(name) != cells:
                self.fail(
                    stage,
                    f"array {name!r} diverged from the reference "
                    f"interpretation (expected {cells}, got {after.get(name)})",
                    unroll=unroll,
                )
                return
        self.report.checked += 1

    def _check_unroll_divisor(self) -> None:
        """Unroll-and-jam with a legality-checked divisor vector."""
        specs = self._loop_specs()
        factors = tuple(
            self.rng.choice(_divisors(spec.trip)) for spec in specs
        )
        if all(f == 1 for f in factors):
            boostable = [i for i, s in enumerate(specs) if s.trip > 1]
            if boostable:
                i = self.rng.choice(boostable)
                choices = [d for d in _divisors(specs[i].trip) if d > 1]
                factors = factors[:i] + (self.rng.choice(choices),) + factors[i + 1:]
        vector = UnrollVector(factors)
        try:
            check_unroll_legality(self.program, vector)
        except (TransformError, AnalysisError):
            # An illegal jam is the legality check doing its job, not a
            # finding; the epilogue check still exercises unrolling.
            self.report.skipped += 1
            return
        self._differential(
            "unroll", unroll_and_jam(self.program, vector), unroll=factors
        )

    def _check_unroll_epilogue(self) -> None:
        """Innermost-only unrolling by an arbitrary (possibly non-divisor)
        factor — always order-preserving, so never needs a legality gate
        and covers the epilogue-loop path."""
        specs = self._loop_specs()
        inner = specs[-1]
        if inner.trip < 2:
            self.report.skipped += 1
            return
        factor = self.rng.randint(2, inner.trip)
        factors = (1,) * (len(specs) - 1) + (factor,)
        self._differential(
            "unroll_epilogue",
            unroll_and_jam(self.program, UnrollVector(factors)),
            unroll=factors,
        )

    def _check_peel(self) -> None:
        spec = self.rng.choice(self._loop_specs())
        self._differential("peel", peel_loop(self.program, spec.var))

    def _check_tiling(self) -> None:
        candidates = [
            spec for spec in self._loop_specs()
            if spec.lower == 0 and spec.step == 1
            and any(1 < d < spec.trip for d in _divisors(spec.trip))
        ]
        if not candidates:
            self.report.skipped += 1
            return
        spec = self.rng.choice(candidates)
        tile = self.rng.choice(
            [d for d in _divisors(spec.trip) if 1 < d < spec.trip]
        )
        self._differential(
            "tiling", tile_loop(self.program, spec.var, tile)
        )

    def _loop_specs(self) -> List[_LoopSpec]:
        specs = []
        for stmt in _walk_fors(self.program.body):
            specs.append(_LoopSpec(
                stmt.var, stmt.lower, stmt.step, stmt.trip_count
            ))
        return specs


def _walk_fors(body: Sequence[Stmt]):
    for stmt in body:
        if isinstance(stmt, For):
            yield stmt
            yield from _walk_fors(stmt.body)


def run_fuzz(
    iterations: int,
    seed: int = 0,
    artifact_dir: Optional[str] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> FuzzReport:
    """Run ``iterations`` seeded fuzz iterations; never raises on a bad
    program (findings land in the report; artifacts go to
    ``artifact_dir`` when given)."""
    report = FuzzReport(iterations=iterations, seed=seed)
    for k in range(iterations):
        iter_seed = f"{seed}:{k}"
        before = len(report.failures)
        iteration = _Iteration(
            k, iter_seed, random.Random(iter_seed), max_steps, report
        )
        iteration.run()
        if artifact_dir and len(report.failures) > before:
            report.artifacts.extend(
                _write_artifacts(
                    artifact_dir, iteration,
                    report.failures[before:],
                )
            )
    return report


def _write_artifacts(
    artifact_dir: str, iteration: _Iteration, failures: List[FuzzFailure]
) -> List[str]:
    directory = Path(artifact_dir)
    directory.mkdir(parents=True, exist_ok=True)
    stem = f"crash_s{iteration.seed.replace(':', '_i')}"
    written: List[str] = []
    source_path = directory / f"{stem}.c"
    source_path.write_text(iteration.source or "// generator failed\n")
    written.append(str(source_path))
    meta_path = directory / f"{stem}.json"
    meta_path.write_text(json.dumps(
        {"failures": [f.as_dict() for f in failures]}, indent=2,
    ) + "\n")
    written.append(str(meta_path))
    return written
