"""Persistent estimate cache.

The paper's whole premise is that synthesis evaluations are the
expensive resource.  Estimates here are cheap, but the benchmark harness
re-evaluates the same design points across processes constantly, and a
real deployment (where `synthesize` shells out to a vendor tool for
hours) needs results to survive restarts.  The cache keys on everything
an estimate depends on — the printed program text, the layout binding,
the board parameters, and the operator-library calibration — so a stale
hit is impossible without changing one of those.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro import faults
from repro.ir.printer import print_program
from repro.obs import current_registry
from repro.ir.symbols import Program
from repro.layout.plan import LayoutPlan
from repro.synthesis.area import AreaBreakdown
from repro.synthesis.estimator import Estimate
from repro.synthesis.operators import OperatorLibrary, default_library
from repro.target.board import Board


class EstimateCache:
    """A JSON-file-backed map from design fingerprints to estimates.

    ``max_entries`` bounds growth for long campaigns: when set, the
    least-recently-used entries are evicted past the limit (insertion
    order doubles as recency order — hits reinsert), and
    :attr:`evictions` counts what was dropped.  Unbounded by default.
    """

    def __init__(self, path: Path, max_entries: Optional[int] = None):
        self.path = Path(path)
        self.max_entries = max_entries
        self._entries: Dict[str, dict] = load_entries(self.path)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._evict()

    def __len__(self) -> int:
        return len(self._entries)

    # -- keying ---------------------------------------------------------------

    @staticmethod
    def fingerprint(
        program: Program,
        board: Board,
        plan: Optional[LayoutPlan],
        library: OperatorLibrary,
        backend: str = "analytic",
    ) -> str:
        parts = [
            print_program(program),
            board.name, str(board.num_memories), str(board.clock_ns),
            str(board.memory.read_latency), str(board.memory.write_latency),
            str(board.memory.pipelined), str(board.fpga.capacity_slices),
            str(library.clock_ns), str(library.add_slices_per_bit),
            str(library.add_delay_ns), str(library.mul_delay_ns),
            str(library.div_delay_ns), str(library.fast_delay_ns),
            str(library.mul_latency), str(library.mul_area_divisor),
            str(library.div_latency), str(library.register_bits_per_slice),
        ]
        if plan is not None:
            parts.append(json.dumps(sorted(plan.physical.items())))
            parts.append(json.dumps(sorted(
                (name, spec.dim, spec.modulus, list(spec.memories))
                for name, spec in plan.interleaved.items()
            )))
        if backend and backend != "analytic":
            # Non-default backends get distinct keys so a mixed-backend
            # run can never serve an analytic hit for an interp request.
            # The analytic key stays byte-identical to the pre-backend
            # format, keeping existing on-disk caches valid.
            parts.append(f"backend={backend}")
        digest = hashlib.sha256("\x1e".join(parts).encode()).hexdigest()
        return digest

    # -- the cached call --------------------------------------------------------

    def synthesize(
        self,
        program: Program,
        board: Board,
        plan: Optional[LayoutPlan] = None,
        library: Optional[OperatorLibrary] = None,
        backend=None,
    ) -> Estimate:
        """Cached estimate for one design, via ``backend`` (an
        :class:`repro.estimate.EstimatorBackend`, a registered backend
        id, or ``None`` for the analytic default)."""
        from repro.estimate.backends import get_backend
        library = library or default_library(board.clock_ns)
        resolved = get_backend(backend)
        key = self.fingerprint(program, board, plan, library, backend=resolved.id)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            current_registry().counter("cache.hits").inc()
            if self.max_entries is not None:
                self._entries[key] = self._entries.pop(key)  # LRU touch
            return _decode(entry)
        self.misses += 1
        current_registry().counter("cache.misses").inc()
        estimate = self._synthesize_miss(program, board, plan, library, resolved)
        self._entries[key] = _encode(estimate)
        self._evict()
        return estimate

    def _synthesize_miss(
        self,
        program: Program,
        board: Board,
        plan: Optional[LayoutPlan],
        library: OperatorLibrary,
        backend,
    ) -> Estimate:
        """The actual backend call on a miss — the override point for
        the batch service's deadline/backoff guard."""
        return backend.estimate(program, board, plan, library)

    def _evict(self) -> None:
        """Drop least-recently-used entries beyond ``max_entries``."""
        if self.max_entries is None:
            return
        while len(self._entries) > self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.evictions += 1
            current_registry().counter("cache.evictions").inc()

    def save(self) -> None:
        """Persist atomically: write a sibling temp file, then
        ``os.replace`` it into place.  A worker killed mid-save leaves
        either the old file or the new one — never a truncated JSON that
        would poison later runs (truncated files load as empty anyway,
        see :func:`load_entries`)."""
        faults.check("cache_write")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            mode="w", dir=self.path.parent, prefix=self.path.name + ".",
            suffix=".tmp", delete=False,
        )
        try:
            with handle as stream:
                json.dump(self._entries, stream, indent=1)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(handle.name, self.path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def merge(self, entries: Dict[str, dict]) -> None:
        """Adopt entries computed elsewhere (another process's cache).

        Existing keys win: a fingerprint determines its estimate, so a
        collision carries the same payload and keeping ours avoids
        churn.  The ``max_entries`` bound still applies afterwards."""
        for key, entry in entries.items():
            self._entries.setdefault(key, entry)
        self._evict()

    @property
    def entries(self) -> Dict[str, dict]:
        """A snapshot of the raw fingerprint -> estimate-dict map."""
        return dict(self._entries)

    def __enter__(self) -> "EstimateCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.save()


def load_entries(path: Path) -> Dict[str, dict]:
    """Read a cache file's raw entry map, treating every failure mode —
    missing file, truncated/corrupt JSON, or JSON of the wrong shape —
    as an empty cache.  A killed worker can therefore never poison later
    runs; the worst outcome is re-synthesizing."""
    try:
        loaded = json.loads(Path(path).read_text())
    except (json.JSONDecodeError, OSError):
        return {}
    if not isinstance(loaded, dict):
        return {}
    return {
        key: entry for key, entry in loaded.items() if isinstance(entry, dict)
    }


def _encode(estimate: Estimate) -> dict:
    record = {
        "cycles": estimate.cycles,
        "space": estimate.space,
        "area": estimate.area.as_dict(),
        "fetch_rate": estimate.fetch_rate,
        "consumption_rate": estimate.consumption_rate,
        "balance": estimate.balance,
        "operator_demand": [
            [kind, width, count]
            for (kind, width), count in sorted(estimate.operator_demand.items())
        ],
        "memory_traffic": sorted(estimate.memory_traffic.items()),
        "register_bits": estimate.register_bits,
        "region_count": estimate.region_count,
        "clock_ns": estimate.clock_ns,
    }
    provenance = estimate.provenance
    if provenance is not None and hasattr(provenance, "as_dict"):
        record["provenance"] = provenance.as_dict()
    return record


def _decode(entry: dict) -> Estimate:
    area = entry["area"]
    provenance = None
    if isinstance(entry.get("provenance"), dict):
        from repro.estimate.backends import Provenance
        provenance = Provenance.from_dict(entry["provenance"])
    return Estimate(
        cycles=entry["cycles"],
        space=entry["space"],
        area=AreaBreakdown(
            operators=area["operators"],
            registers=area["registers"],
            memory_interface=area["memory_interface"],
            controller=area["controller"],
        ),
        fetch_rate=_inf_ok(entry["fetch_rate"]),
        consumption_rate=_inf_ok(entry["consumption_rate"]),
        balance=_inf_ok(entry["balance"]),
        operator_demand={
            (kind, width): count
            for kind, width, count in entry["operator_demand"]
        },
        memory_traffic={int(m): count for m, count in entry["memory_traffic"]},
        register_bits=entry["register_bits"],
        region_count=entry["region_count"],
        clock_ns=entry["clock_ns"],
        provenance=provenance,
    )


def _inf_ok(value) -> float:
    # json serializes inf as "Infinity", which json.loads parses back to
    # float('inf') already; this guard covers string-cleaned files.
    if value in ("inf", "Infinity"):
        return float("inf")
    return float(value)
