"""ASAP scheduling with memory-port constraints.

The paper's behavioral synthesis tool (Monet) schedules As Soon As
Possible: it "first considers which memory accesses can occur in
parallel based on comparing subscript expressions and physical memory
ids, and then rules out writes whose results are not yet available due
to dependences" (Section 5.2).  This module reproduces that discipline:

* every node starts as soon as its dataflow predecessors finish;
* each physical memory is a port that admits one access per *initiation
  interval* (1 cycle pipelined; the full 7/3-cycle latency otherwise);
* datapath operators are unlimited during scheduling — the allocation
  step afterwards counts the peak concurrency per (kind, width), which
  is the number of operators the binding must instantiate (and hence the
  area), reproducing synthesis's operator reuse across basic blocks.

Three schedules are produced per region:

* the **full schedule** (all constraints) — region latency in cycles;
* the **memory-only schedule** — how fast the memory system alone could
  stream the region's traffic; its rate is the paper's *data fetch
  rate* ``F``;
* the **compute-only critical path** — how fast the datapath alone could
  consume data; its rate is the *data consumption rate* ``C``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.synthesis.dfg import Dataflow, Node
from repro.synthesis.operators import OperatorLibrary
from repro.target.memory import MemoryModel


@dataclass(frozen=True)
class ResourceConstraints:
    """Operator allocation limits (Section 2.3).

    Behavioral synthesis lets the designer bound the allocation — "a
    design that uses two multipliers" — trading cycles for area.  Limits
    are per operation *kind* (any width); kinds not listed stay
    unlimited.  Memory ports are always constrained by the board.
    """

    limits: Tuple[Tuple[str, int], ...]

    @classmethod
    def of(cls, **limits: int) -> "ResourceConstraints":
        """``ResourceConstraints.of(mul=2, add=4)`` — kind aliases:
        mul -> '*', add -> '+', div -> '/'."""
        aliases = {"mul": "*", "add": "+", "sub": "-", "div": "/", "mod": "%"}
        resolved = tuple(
            (aliases.get(kind, kind), count) for kind, count in sorted(limits.items())
        )
        for _kind, count in resolved:
            if count < 1:
                raise ValueError("operator limits must be at least 1")
        return cls(resolved)

    def limit_for(self, kind: str) -> Optional[int]:
        for limited_kind, count in self.limits:
            if limited_kind == kind:
                return count
        return None


@dataclass
class RegionSchedule:
    """All scheduling results for one region."""

    length: int
    start_times: Dict[int, int]             # node index -> start cycle
    finish_times: Dict[int, int]
    memory_only_length: int
    compute_only_length: int
    memory_bits: int
    #: peak simultaneous executions per (kind, width) — operator demand.
    operator_demand: Dict[Tuple[str, int], int]
    #: accesses per physical memory id.
    memory_traffic: Dict[int, int]

    @property
    def is_empty(self) -> bool:
        return not self.start_times


def schedule_region(
    dfg: Dataflow,
    memory: MemoryModel,
    library: OperatorLibrary,
    constraints: Optional[ResourceConstraints] = None,
) -> RegionSchedule:
    """Schedule one region's dataflow graph.

    With ``constraints``, limited operator kinds behave like ports: an
    operation waits for both its operands and a free unit of its kind.
    """
    start: Dict[int, int] = {}
    finish: Dict[int, int] = {}
    port_free: Dict[int, int] = {}
    units: Dict[str, List[int]] = {}

    def acquire_unit(kind: str, ready: int, latency: int) -> int:
        limit = constraints.limit_for(kind) if constraints else None
        if limit is None:
            return ready
        pool = units.setdefault(kind, [0] * limit)
        free_at = heapq.heappop(pool)
        begin = max(ready, free_at)
        heapq.heappush(pool, begin + latency)
        return begin

    for node in dfg.nodes:  # creation order is topological
        ready = max((finish[p.index] for p in node.preds), default=0)
        if node.is_memory:
            begin = max(ready, port_free.get(node.memory, 0))
            port_free[node.memory] = begin + memory.interval(node.is_write)
            end = begin + memory.latency(node.is_write)
        elif node.kind == "rotate":
            begin = ready
            end = begin + 1
        else:
            latency = library.spec(node.kind, node.width).latency
            begin = acquire_unit(node.kind, ready, latency)
            end = begin + latency
        start[node.index] = begin
        finish[node.index] = end

    length = max(finish.values(), default=0)
    return RegionSchedule(
        length=length,
        start_times=start,
        finish_times=finish,
        memory_only_length=_memory_only_length(dfg, memory),
        compute_only_length=_compute_only_length(dfg, library),
        memory_bits=dfg.memory_bits(),
        operator_demand=_operator_demand(dfg, start, finish),
        memory_traffic=_memory_traffic(dfg),
    )


def _memory_only_length(dfg: Dataflow, memory: MemoryModel) -> int:
    """Cycles the memory system needs for this region's traffic alone.

    Each port serves its accesses back to back at the initiation
    interval; the port finishing last (including the final access's
    latency tail) sets the length.
    """
    port_free: Dict[int, int] = {}
    last_end: Dict[int, int] = {}
    for node in dfg.memory_nodes:
        begin = port_free.get(node.memory, 0)
        port_free[node.memory] = begin + memory.interval(node.is_write)
        last_end[node.memory] = begin + memory.latency(node.is_write)
    return max(last_end.values(), default=0)


def _compute_only_length(dfg: Dataflow, library: OperatorLibrary) -> int:
    """Critical path through datapath operations with memory reads free.

    This is the delay over which the computation consumes its input
    bits; reads deliver at cycle zero and writes cost nothing, so the
    value isolates operator parallelism exactly as the balance metric
    requires.
    """
    finish: Dict[int, int] = {}
    longest = 0
    for node in dfg.nodes:
        ready = max((finish.get(p.index, 0) for p in node.preds), default=0)
        if node.is_memory:
            finish[node.index] = ready  # free in the compute-only view
            continue
        if node.kind == "rotate":
            latency = 1
        else:
            latency = library.spec(node.kind, node.width).latency
        finish[node.index] = ready + latency
        longest = max(longest, finish[node.index])
    return longest


def _operator_demand(
    dfg: Dataflow, start: Dict[int, int], finish: Dict[int, int]
) -> Dict[Tuple[str, int], int]:
    """Peak concurrency per operator class in the full schedule."""
    events: Dict[Tuple[str, int], List[Tuple[int, int]]] = {}
    for node in dfg.op_nodes:
        events.setdefault((node.kind, node.width), []).append(
            (start[node.index], finish[node.index])
        )
    demand: Dict[Tuple[str, int], int] = {}
    for key, intervals in events.items():
        boundary: List[Tuple[int, int]] = []
        for begin, end in intervals:
            boundary.append((begin, 1))
            boundary.append((max(end, begin + 1), -1))
        boundary.sort()
        active = peak = 0
        for _, delta in boundary:
            active += delta
            peak = max(peak, active)
        demand[key] = peak
    return demand


def _memory_traffic(dfg: Dataflow) -> Dict[int, int]:
    traffic: Dict[int, int] = {}
    for node in dfg.memory_nodes:
        traffic[node.memory] = traffic.get(node.memory, 0) + 1
    return traffic


def merge_operator_demand(
    schedules: List[RegionSchedule],
) -> Dict[Tuple[str, int], int]:
    """Operators needed for a whole design: regions execute at different
    times, so synthesis shares operators between them — the design needs
    the *maximum* demand of any region, per operator class."""
    merged: Dict[Tuple[str, int], int] = {}
    for schedule in schedules:
        for key, count in schedule.operator_demand.items():
            merged[key] = max(merged.get(key, 0), count)
    return merged
