"""Post-synthesis (logic synthesis + place-and-route) effects model.

Section 6.4 measures the gap between behavioral estimates and fully
implemented designs: clock cycles never change, but routing congestion
degrades the achievable clock and grows space slightly more than
linearly for large unroll factors, while staying negligible for the
small designs the algorithm favors.  This model reproduces those
findings so the accuracy benchmark (and anyone exploring estimate
trustworthiness) can regenerate the Section 6.4 numbers.

The degradation driver is device utilization: routing pressure rises
superlinearly as a design fills the FPGA.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.synthesis.estimator import Estimate
from repro.target.board import Board


@dataclass(frozen=True)
class ImplementationResult:
    """What logic synthesis + P&R produce for one design."""

    cycles: int                 # unchanged from behavioral synthesis
    space: int                  # placed slices (>= estimated)
    achieved_clock_ns: float    # post-routing critical path
    meets_target_clock: bool
    clock_degradation: float    # fraction over the estimate's clock
    space_growth: float         # fraction over the estimated slices

    @property
    def execution_time_us(self) -> float:
        return self.cycles * self.achieved_clock_ns / 1000.0


def place_and_route(
    estimate: Estimate,
    board: Board,
    congestion_exponent: float = 8.0,
    max_clock_degradation: float = 0.6,
    space_growth_at_full: float = 0.30,
) -> ImplementationResult:
    """Model the implemented design behind a behavioral estimate.

    Clock degradation and space growth scale with utilization to the
    ``congestion_exponent`` power: designs under ~60 % utilization see
    well under 10 % degradation; a design filling the device sees the
    full ``max_clock_degradation`` (60 %) and ``space_growth_at_full``
    (30 %).  The steep exponent is calibrated so the algorithm's
    selected designs reproduce Section 6.4: under 10 % degradation for
    almost all of them (they sit below ~75 % utilization), with
    pipelined FIR — selected near 86 % utilization — the one outlier
    in the tens of percent, exactly the paper's report.
    """
    utilization = min(estimate.space / board.fpga.capacity_slices, 1.5)
    pressure = utilization ** congestion_exponent
    clock_degradation = min(pressure * max_clock_degradation, max_clock_degradation * 1.5)
    space_growth = pressure * space_growth_at_full
    achieved_clock = board.clock_ns * (1.0 + clock_degradation)
    placed = round(estimate.space * (1.0 + space_growth))
    return ImplementationResult(
        cycles=estimate.cycles,
        space=placed,
        achieved_clock_ns=achieved_clock,
        meets_target_clock=clock_degradation <= 1e-9 or achieved_clock <= board.clock_ns * 1.333,
        clock_degradation=clock_degradation,
        space_growth=space_growth,
    )
