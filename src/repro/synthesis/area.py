"""Design area model.

Behavioral synthesis estimates space as the sum of the datapath
operators the binding instantiates, the registers the design holds, the
memory interface logic (address generators and data paths, one per
physical port), and the FSM controller whose state count tracks the
schedule lengths.  Constants are calibrated so the paper-scale designs
land in the ranges of the area plots: a baseline FIR around a few
hundred Virtex slices, aggressive unrollings crossing the 12,288-slice
capacity line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.ir.stmt import For, walk_all
from repro.ir.symbols import Program
from repro.synthesis.operators import OperatorLibrary

#: Slices for one memory port's address generator + data path.
MEMORY_PORT_SLICES = 48
#: Extra addressing/mux logic per distinct array sharing a port.
ARRAY_ON_PORT_SLICES = 8
#: FSM cost: slices per state (one-hot state register + next-state logic).
FSM_SLICES_PER_STATE = 0.4
#: Fixed controller overhead (reset, start/done handshake).
FSM_BASE_SLICES = 8


@dataclass(frozen=True)
class AreaBreakdown:
    """Slices by component; ``total`` is the estimate's space figure."""

    operators: int
    registers: int
    memory_interface: int
    controller: int

    @property
    def total(self) -> int:
        return self.operators + self.registers + self.memory_interface + self.controller

    def as_dict(self) -> Dict[str, int]:
        return {
            "operators": self.operators,
            "registers": self.registers,
            "memory_interface": self.memory_interface,
            "controller": self.controller,
            "total": self.total,
        }


def operator_area(
    demand: Mapping[Tuple[str, int], int], library: OperatorLibrary
) -> int:
    """Slices for the allocated operators (demand = peak concurrency)."""
    total = 0
    for (kind, width), count in demand.items():
        total += count * library.spec(kind, width).area_slices
    return total


def register_area(
    program: Program, index_widths: Mapping[str, int], library: OperatorLibrary
) -> int:
    """Slices holding scalar state: declared scalars (including every
    rotating-bank register scalar replacement introduced) plus the loop
    counters the FSM maintains."""
    bits = sum(decl.type.width for decl in program.scalars())
    bits += sum(index_widths.values())
    return library.register_slices(bits)


def memory_interface_area(
    physical: Mapping[str, int],
    used_arrays: Iterable[str],
    interleaved: Mapping[str, object] = None,
) -> int:
    """Slices for address generation and data steering per port.

    An interleaved array touches several ports, and its dynamic bank
    selection needs steering logic on each.
    """
    interleaved = interleaved or {}
    used = [name for name in used_arrays]
    ports = set()
    steering = 0
    for name in used:
        spec = interleaved.get(name)
        if spec is not None:
            ports.update(spec.memories)
            steering += len(spec.memories) * ARRAY_ON_PORT_SLICES
        elif name in physical:
            ports.add(physical[name])
            steering += ARRAY_ON_PORT_SLICES
    return len(ports) * MEMORY_PORT_SLICES + steering


def controller_area(total_states: int, loop_count: int) -> int:
    """FSM slices from the schedule's state count plus per-loop counters'
    control (increment/compare states are inside the schedule already;
    this charges the sequencing logic)."""
    states = total_states + 2 * loop_count
    return FSM_BASE_SLICES + round(states * FSM_SLICES_PER_STATE)


def index_variable_widths(program: Program) -> Dict[str, int]:
    """Bits each loop counter needs (its exclusive upper bound's width)."""
    widths: Dict[str, int] = {}
    for stmt in walk_all(program.body):
        if isinstance(stmt, For):
            needed = max(int(stmt.upper).bit_length(), 1)
            widths[stmt.var] = max(widths.get(stmt.var, 0), needed)
    return widths
