"""Textual schedule reports: what the estimator decided, cycle by cycle.

Renders a region's ASAP schedule as a Gantt-style table — one row per
operation, one column per cycle — so a user can see *why* a body takes
the cycles it does: which memory port serialized, where the multiplier
latency sits, how the accumulation chain strings out.  The CLI's
``estimate --schedule`` prints the steady-state body's report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.ir.symbols import Program
from repro.layout.mapping import map_memories
from repro.layout.plan import LayoutPlan
from repro.synthesis.area import index_variable_widths
from repro.synthesis.dfg import DataflowBuilder, Node
from repro.synthesis.operators import OperatorLibrary, default_library
from repro.synthesis.regions import LoopBlock, Region, program_blocks
from repro.synthesis.scheduling import (
    RegionSchedule, ResourceConstraints, schedule_region,
)
from repro.target.board import Board


def _node_label(node: Node) -> str:
    if node.kind == "read":
        return f"read {node.array} @mem{node.memory}"
    if node.kind == "write":
        return f"write {node.array} @mem{node.memory}"
    if node.kind == "rotate":
        return "rotate registers"
    return f"{node.kind} ({node.width}b)"


def render_region_schedule(
    nodes: List[Node], schedule: RegionSchedule, max_cycles: int = 64
) -> str:
    """One row per node: label, start/finish, and a bar over the cycles."""
    if not nodes:
        return "(empty region)"
    span = min(schedule.length, max_cycles)
    label_width = max(len(_node_label(node)) for node in nodes)
    lines = [
        f"region schedule: {schedule.length} cycles, "
        f"{schedule.memory_bits} memory bits "
        f"(memory-only {schedule.memory_only_length}, "
        f"compute-only {schedule.compute_only_length})",
        "",
        " " * (label_width + 9) + "".join(f"{c % 10}" for c in range(span)),
    ]
    for node in nodes:
        begin = schedule.start_times[node.index]
        end = schedule.finish_times[node.index]
        bar = []
        for cycle in range(span):
            if begin <= cycle < end:
                bar.append("#" if node.is_memory else "=")
            else:
                bar.append(".")
        truncated = "+" if end > span else " "
        lines.append(
            f"{_node_label(node).ljust(label_width)} "
            f"[{begin:3d},{end:3d}) {''.join(bar)}{truncated}"
        )
    if schedule.length > max_cycles:
        lines.append(f"... truncated at cycle {max_cycles} of {schedule.length}")
    return "\n".join(lines)


def steady_state_schedule_report(
    program: Program,
    board: Board,
    plan: Optional[LayoutPlan] = None,
    library: Optional[OperatorLibrary] = None,
    constraints: Optional[ResourceConstraints] = None,
) -> str:
    """The innermost steady-state region's schedule, rendered.

    Picks the region with the highest execution count — the body whose
    schedule dominates the design's performance.
    """
    library = library or default_library(board.clock_ns)
    if plan is not None:
        physical = dict(plan.physical)
        interleaved = dict(plan.interleaved)
    else:
        physical, interleaved = map_memories(program, board.num_memories)
    index_widths = index_variable_widths(program)

    best: Optional[Tuple[int, Region]] = None

    def walk(blocks, executions: int) -> None:
        nonlocal best
        for block in blocks:
            if isinstance(block, Region):
                if block.statements and (best is None or executions > best[0]):
                    best = (executions, block)
            else:
                walk(block.children, executions * block.trip_count)

    walk(program_blocks(program), 1)
    if best is None:
        return "(no schedulable region)"
    _executions, region = best
    builder = DataflowBuilder(program, physical, index_widths, interleaved)
    dfg = builder.build(region)
    schedule = schedule_region(dfg, board.memory, library, constraints)
    return render_region_schedule(dfg.nodes, schedule)
