"""Behavioral synthesis estimation: the Monet(TM) stand-in.

Binds operations to a hardware operator library, schedules regions ASAP
under memory port constraints, allocates operators from peak
concurrency, and models design area — returning the (space, cycles)
estimates the design space exploration consumes.
"""

from repro.synthesis.area import AreaBreakdown, index_variable_widths
from repro.synthesis.binding import BoundUnit, OperatorBinding, bind_operators
from repro.synthesis.cache import EstimateCache
from repro.synthesis.dfg import Dataflow, DataflowBuilder, Node
from repro.synthesis.estimator import Estimate, LOOP_OVERHEAD_CYCLES, synthesize
from repro.synthesis.operators import OperatorLibrary, OperatorSpec, default_library
from repro.synthesis.placeroute import ImplementationResult, place_and_route
from repro.synthesis.regions import (
    Block, LoopBlock, Region, build_blocks, iter_regions, program_blocks,
)
from repro.synthesis.schedule_report import (
    render_region_schedule, steady_state_schedule_report,
)
from repro.synthesis.scheduling import (
    RegionSchedule, ResourceConstraints, merge_operator_demand,
    schedule_region,
)

__all__ = [
    "AreaBreakdown", "Block", "BoundUnit", "Dataflow", "DataflowBuilder",
    "Estimate", "EstimateCache", "OperatorBinding", "bind_operators",
    "ImplementationResult", "LOOP_OVERHEAD_CYCLES", "LoopBlock", "Node",
    "OperatorLibrary", "OperatorSpec", "Region", "RegionSchedule",
    "ResourceConstraints",
    "build_blocks", "default_library", "index_variable_widths",
    "iter_regions", "merge_operator_demand", "place_and_route",
    "program_blocks", "render_region_schedule", "schedule_region",
    "steady_state_schedule_report", "synthesize",
]
