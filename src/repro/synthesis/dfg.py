"""Dataflow graph construction for one region.

Each region becomes a DAG of operation nodes:

* ``read`` / ``write`` — external memory accesses, tagged with the
  physical memory their array maps to;
* arithmetic/logic/compare/intrinsic nodes — one per operator in the
  expression trees;
* ``select`` — the multiplexer materialized by if-conversion of an
  ``if`` statement (both arms execute; predicated writes still occupy
  their memory port, per the paper's conditional-memory-access rule);
* ``rotate`` — a register-bank rotation (one cycle, no operator area).

Register reads/writes are free: a scalar assignment aliases its
right-hand side's node.  Subscript (address) expressions do *not*
generate datapath nodes — address generation lives in the FSM/counter
logic, which the area model charges per memory port — so memory nodes
issue as soon as their ordering predecessors allow.

Edges encode: scalar def-use, memory RAW/WAR/WAW ordering per physical
memory bank, and the anti-dependences of rotations (a rotation must wait
for every use of the old register values).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import SynthesisError
from repro.ir.expr import ArrayRef, BinOp, Call, Expr, IntLit, UnOp, VarRef
from repro.ir.stmt import Assign, If, RotateRegisters, Stmt
from repro.ir.symbols import Program
from repro.layout.plan import InterleavedArray
from repro.synthesis.regions import Region


@dataclass
class Node:
    """One scheduled operation."""

    index: int
    kind: str                 # operator kind, "read", "write", "select", "rotate"
    width: int
    preds: List["Node"] = field(default_factory=list)
    #: for read/write nodes: the array and its physical memory.
    array: Optional[str] = None
    memory: Optional[int] = None
    predicated: bool = False

    @property
    def is_memory(self) -> bool:
        return self.kind in ("read", "write")

    @property
    def is_write(self) -> bool:
        return self.kind == "write"

    @property
    def is_datapath_op(self) -> bool:
        """True for nodes that bind to a datapath operator (area + compute
        delay); memory accesses and rotations are excluded."""
        return not self.is_memory and self.kind != "rotate"

    def __repr__(self) -> str:
        return f"Node({self.index}:{self.kind}/{self.width})"


@dataclass
class Dataflow:
    """The DAG for one region, nodes in topological (creation) order."""

    nodes: List[Node]

    @property
    def memory_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.is_memory]

    @property
    def op_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.is_datapath_op]

    def memory_bits(self) -> int:
        return sum(n.width for n in self.memory_nodes)


class DataflowBuilder:
    """Builds the DAG for a region, given type and layout context."""

    def __init__(
        self,
        program: Program,
        memory_of: Mapping[str, int],
        index_widths: Optional[Mapping[str, int]] = None,
        interleaved: Optional[Mapping[str, "InterleavedArray"]] = None,
    ):
        self.symbols = program.symbol_table
        self.memory_of = memory_of
        self.index_widths = dict(index_widths or {})
        self.interleaved = dict(interleaved or {})
        self.nodes: List[Node] = []
        # dataflow state
        self.last_def: Dict[str, Optional[Node]] = {}
        self.last_uses: Dict[str, List[Node]] = {}
        self.last_write: Dict[str, Optional[Node]] = {}
        self.reads_since_write: Dict[str, List[Node]] = {}
        # names assigned inside currently-open `if` branches (a stack, for
        # nesting); drives select insertion at branch merges.
        self._assignment_logs: List[set] = []

    # -- public -------------------------------------------------------------

    def build(self, region: Region) -> Dataflow:
        for stmt in region.statements:
            self._visit_stmt(stmt, predicate=None)
        return Dataflow(self.nodes)

    # -- statements -----------------------------------------------------------

    def _visit_stmt(self, stmt: Stmt, predicate: Optional[Node]) -> None:
        if isinstance(stmt, Assign):
            value = self._visit_expr(stmt.value, predicate)
            if isinstance(stmt.target, VarRef):
                self._define(stmt.target.name, value, predicate)
            else:
                write = self._emit_write(stmt.target, value, predicate)
                if isinstance(stmt.value, VarRef):
                    self.last_uses.setdefault(stmt.value.name, []).append(write)
        elif isinstance(stmt, If):
            self._visit_if(stmt, predicate)
        elif isinstance(stmt, RotateRegisters):
            self._visit_rotate(stmt, predicate)
        else:
            raise SynthesisError(f"cannot synthesize statement {type(stmt).__name__}")

    def _visit_if(self, stmt: If, predicate: Optional[Node]) -> None:
        cond = self._visit_expr(stmt.cond, predicate)
        guard = self._combine_predicates(predicate, cond)
        before = dict(self.last_def)
        then_assigned, after_then = self._visit_branch(stmt.then_body, guard, before)
        else_assigned, after_else = self._visit_branch(stmt.else_body, guard, before)
        # Merge: any scalar assigned under the guard needs a mux between
        # its two incoming values — even when both are constants (no
        # producing node), the hardware still selects between them.
        merged = dict(before)
        for name in then_assigned | else_assigned:
            then_def = after_then.get(name, before.get(name))
            else_def = after_else.get(name, before.get(name))
            both_sides = name in then_assigned and name in else_assigned
            if both_sides and then_def is else_def and then_def is not None:
                merged[name] = then_def
                continue
            width = self._scalar_width(name)
            preds = [n for n in (guard, then_def, else_def) if n is not None]
            merged[name] = self._new_node("select", width, preds)
        self.last_def = merged

    def _visit_branch(
        self, body: Tuple[Stmt, ...], guard: Optional[Node], before: Dict
    ) -> Tuple[set, Dict]:
        """Visit one branch from the pre-if state; returns the names it
        assigned and its final definition map."""
        self.last_def = dict(before)
        self._assignment_logs.append(set())
        for stmt in body:
            self._visit_stmt(stmt, guard)
        assigned = self._assignment_logs.pop()
        for log in self._assignment_logs:
            log |= assigned  # nested branch assignments surface outward
        return assigned, dict(self.last_def)

    def _visit_rotate(self, stmt: RotateRegisters, predicate: Optional[Node]) -> None:
        preds: List[Node] = []
        for name in stmt.registers:
            definition = self.last_def.get(name)
            if definition is not None:
                preds.append(definition)
            preds.extend(self.last_uses.get(name, ()))
        if predicate is not None:
            preds.append(predicate)
        width = self._scalar_width(stmt.registers[0])
        node = self._new_node("rotate", width, preds, predicated=predicate is not None)
        for name in stmt.registers:
            self.last_def[name] = node
            self.last_uses[name] = []

    # -- expressions -----------------------------------------------------------

    def _visit_expr(self, expr: Expr, predicate: Optional[Node]) -> Optional[Node]:
        """Returns the node producing the expression's value, or ``None``
        when the value is available without computation (literals,
        loop indices, scalars defined outside the region)."""
        if isinstance(expr, IntLit):
            return None
        if isinstance(expr, VarRef):
            return self.last_def.get(expr.name)
        if isinstance(expr, ArrayRef):
            return self._emit_read(expr, predicate)
        if isinstance(expr, UnOp):
            operand = self._visit_expr(expr.operand, predicate)
            width = self._width(expr)
            node = self._new_node(expr.op, width, _drop_none([operand]))
            self._record_register_uses(node, (expr.operand,))
            return node
        if isinstance(expr, Call):
            args = [self._visit_expr(a, predicate) for a in expr.args]
            width = self._width(expr)
            node = self._new_node(expr.name, width, _drop_none(args))
            self._record_register_uses(node, expr.args)
            return node
        if isinstance(expr, BinOp):
            left = self._visit_expr(expr.left, predicate)
            right = self._visit_expr(expr.right, predicate)
            width = self._width(expr)
            kind = expr.op
            # Strength reduction, as logic synthesis performs it: division
            # or multiplication by a power-of-two literal is wiring plus a
            # shift, not a divider/multiplier.
            if kind in ("/", "*", "%") and _power_of_two_literal(expr.right):
                kind = ">>" if kind == "/" else ("<<" if kind == "*" else "&")
            elif kind == "*" and _power_of_two_literal(expr.left):
                kind = "<<"
            node = self._new_node(kind, width, _drop_none([left, right]))
            self._record_register_uses(node, (expr.left, expr.right))
            return node
        raise SynthesisError(f"cannot synthesize expression {type(expr).__name__}")

    def _record_register_uses(self, consumer: Node, operands: Tuple[Expr, ...]) -> None:
        """Register the consumer as a use of directly-referenced scalars —
        rotation anti-dependences need to wait for these consumers."""
        for operand in operands:
            if isinstance(operand, VarRef):
                self.last_uses.setdefault(operand.name, []).append(consumer)

    # -- memory ------------------------------------------------------------------

    def _emit_read(self, ref: ArrayRef, predicate: Optional[Node]) -> Node:
        memory = self._memory_of_ref(ref)
        width = self._element_width(ref.array)
        preds = _drop_none([self.last_write.get(ref.array), predicate])
        node = self._new_node(
            "read", width, preds, array=ref.array, memory=memory,
            predicated=predicate is not None,
        )
        self.reads_since_write.setdefault(ref.array, []).append(node)
        return node

    def _emit_write(
        self, ref: ArrayRef, value: Optional[Node], predicate: Optional[Node]
    ) -> Node:
        memory = self._memory_of_ref(ref)
        width = self._element_width(ref.array)
        preds = _drop_none(
            [value, self.last_write.get(ref.array), predicate]
            + self.reads_since_write.get(ref.array, [])
        )
        node = self._new_node(
            "write", width, preds, array=ref.array, memory=memory,
            predicated=predicate is not None,
        )
        self.last_write[ref.array] = node
        self.reads_since_write[ref.array] = []
        return node

    # -- helpers -----------------------------------------------------------------

    def _define(self, name: str, value: Optional[Node], predicate: Optional[Node]) -> None:
        self.last_def[name] = value
        self.last_uses[name] = []
        for log in self._assignment_logs:
            log.add(name)

    def _combine_predicates(
        self, outer: Optional[Node], cond: Optional[Node]
    ) -> Optional[Node]:
        if outer is None:
            return cond
        if cond is None:
            return outer
        return self._new_node("&&", 1, [outer, cond])

    def _new_node(
        self, kind: str, width: int, preds: List[Node],
        array: Optional[str] = None, memory: Optional[int] = None,
        predicated: bool = False,
    ) -> Node:
        node = Node(
            index=len(self.nodes), kind=kind, width=width, preds=list(preds),
            array=array, memory=memory, predicated=predicated,
        )
        self.nodes.append(node)
        return node

    def _memory_of_ref(self, ref: ArrayRef) -> int:
        """Physical memory serving this reference.

        Interleaved arrays cycle elements across several memories; the
        access's constant subscript offset (modulo the interleave) picks
        the port it occupies each iteration — distinct offsets never
        collide, same offsets always do, which is exactly what the
        scheduler must see.
        """
        spec = self.interleaved.get(ref.array)
        if spec is None:
            try:
                return self.memory_of[ref.array]
            except KeyError:
                raise SynthesisError(
                    f"array {ref.array!r} has no physical memory assignment"
                ) from None
        from repro.analysis.affine import linearize
        from repro.errors import AnalysisError
        index_expr = ref.indices[spec.dim]
        try:
            affine = linearize(index_expr, list(self.index_widths))
            constant = affine.constant
        except AnalysisError:
            constant = 0  # non-affine: conservatively share port 0's slot
        return spec.memory_for_offset(constant)

    def _element_width(self, array: str) -> int:
        decl = self.symbols.get(array)
        if decl is None or not decl.is_array:
            raise SynthesisError(f"{array!r} is not a declared array")
        return decl.type.width

    def _scalar_width(self, name: str) -> int:
        decl = self.symbols.get(name)
        if decl is not None:
            return decl.type.width
        return self.index_widths.get(name, 32)

    def _width(self, expr: Expr) -> int:
        from repro.ir.expr import COMPARE_OPS, LOGICAL_OPS
        if isinstance(expr, IntLit):
            return max(expr.value.bit_length() + 1, 2)
        if isinstance(expr, VarRef):
            return self._scalar_width(expr.name)
        if isinstance(expr, ArrayRef):
            return self._element_width(expr.array)
        if isinstance(expr, UnOp):
            if expr.op == "!":
                return 1
            return self._width(expr.operand)
        if isinstance(expr, Call):
            return max(self._width(a) for a in expr.args)
        if isinstance(expr, BinOp):
            if expr.op in COMPARE_OPS or expr.op in LOGICAL_OPS:
                return 1
            return max(self._width(expr.left), self._width(expr.right))
        raise SynthesisError(f"cannot size expression {type(expr).__name__}")


def _drop_none(items: List[Optional[Node]]) -> List[Node]:
    return [item for item in items if item is not None]


def _power_of_two_literal(expr: Expr) -> bool:
    return (
        isinstance(expr, IntLit)
        and expr.value > 0
        and expr.value & (expr.value - 1) == 0
    )
