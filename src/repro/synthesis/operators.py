"""Hardware operator library: latency and area per operation and bit width.

Behavioral synthesis *binds* each operation in the specification to a
hardware operator implementation (Section 2.3).  The library below models
Virtex-class implementations at the paper's 40 ns (25 MHz) target clock:
ripple-carry adders and comparators fit in one cycle with carry chains at
half a slice per bit; LUT-based array multipliers take two cycles and
roughly ``W*W/6`` slices; dividers are iterative and expensive.  The
absolute numbers are calibration constants — the DSE algorithm depends
only on sane relative magnitudes and on area growing with width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple


@dataclass(frozen=True)
class OperatorSpec:
    """Latency (cycles) and area (slices) of one bound operator."""

    kind: str
    width: int
    latency: int
    area_slices: int


#: Operation kinds that bind to datapath operators.  Memory accesses and
#: register moves are handled by the scheduler and area model directly.
ADD_LIKE = frozenset({"+", "-"})
MUL_LIKE = frozenset({"*"})
DIV_LIKE = frozenset({"/", "%"})
SHIFT_LIKE = frozenset({"<<", ">>"})
LOGIC_LIKE = frozenset({"&", "|", "^", "~", "!", "&&", "||"})
COMPARE_LIKE = frozenset({"<", "<=", ">", ">=", "==", "!="})
INTRINSIC_LIKE = frozenset({"abs", "min", "max"})
SELECT = "select"  # conditional move materialized from `if` statements


class OperatorLibrary:
    """Maps (operation kind, width) to an :class:`OperatorSpec`.

    Latencies are *derived*: each operator class has a propagation-delay
    model in nanoseconds (carry chains grow linearly with width, array
    multipliers faster, iterative dividers slowest), and the latency in
    cycles is the delay divided by the clock period, rounded up.  At the
    paper's 40 ns clock this reproduces the classic single-cycle adder /
    two-cycle 32-bit multiplier numbers; at a faster clock the same
    operators take more cycles, and *narrower* operators (e.g. after
    bitwidth narrowing) genuinely get faster.

    Instances are immutable in practice; create a custom library by
    passing different calibration constants.
    """

    def __init__(
        self,
        clock_ns: float = 40.0,
        add_slices_per_bit: float = 0.5,
        add_delay_ns: Tuple[float, float] = (2.0, 0.35),
        mul_area_divisor: float = 6.0,
        mul_delay_ns: Tuple[float, float] = (8.0, 1.9),
        div_delay_ns: Tuple[float, float] = (40.0, 8.75),
        fast_delay_ns: Tuple[float, float] = (1.0, 0.20),
        register_bits_per_slice: int = 2,
        # Legacy calibration overrides (fixed cycle counts); None derives
        # latency from the delay model.
        mul_latency: Optional[int] = None,
        div_latency: Optional[int] = None,
    ):
        if clock_ns <= 0:
            raise ValueError("clock period must be positive")
        self.clock_ns = clock_ns
        self.add_slices_per_bit = add_slices_per_bit
        self.add_delay_ns = add_delay_ns
        self.mul_area_divisor = mul_area_divisor
        self.mul_delay_ns = mul_delay_ns
        self.div_delay_ns = div_delay_ns
        self.fast_delay_ns = fast_delay_ns
        self.register_bits_per_slice = register_bits_per_slice
        self.mul_latency = mul_latency
        self.div_latency = div_latency
        self._cache: Dict[Tuple[str, int], OperatorSpec] = {}

    def for_clock(self, clock_ns: float) -> "OperatorLibrary":
        """This calibration retargeted to another clock period."""
        return OperatorLibrary(
            clock_ns=clock_ns,
            add_slices_per_bit=self.add_slices_per_bit,
            add_delay_ns=self.add_delay_ns,
            mul_area_divisor=self.mul_area_divisor,
            mul_delay_ns=self.mul_delay_ns,
            div_delay_ns=self.div_delay_ns,
            fast_delay_ns=self.fast_delay_ns,
            register_bits_per_slice=self.register_bits_per_slice,
            mul_latency=self.mul_latency,
            div_latency=self.div_latency,
        )

    def _cycles(self, delay: Tuple[float, float], width: int) -> int:
        base, per_bit = delay
        nanoseconds = base + per_bit * width
        return max(1, -(-int(nanoseconds * 1000) // int(self.clock_ns * 1000)))

    def spec(self, kind: str, width: int) -> OperatorSpec:
        """The operator implementing ``kind`` at ``width`` bits."""
        key = (kind, width)
        if key not in self._cache:
            self._cache[key] = self._build(kind, width)
        return self._cache[key]

    def _build(self, kind: str, width: int) -> OperatorSpec:
        if width < 1:
            raise ValueError(f"operator width must be positive, got {width}")
        if kind in ADD_LIKE:
            area = max(1, round(width * self.add_slices_per_bit))
            return OperatorSpec(
                kind, width, self._cycles(self.add_delay_ns, width), area
            )
        if kind in MUL_LIKE:
            area = max(4, round(width * width / self.mul_area_divisor))
            latency = self.mul_latency or self._cycles(self.mul_delay_ns, width)
            return OperatorSpec(kind, width, latency, area)
        if kind in DIV_LIKE:
            area = max(8, round(width * width / 3.0))
            latency = self.div_latency or self._cycles(self.div_delay_ns, width)
            return OperatorSpec(kind, width, latency, area)
        if kind in SHIFT_LIKE:
            # Barrel shifter: log-depth mux tree.
            area = max(1, round(width * 0.75))
            return OperatorSpec(
                kind, width, self._cycles(self.fast_delay_ns, width), area
            )
        if kind in LOGIC_LIKE:
            area = max(1, round(width * 0.25))
            return OperatorSpec(
                kind, width, self._cycles(self.fast_delay_ns, width), area
            )
        if kind in COMPARE_LIKE:
            area = max(1, round(width * 0.5))
            return OperatorSpec(
                kind, width, self._cycles(self.add_delay_ns, width), area
            )
        if kind in INTRINSIC_LIKE:
            # abs = compare + conditional negate; min/max = compare + mux.
            area = max(1, round(width * 0.75))
            return OperatorSpec(
                kind, width, self._cycles(self.add_delay_ns, width), area
            )
        if kind == SELECT:
            area = max(1, round(width * 0.25))
            return OperatorSpec(
                kind, width, self._cycles(self.fast_delay_ns, width), area
            )
        raise KeyError(f"no operator for kind {kind!r}")

    def register_slices(self, total_bits: int) -> int:
        """Slices spent holding ``total_bits`` of register state."""
        return -(-total_bits // self.register_bits_per_slice)


def default_library(clock_ns: float = 40.0) -> OperatorLibrary:
    """The calibration used throughout the reproduction."""
    return OperatorLibrary(clock_ns=clock_ns)
