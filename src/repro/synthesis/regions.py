"""Region extraction: carve a program into schedulable units.

Behavioral synthesis schedules straight-line code; loops become FSM
control structure around it.  A program body becomes a tree of

* :class:`Region` — a maximal run of non-loop statements (assignments,
  ``if`` statements, register rotations), scheduled as one dataflow
  graph; and
* :class:`LoopBlock` — a counted loop around a list of child blocks.

``if`` statements are allowed inside regions (they if-convert into
predicated operations and selects, matching the paper's "the generated
code always performs conditional memory accesses"), but a loop nested
inside an ``if`` has data-dependent iteration counts the estimator
cannot bound, so it is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple, Union

from repro.errors import SynthesisError
from repro.ir.stmt import For, If, Stmt, walk_all
from repro.ir.symbols import Program


@dataclass
class Region:
    """A straight-line (loop-free) statement run."""

    statements: Tuple[Stmt, ...]

    def __post_init__(self):
        for stmt in self.statements:
            for inner in stmt.walk():
                if isinstance(inner, For):
                    raise SynthesisError(
                        "a loop nested under an `if` cannot be estimated; "
                        "restructure the program so loops are unconditional"
                    )


@dataclass
class LoopBlock:
    """A counted loop and its schedulable children."""

    loop: For
    children: List["Block"] = field(default_factory=list)

    @property
    def trip_count(self) -> int:
        return self.loop.trip_count


Block = Union[Region, LoopBlock]


def build_blocks(body: Tuple[Stmt, ...]) -> List[Block]:
    """Group a statement sequence into regions and loop blocks."""
    blocks: List[Block] = []
    run: List[Stmt] = []

    def flush() -> None:
        if run:
            blocks.append(Region(tuple(run)))
            run.clear()

    for stmt in body:
        if isinstance(stmt, For):
            flush()
            blocks.append(LoopBlock(stmt, build_blocks(stmt.body)))
        else:
            run.append(stmt)
    flush()
    return blocks


def program_blocks(program: Program) -> List[Block]:
    """The block tree of a whole program body."""
    return build_blocks(program.body)


def iter_regions(blocks: List[Block], executions: int = 1):
    """Yield ``(region, execution_count, enclosing_loop_depth)`` over a
    block tree, multiplying trip counts going inward."""
    for block in blocks:
        if isinstance(block, Region):
            yield block, executions
        else:
            yield from iter_regions(block.children, executions * block.trip_count)


def count_loops(blocks: List[Block]) -> int:
    total = 0
    for block in blocks:
        if isinstance(block, LoopBlock):
            total += 1 + count_loops(block.children)
    return total
