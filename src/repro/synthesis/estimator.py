"""Behavioral synthesis estimation — the Monet(TM) stand-in.

``synthesize(program, board, plan)`` returns an :class:`Estimate` with
the two quantities the DSE algorithm consumes — ``space`` (slices) and
``cycles`` — plus the fetch/consumption rates behind the balance metric
and a full breakdown for reports.

Cycle model: each straight-line region is ASAP-scheduled under memory
port constraints (:mod:`repro.synthesis.scheduling`); a loop costs
``trip_count * (body_cycles + 1)`` — one cycle of FSM overhead per
iteration for the counter increment/test.

Balance: computed over the *steady-state nest* (the top-level loop whose
regions execute most — prologues peeled off by the compiler run once and
epilogues cover leftovers).  With per-region execution counts ``n_r``::

    F = sum(bits_r * n_r) / sum(mem_only_r * n_r)      [bits/cycle]
    C = sum(bits_r * n_r) / sum(compute_only_r * n_r)  [bits/cycle]
    Balance = F / C

which reduces to compute-time over memory-time: Balance < 1 means the
datapath waits on memory (memory bound), > 1 means memory waits on the
datapath (compute bound), exactly Section 3's reading.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import SynthesisError
from repro.ir.symbols import Program
from repro.layout.mapping import map_memories
from repro.layout.plan import LayoutPlan
from repro.synthesis.area import (
    AreaBreakdown, controller_area, index_variable_widths,
    memory_interface_area, operator_area, register_area,
)
from repro.synthesis.dfg import DataflowBuilder
from repro.synthesis.operators import OperatorLibrary, default_library
from repro.synthesis.regions import Block, LoopBlock, Region, program_blocks
from repro.synthesis.scheduling import (
    RegionSchedule, ResourceConstraints, merge_operator_demand, schedule_region,
)
from repro.target.board import Board

#: FSM cycles per loop iteration beyond the body schedule.
LOOP_OVERHEAD_CYCLES = 1


@dataclass(frozen=True)
class Estimate:
    """The synthesis estimate for one design point."""

    cycles: int
    space: int
    area: AreaBreakdown
    fetch_rate: float          # F, bits/cycle the memories provide
    consumption_rate: float    # C, bits/cycle the datapath can consume
    balance: float             # F / C
    operator_demand: Dict[Tuple[str, int], int]
    memory_traffic: Dict[int, int]
    register_bits: int
    region_count: int
    clock_ns: float
    #: which backend produced this estimate and how (see
    #: :class:`repro.estimate.Provenance`); ``None`` for a bare
    #: ``synthesize()`` call.  Excluded from equality: two estimates of
    #: the same design agree regardless of which backend answered.
    provenance: Optional[Any] = field(default=None, compare=False)

    def with_provenance(self, provenance: Any) -> "Estimate":
        from dataclasses import replace
        return replace(self, provenance=provenance)

    @property
    def memory_bound(self) -> bool:
        return self.balance < 1.0

    @property
    def compute_bound(self) -> bool:
        return self.balance > 1.0

    @property
    def execution_time_us(self) -> float:
        return self.cycles * self.clock_ns / 1000.0

    def fits(self, board: Board) -> bool:
        return board.fpga.fits(self.space)

    def summary(self) -> str:
        kind = "memory-bound" if self.memory_bound else (
            "compute-bound" if self.compute_bound else "balanced"
        )
        return (
            f"{self.cycles} cycles, {self.space} slices, "
            f"balance {self.balance:.3f} ({kind})"
        )


def synthesize(
    program: Program,
    board: Board,
    plan: Optional[LayoutPlan] = None,
    library: Optional[OperatorLibrary] = None,
    constraints: Optional[ResourceConstraints] = None,
) -> Estimate:
    """Estimate space and performance for one program on one board.

    ``constraints`` bounds the operator allocation (Section 2.3's "a
    design that uses two multipliers"): limited kinds serialize onto
    their units, trading cycles for area.
    """
    library = library or default_library(board.clock_ns)
    if plan is not None:
        physical = dict(plan.physical)
        interleaved = dict(plan.interleaved)
    else:
        physical, interleaved = map_memories(program, board.num_memories)
    used_ids = set(physical.values())
    for spec in interleaved.values():
        used_ids.update(spec.memories)
    bad = [m for m in used_ids if m >= board.num_memories]
    if bad:
        raise SynthesisError(
            f"layout uses memory ids {sorted(set(bad))} but the board has "
            f"only {board.num_memories} memories"
        )

    index_widths = index_variable_widths(program)
    blocks = program_blocks(program)

    # Cross-point reuse: regions unchanged between neighboring design
    # points hit the ambient memo's schedule domain and skip the DFG
    # build + ASAP scheduling entirely.  The fingerprint covers the
    # region's statements, referenced declarations, and everything
    # schedule_region consults — so a hit is bit-identical to a rebuild.
    from repro.incremental.memo import current_memo
    memo = current_memo()
    memo_context = None
    if memo is not None:
        from repro.incremental.hashing import schedule_context
        memo_context = schedule_context(
            physical, interleaved, index_widths, board.memory, library,
            constraints,
        )

    schedules: List[RegionSchedule] = []
    executed: List[Tuple[RegionSchedule, int]] = []

    def schedule_block(block: Block, executions: int) -> int:
        """Cycles for one block; records schedules along the way."""
        if isinstance(block, Region):
            schedule = None
            fingerprint = None
            if memo is not None:
                from repro.incremental.hashing import region_fingerprint
                fingerprint = region_fingerprint(
                    block.statements, memo_context,
                    symbols=program.symbol_table,
                )
                schedule = memo.schedule_get(fingerprint)
            if schedule is None:
                builder = DataflowBuilder(
                    program, physical, index_widths, interleaved
                )
                schedule = schedule_region(
                    builder.build(block), board.memory, library, constraints
                )
                if memo is not None:
                    memo.schedule_put(fingerprint, schedule)
                    memo.note_region(fingerprint, scheduled=True)
            elif memo is not None:
                memo.note_region(fingerprint, scheduled=False)
            schedules.append(schedule)
            executed.append((schedule, executions))
            return schedule.length
        body_cycles = sum(
            schedule_block(child, executions * block.trip_count)
            for child in block.children
        )
        return block.trip_count * (body_cycles + LOOP_OVERHEAD_CYCLES)

    total_cycles = 0
    per_top_block: List[Tuple[Block, int, int]] = []  # block, cycles, first schedule idx
    for block in blocks:
        first_schedule = len(executed)
        cycles = schedule_block(block, 1)
        total_cycles += cycles
        per_top_block.append((block, cycles, first_schedule))

    fetch_rate, consumption_rate, balance = _steady_state_balance(
        per_top_block, executed
    )

    demand = merge_operator_demand(schedules)
    traffic: Dict[int, int] = {}
    for schedule, executions in executed:
        for memory, count in schedule.memory_traffic.items():
            traffic[memory] = traffic.get(memory, 0) + count * executions

    used_arrays = _used_arrays(program, physical)

    register_bits = sum(decl.type.width for decl in program.scalars())
    register_bits += sum(index_widths.values())
    total_states = sum(schedule.length for schedule in schedules)
    from repro.synthesis.regions import count_loops
    area = AreaBreakdown(
        operators=operator_area(demand, library),
        registers=register_area(program, index_widths, library),
        memory_interface=memory_interface_area(physical, used_arrays, interleaved),
        controller=controller_area(total_states, count_loops(blocks)),
    )

    return Estimate(
        cycles=total_cycles,
        space=area.total,
        area=area,
        fetch_rate=fetch_rate,
        consumption_rate=consumption_rate,
        balance=balance,
        operator_demand=demand,
        memory_traffic=traffic,
        register_bits=register_bits,
        region_count=len(schedules),
        clock_ns=board.clock_ns,
    )


def _steady_state_balance(
    per_top_block: List[Tuple[Block, int, int]],
    executed: List[Tuple[RegionSchedule, int]],
) -> Tuple[float, float, float]:
    """F, C, and balance over the steady-state nest's regions."""
    steady = _steady_state_slice(per_top_block, executed)
    bits = sum(s.memory_bits * n for s, n in steady)
    memory_time = sum(s.memory_only_length * n for s, n in steady)
    compute_time = sum(s.compute_only_length * n for s, n in steady)
    fetch = bits / memory_time if memory_time else float("inf")
    consume = bits / compute_time if compute_time else float("inf")
    if memory_time and compute_time:
        balance = compute_time / memory_time
    elif memory_time:
        balance = 0.0            # traffic but no computation: memory bound
    elif compute_time:
        balance = float("inf")   # computation with no traffic: compute bound
    else:
        balance = 1.0            # empty design: call it balanced
    return fetch, consume, balance


def _steady_state_slice(
    per_top_block: List[Tuple[Block, int, int]],
    executed: List[Tuple[RegionSchedule, int]],
) -> List[Tuple[RegionSchedule, int]]:
    """The schedules belonging to the steady-state top-level loop.

    Peeling leaves [prologue..., main nest, epilogue...] at top level;
    the main nest is the loop block whose regions execute the most, ties
    going to the later block.  Programs with no loops fall back to all
    regions.
    """
    best: Optional[Tuple[int, int, int]] = None  # (weight, index, end)
    for index, (block, _cycles, first) in enumerate(per_top_block):
        if not isinstance(block, LoopBlock):
            continue
        end = (
            per_top_block[index + 1][2]
            if index + 1 < len(per_top_block) else len(executed)
        )
        weight = sum(n for _s, n in executed[first:end])
        if best is None or weight >= best[0]:
            best = (weight, first, end)
    if best is None:
        return executed
    return executed[best[1]:best[2]]


def _used_arrays(program: Program, physical: Mapping[str, int]) -> List[str]:
    """Arrays actually referenced somewhere in the program body."""
    from repro.ir.expr import ArrayRef
    used = set()
    for stmt in program.statements():
        for expr in stmt.expressions():
            for node in expr.walk():
                if isinstance(node, ArrayRef):
                    used.add(node.array)
    return sorted(used)
