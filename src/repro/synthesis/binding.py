"""Operator binding: assign scheduled operations to hardware units.

Section 2.3 lists binding as one of behavioral synthesis's three core
functions ("selecting a ripple-carry adder to implement an addition"),
alongside allocation and scheduling.  The estimator's area model only
needs the *count* of units (peak concurrency); this module produces the
assignment itself — which operations share which physical operator —
using the classic left-edge algorithm over the scheduled intervals.

The binding is what a netlist generator would consume, and it yields a
quantity the allocation count hides: per-unit utilization, i.e. how busy
each operator actually is across the region schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.synthesis.dfg import Dataflow, Node
from repro.synthesis.scheduling import RegionSchedule


@dataclass(frozen=True)
class BoundUnit:
    """One physical operator and the operations it executes."""

    kind: str
    width: int
    unit_id: int
    #: (node index, start, finish) per operation, in start order.
    assignments: Tuple[Tuple[int, int, int], ...]

    @property
    def busy_cycles(self) -> int:
        return sum(finish - start for _node, start, finish in self.assignments)

    def utilization(self, schedule_length: int) -> float:
        if schedule_length == 0:
            return 0.0
        return self.busy_cycles / schedule_length


@dataclass
class OperatorBinding:
    """The full binding for one region."""

    units: List[BoundUnit]
    schedule_length: int

    def units_of(self, kind: str, width: int) -> List[BoundUnit]:
        return [u for u in self.units if u.kind == kind and u.width == width]

    def unit_count(self, kind: str, width: int) -> int:
        return len(self.units_of(kind, width))

    def average_utilization(self) -> float:
        if not self.units or self.schedule_length == 0:
            return 0.0
        return sum(u.busy_cycles for u in self.units) / (
            len(self.units) * self.schedule_length
        )

    def describe(self) -> str:
        lines = [f"operator binding over {self.schedule_length} cycles:"]
        for unit in self.units:
            lines.append(
                f"  {unit.kind}/{unit.width}b unit {unit.unit_id}: "
                f"{len(unit.assignments)} ops, "
                f"{100 * unit.utilization(self.schedule_length):.0f}% busy"
            )
        return "\n".join(lines)


def bind_operators(dfg: Dataflow, schedule: RegionSchedule) -> OperatorBinding:
    """Left-edge binding of the region's datapath operations.

    Operations of each (kind, width) class are sorted by start time and
    greedily packed onto the first unit free at their start — optimal in
    unit count for interval scheduling, and by construction it never
    exceeds the schedule's measured peak concurrency.
    """
    by_class: Dict[Tuple[str, int], List[Node]] = {}
    for node in dfg.op_nodes:
        by_class.setdefault((node.kind, node.width), []).append(node)

    units: List[BoundUnit] = []
    for (kind, width), nodes in sorted(by_class.items()):
        intervals = sorted(
            (schedule.start_times[n.index], schedule.finish_times[n.index], n.index)
            for n in nodes
        )
        unit_assignments: List[List[Tuple[int, int, int]]] = []
        unit_free: List[int] = []
        for start, finish, node_index in intervals:
            placed = False
            for unit_id, free_at in enumerate(unit_free):
                if free_at <= start:
                    unit_assignments[unit_id].append((node_index, start, finish))
                    unit_free[unit_id] = max(finish, start + 1)
                    placed = True
                    break
            if not placed:
                unit_assignments.append([(node_index, start, finish)])
                unit_free.append(max(finish, start + 1))
        for unit_id, assignments in enumerate(unit_assignments):
            units.append(BoundUnit(
                kind=kind, width=width, unit_id=unit_id,
                assignments=tuple(assignments),
            ))
    return OperatorBinding(units=units, schedule_length=schedule.length)
