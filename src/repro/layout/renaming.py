"""Array renaming: the first phase of custom data layout (Section 4).

Performs a 1-to-1 mapping between array access expressions and virtual
memory ids.  An array qualifies when all of its accesses are *uniformly
generated* (identical linear subscript parts); the per-dimension modulus
is the GCD of that dimension's coefficients, so each access's residue —
hence its bank — is a compile-time constant.  The effect on FIR unrolled
by 2 is exactly Figure 1(d): even elements of ``S`` go to one bank, odd
to another, and ``S[2i + 2j + o]`` becomes ``S<o%2>[i + j + o/2]``.

Renaming runs after loop normalization, on the whole transformed program
(steady-state nest *and* peeled prologues), so every reference is
rewritten consistently.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.affine import AffineExpr, linearize
from repro.errors import AnalysisError, LayoutError
from repro.ir.expr import ArrayRef, BinOp, Expr, IntLit, VarRef
from repro.ir.stmt import Assign, For, If, RotateRegisters, Stmt
from repro.ir.symbols import Program, VarDecl
from repro.layout.plan import BankedArray


@dataclass(frozen=True)
class ObservedAccess:
    """One array reference with its affine form in its own loop scope."""

    array: str
    subscripts: Tuple[AffineExpr, ...]
    is_write: bool
    #: nesting depth of the reference (loops entered), for mapping order.
    depth: int
    #: index of the top-level statement containing it (regions).
    region: int
    #: monotone program-order counter.
    order: int


def observe_accesses(program: Program) -> List[ObservedAccess]:
    """Collect every array access in the program with affine subscripts.

    Raises :class:`AnalysisError` if any subscript is not affine in the
    loop indices in scope at that point.
    """
    observed: List[ObservedAccess] = []
    counter = [0]

    def visit_expr(expr: Expr, scope: List[str], depth: int, region: int) -> None:
        for node in expr.walk():
            if isinstance(node, ArrayRef):
                _record(node, scope, depth, region, is_write=False)

    def _record(ref: ArrayRef, scope: List[str], depth: int, region: int,
                is_write: bool) -> None:
        subscripts = tuple(linearize(index, scope) for index in ref.indices)
        observed.append(ObservedAccess(
            ref.array, subscripts, is_write, depth, region, counter[0]
        ))
        counter[0] += 1

    def visit_stmt(stmt: Stmt, scope: List[str], depth: int, region: int) -> None:
        if isinstance(stmt, Assign):
            visit_expr(stmt.value, scope, depth, region)
            if isinstance(stmt.target, ArrayRef):
                for index in stmt.target.indices:
                    visit_expr(index, scope, depth, region)
                _record(stmt.target, scope, depth, region, is_write=True)
        elif isinstance(stmt, If):
            visit_expr(stmt.cond, scope, depth, region)
            for inner in stmt.then_body + stmt.else_body:
                visit_stmt(inner, scope, depth, region)
        elif isinstance(stmt, For):
            scope.append(stmt.var)
            for inner in stmt.body:
                visit_stmt(inner, scope, depth + 1, region)
            scope.pop()
        elif isinstance(stmt, RotateRegisters):
            pass
        else:
            raise AnalysisError(f"unknown statement node {type(stmt).__name__}")

    for region, stmt in enumerate(program.body):
        visit_stmt(stmt, [], 0, region)
    return observed


def derive_moduli(
    accesses: Sequence[ObservedAccess], array_decl: VarDecl
) -> Optional[Tuple[int, ...]]:
    """Per-dimension bank moduli for one array, or ``None`` if the array
    cannot be renamed (accesses are not uniformly generated).

    The modulus of a dimension is the GCD of every coefficient appearing
    in that dimension's subscripts across all accesses; the residue of
    each access is then constant.  A dimension with a constant subscript
    gets modulus 1 (nothing to distribute).
    """
    members = [a for a in accesses if a.array == array_decl.name]
    if not members:
        return None
    # The paper requires all accesses to be uniformly generated.  We relax
    # this to the condition renaming actually needs: in every dimension,
    # every coefficient must be divisible by the modulus so each access's
    # residue (bank) is a compile-time constant.  Taking the GCD over all
    # accesses subsumes the uniformly generated case and also covers the
    # peeled prologue, whose substituted subscripts have different linear
    # parts but compatible strides.  Non-uniform access patterns simply
    # drive the GCD to 1 (no banking), the paper's single-memory fallback.
    moduli: List[int] = []
    for dim in range(len(array_decl.dims)):
        divisor = 0
        for access in members:
            for _, coeff in access.subscripts[dim].terms:
                divisor = gcd(divisor, abs(coeff))
        moduli.append(max(divisor, 1))
    return tuple(moduli)


@dataclass
class RenamingResult:
    program: Program
    banked: Dict[str, BankedArray]
    new_decls: List[VarDecl]


def rename_arrays(
    program: Program, max_total_banks: Optional[int] = None
) -> RenamingResult:
    """Apply array renaming to every qualifying array.

    Args:
        program: normalized, transformed program.
        max_total_banks: optional cap on banks per array (moduli are
            reduced to divisors so the product stays within the cap) —
            keeps pathological strides from exploding into thousands of
            tiny arrays.
    """
    accesses = observe_accesses(program)
    taken: Set[str] = {decl.name for decl in program.decls}
    banked: Dict[str, BankedArray] = {}
    new_decls: List[VarDecl] = []

    for decl in program.arrays():
        moduli = derive_moduli(accesses, decl)
        if moduli is None or all(m == 1 for m in moduli):
            continue
        moduli = _cap_moduli(moduli, max_total_banks)
        if all(m == 1 for m in moduli):
            continue
        bank_dims = tuple(
            -(-extent // modulus) for extent, modulus in zip(decl.dims, moduli)
        )
        banks: Dict[Tuple[int, ...], str] = {}
        for residues in _residue_vectors(moduli):
            index = _mixed_radix(residues, moduli)
            name = _fresh(f"{decl.name}{index}", taken)
            banks[residues] = name
            new_decls.append(VarDecl(name, decl.type, bank_dims))
        banked[decl.name] = BankedArray(
            original=decl.name,
            moduli=moduli,
            original_dims=decl.dims,
            banks=banks,
            bank_dims=bank_dims,
        )

    if not banked:
        return RenamingResult(program, {}, [])
    rewritten = _rewrite_program(program, banked)
    # Drop the original declarations of banked arrays; keep everything else.
    remaining = tuple(
        decl for decl in rewritten.decls if decl.name not in banked
    )
    final = Program(rewritten.name, remaining + tuple(new_decls), rewritten.body)
    return RenamingResult(final, banked, new_decls)


def _cap_moduli(
    moduli: Tuple[int, ...], max_total_banks: Optional[int]
) -> Tuple[int, ...]:
    if max_total_banks is None:
        return moduli
    result = list(moduli)
    while _product(result) > max_total_banks:
        # Halve the largest modulus via its smallest prime factor.
        largest = max(range(len(result)), key=lambda d: result[d])
        if result[largest] == 1:
            break
        result[largest] //= _smallest_prime_factor(result[largest])
    return tuple(result)


def _smallest_prime_factor(value: int) -> int:
    for candidate in range(2, value + 1):
        if value % candidate == 0:
            return candidate
    return value


def _residue_vectors(moduli: Tuple[int, ...]):
    if not moduli:
        yield ()
        return
    for rest in _residue_vectors(moduli[1:]):
        for residue in range(moduli[0]):
            yield (residue,) + rest


def _mixed_radix(residues: Tuple[int, ...], moduli: Tuple[int, ...]) -> int:
    index = 0
    for residue, modulus in zip(residues, moduli):
        index = index * modulus + residue
    return index


def _fresh(base: str, taken: Set[str]) -> str:
    name = base
    counter = 0
    while name in taken:
        counter += 1
        name = f"{base}_{counter}"
    taken.add(name)
    return name


def _product(values: Sequence[int]) -> int:
    result = 1
    for value in values:
        result *= value
    return result


# ---------------------------------------------------------------------------
# Reference rewriting
# ---------------------------------------------------------------------------

def _rewrite_program(program: Program, banked: Dict[str, BankedArray]) -> Program:
    def rewrite_stmt(stmt: Stmt, scope: List[str]) -> Stmt:
        if isinstance(stmt, Assign):
            target = rewrite_expr(stmt.target, scope)
            assert isinstance(target, (VarRef, ArrayRef))
            return Assign(target, rewrite_expr(stmt.value, scope))
        if isinstance(stmt, If):
            return If(
                rewrite_expr(stmt.cond, scope),
                tuple(rewrite_stmt(s, scope) for s in stmt.then_body),
                tuple(rewrite_stmt(s, scope) for s in stmt.else_body),
            )
        if isinstance(stmt, For):
            scope.append(stmt.var)
            body = tuple(rewrite_stmt(s, scope) for s in stmt.body)
            scope.pop()
            return For(stmt.var, stmt.lower, stmt.upper, stmt.step, body)
        return stmt

    def rewrite_expr(expr: Expr, scope: List[str]) -> Expr:
        if isinstance(expr, ArrayRef):
            indices = tuple(rewrite_expr(e, scope) for e in expr.indices)
            plan = banked.get(expr.array)
            if plan is None:
                return ArrayRef(expr.array, indices)
            return _rebank(ArrayRef(expr.array, indices), plan, scope)
        if isinstance(expr, BinOp):
            return BinOp(
                expr.op, rewrite_expr(expr.left, scope), rewrite_expr(expr.right, scope)
            )
        from repro.ir.expr import Call, UnOp
        if isinstance(expr, UnOp):
            return UnOp(expr.op, rewrite_expr(expr.operand, scope))
        if isinstance(expr, Call):
            return Call(expr.name, tuple(rewrite_expr(a, scope) for a in expr.args))
        return expr

    body = tuple(rewrite_stmt(stmt, []) for stmt in program.body)
    return program.with_body(body)


def _rebank(ref: ArrayRef, plan: BankedArray, scope: List[str]) -> ArrayRef:
    """Rewrite one reference: pick its bank by residue, divide the
    subscripts by the moduli."""
    residues: List[int] = []
    new_indices: List[Expr] = []
    for index_expr, modulus in zip(ref.indices, plan.moduli):
        affine = linearize(index_expr, scope)
        residue = affine.constant % modulus
        residues.append(residue)
        terms = {}
        for var, coeff in affine.terms:
            if coeff % modulus != 0:
                raise LayoutError(
                    f"{ref.array}: coefficient {coeff} not divisible by "
                    f"modulus {modulus}; renaming precondition violated"
                )
            terms[var] = coeff // modulus
        constant = (affine.constant - residue) // modulus
        new_indices.append(
            _affine_to_expr(AffineExpr.from_parts(terms, constant))
        )
    bank_name = plan.banks[tuple(residues)]
    return ArrayRef(bank_name, tuple(new_indices))


def _affine_to_expr(affine: AffineExpr) -> Expr:
    expr: Optional[Expr] = None
    for var, coeff in affine.terms:
        term: Expr = VarRef(var) if coeff == 1 else BinOp(
            "*", IntLit(coeff), VarRef(var)
        )
        expr = term if expr is None else BinOp("+", expr, term)
    if expr is None:
        return IntLit(affine.constant)
    if affine.constant:
        expr = BinOp("+", expr, IntLit(affine.constant))
    return expr
