"""Memory mapping: the second phase of custom data layout.

Binds virtual memory ids (post-renaming array names) to the physical
memories of the board.  Following Section 5.2: read accesses are
considered first, in access order, so the total number of memory reads
in the loop distributes evenly across memories for all arrays; then
writes are mapped in the same round-robin order.  We rank accesses by
nesting depth (deepest first) so the steady-state innermost-body reads —
the ones executed most — claim the least-loaded memories, and
prologue-only accesses (rotating-bank fills) share them afterwards.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Set, Tuple

from repro.ir.symbols import Program
from repro.layout.plan import InterleavedArray
from repro.layout.renaming import ObservedAccess, observe_accesses


def map_memories(
    program: Program,
    num_memories: int,
    accesses: Optional[Sequence[ObservedAccess]] = None,
    interleave_specs: Optional[Mapping[str, Tuple[int, int]]] = None,
) -> Tuple[Dict[str, int], Dict[str, InterleavedArray]]:
    """Assign every array of ``program`` physical memory ids.

    Returns ``(physical, interleaved)``: ``physical`` maps each
    non-interleaved array name to one memory id; ``interleaved`` maps
    each interleaved array to its :class:`InterleavedArray` spanning
    ``modulus`` consecutive memories (wrapping round-robin like the
    single assignments).
    """
    if num_memories < 1:
        raise ValueError(f"num_memories must be >= 1, got {num_memories}")
    if accesses is None:
        accesses = observe_accesses(program)
    interleave_specs = interleave_specs or {}

    assignment: Dict[str, int] = {}
    interleaved: Dict[str, InterleavedArray] = {}
    next_memory = 0

    def assign(name: str) -> None:
        nonlocal next_memory
        if name in assignment or name in interleaved:
            return
        spec = interleave_specs.get(name)
        if spec is not None:
            dim, modulus = spec
            memories = tuple(
                (next_memory + k) % num_memories for k in range(modulus)
            )
            interleaved[name] = InterleavedArray(
                array=name, dim=dim, modulus=modulus, memories=memories
            )
            next_memory += modulus
            return
        assignment[name] = next_memory % num_memories
        next_memory += 1

    # The steady-state nest is the last top-level loop (peeled prologues
    # precede it).  Its accesses execute every iteration, so they claim
    # memories first; prologue-only arrays then share round-robin, which
    # is conflict-free because prologue and steady state never overlap in
    # time.  This reproduces the paper's FIR mapping: S -> mem 0/1,
    # D -> mem 2/3, and the bank-fill reads of C share 0/1.
    main_region = max(
        (a.region for a in accesses), default=-1
    )

    def rank(access: ObservedAccess):
        return (0 if access.region == main_region else 1, -access.depth, access.order)

    for access in sorted((a for a in accesses if not a.is_write), key=rank):
        assign(access.array)
    for access in sorted((a for a in accesses if a.is_write), key=rank):
        assign(access.array)
    for decl in program.arrays():
        assign(decl.name)
    return assignment, interleaved
