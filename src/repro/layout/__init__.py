"""Custom data layout: array renaming to virtual memories and binding to
physical memories (Section 4 and Section 5.2 of the paper).

Two distribution mechanisms implement the paper's cyclic layouts:

* **static banking** (:mod:`repro.layout.renaming`) — when subscript
  strides share a common factor, elements split into separately-named
  bank arrays with rewritten subscripts (Figure 1(d)'s ``S0``/``S1``);
* **dynamic interleaving** (:mod:`repro.layout.interleave`) — when they
  do not, elements are laid out cyclically and the memory binder's
  address decoding routes each access; the unrolled copies' distinct
  offsets still reach distinct memories every cycle.
"""

from typing import Optional, Tuple

from repro.ir.symbols import Program
from repro.layout.interleave import derive_interleaves
from repro.layout.mapping import map_memories
from repro.layout.plan import BankedArray, InterleavedArray, LayoutPlan
from repro.layout.renaming import (
    ObservedAccess, RenamingResult, derive_moduli, observe_accesses,
    rename_arrays,
)

__all__ = [
    "BankedArray", "InterleavedArray", "LayoutPlan", "ObservedAccess",
    "RenamingResult", "apply_layout", "derive_interleaves", "derive_moduli",
    "map_memories", "observe_accesses", "rename_arrays",
]


def apply_layout(
    program: Program,
    num_memories: int,
    max_banks_per_array: Optional[int] = None,
) -> Tuple[Program, LayoutPlan]:
    """Run both layout phases and return the rewritten program + plan.

    ``max_banks_per_array`` defaults to ``num_memories`` — distributing an
    array across more virtual banks than there are physical memories
    cannot add parallelism and only fragments storage.
    """
    if max_banks_per_array is None:
        max_banks_per_array = num_memories
    renamed = rename_arrays(program, max_total_banks=max_banks_per_array)
    accesses = observe_accesses(renamed.program)
    # Statically banked arrays may interleave further ("cyclic in at
    # least one dimension, possibly more"): S0 holding the even elements
    # can itself cycle across two memories if its accesses still carry
    # distinct offsets.
    specs = derive_interleaves(renamed.program, accesses, set(), num_memories)
    physical, interleaved = map_memories(
        renamed.program, num_memories, accesses, specs
    )
    plan = LayoutPlan(
        num_memories=num_memories,
        banked=renamed.banked,
        physical=physical,
        interleaved=interleaved,
        new_decls=renamed.new_decls,
    )
    return renamed.program, plan
