"""Dynamic cyclic interleaving: the renaming fallback.

Static residue banking (:mod:`repro.layout.renaming`) needs every
subscript coefficient divisible by the bank modulus.  When the GCD of
the strides is 1 — FIR's ``S[i + j + k]`` after unrolling only the
``j`` loop — no static split exists, yet the paper's layout still
parallelizes the accesses: lay the elements out cyclically modulo the
memory count, and the unrolled copies' distinct constant offsets land
on distinct memories *every* iteration even though each element's home
memory depends on the iteration.

This module decides which arrays get interleaved and along which
dimension.  The code is not rewritten (the array keeps its name; the
binder's address decoding implements the distribution), so the decision
is consumed by the memory mapper and the synthesis estimator.

An array qualifies when:

* it was not already statically banked;
* all its accesses are uniformly generated along the chosen dimension
  (identical linear parts) — otherwise the dynamic banks of two accesses
  can collide unpredictably and no parallelism is guaranteed;
* at least two accesses differ in their constant offset modulo the
  memory count — otherwise interleaving buys nothing.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.ir.symbols import Program
from repro.layout.plan import InterleavedArray
from repro.layout.renaming import ObservedAccess


def derive_interleaves(
    program: Program,
    accesses: Sequence[ObservedAccess],
    already_banked: Set[str],
    num_memories: int,
) -> Dict[str, Tuple[int, int]]:
    """Pick ``{array: (dim, modulus)}`` for arrays worth interleaving.

    Memory ids are assigned later by the mapper; this only chooses the
    distribution.
    """
    if num_memories < 2:
        return {}
    result: Dict[str, Tuple[int, int]] = {}
    for decl in program.arrays():
        if decl.name in already_banked:
            continue
        members = [a for a in accesses if a.array == decl.name]
        if len(members) < 2:
            continue
        choice = _best_dimension(members, len(decl.dims), decl.dims, num_memories)
        if choice is not None:
            result[decl.name] = choice
    return result


def _best_dimension(
    members: Sequence[ObservedAccess],
    rank: int,
    dims: Tuple[int, ...],
    num_memories: int,
) -> Tuple[int, int]:
    """The dimension with the most distinct offset residues, or ``None``.

    Accesses are grouped by their linear signature: a peeled prologue's
    substituted subscripts differ from the steady-state body's, but the
    two regions never execute concurrently, so parallelism only needs
    distinct residues *within* a signature group.  The modulus is the
    memory count (capped by the extent): cyclic across all memories
    maximizes the spread of the unrolled copies.
    """
    best = None
    for dim in range(rank):
        max_modulus = min(num_memories, dims[dim])
        if max_modulus < 2:
            continue
        if not any(m.subscripts[dim].terms for m in members):
            continue  # every subscript constant: nothing cycles
        # Smallest modulus that achieves the best spread: consuming more
        # memories than the accesses can occupy just starves other arrays.
        for modulus in range(2, max_modulus + 1):
            groups: Dict[Tuple, Set[int]] = {}
            for member in members:
                subscript = member.subscripts[dim]
                groups.setdefault(subscript.terms, set()).add(
                    subscript.constant % modulus
                )
            spread = max(len(residues) for residues in groups.values())
            if spread < 2:
                continue
            key = (spread, -modulus)
            if best is None or key > (best[2], -best[1]):
                best = (dim, modulus, spread)
    if best is None:
        return None
    return best[0], best[1]
