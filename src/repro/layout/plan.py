"""Layout plan datatypes.

A :class:`LayoutPlan` records how the custom data layout distributed each
array across memory banks and which physical memory every (renamed)
array lives in.  It also knows how to convert array contents between the
original and the banked representation — used by the interpreter-based
equivalence tests and by the examples to prepare inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import LayoutError
from repro.ir.symbols import VarDecl


@dataclass(frozen=True)
class BankedArray:
    """How one original array was split into per-residue bank arrays.

    Element ``A[x1]...[xn]`` lives in bank ``(x1 % m1, ..., xn % mn)`` at
    local index ``(x1 // m1, ..., xn // mn)`` — a cyclic distribution in
    each dimension with modulus vector ``moduli``.
    """

    original: str
    moduli: Tuple[int, ...]
    original_dims: Tuple[int, ...]
    #: residue vector -> bank array name, in mixed-radix order.
    banks: Dict[Tuple[int, ...], str]
    #: dimensions of every bank array (uniform, padded with ceil division).
    bank_dims: Tuple[int, ...]

    @property
    def bank_count(self) -> int:
        count = 1
        for modulus in self.moduli:
            count *= modulus
        return count

    def bank_of(self, indices: Sequence[int]) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """(residue vector, local indices) for one original element."""
        residues = tuple(x % m for x, m in zip(indices, self.moduli))
        local = tuple(x // m for x, m in zip(indices, self.moduli))
        return residues, local

    def distribute(self, values: Sequence[int]) -> Dict[str, List[int]]:
        """Split flat row-major ``values`` of the original array into flat
        row-major contents per bank array (padded slots are zero)."""
        if len(values) != _product(self.original_dims):
            raise LayoutError(
                f"{self.original}: expected {_product(self.original_dims)} values, "
                f"got {len(values)}"
            )
        contents = {
            name: [0] * _product(self.bank_dims) for name in self.banks.values()
        }
        for flat, value in enumerate(values):
            indices = _unflatten(flat, self.original_dims)
            residues, local = self.bank_of(indices)
            bank_name = self.banks[residues]
            contents[bank_name][_flatten(local, self.bank_dims)] = value
        return contents

    def gather(self, bank_contents: Mapping[str, Sequence[int]]) -> List[int]:
        """Reassemble the original flat row-major contents from banks."""
        values = [0] * _product(self.original_dims)
        for flat in range(len(values)):
            indices = _unflatten(flat, self.original_dims)
            residues, local = self.bank_of(indices)
            bank_name = self.banks[residues]
            values[flat] = bank_contents[bank_name][_flatten(local, self.bank_dims)]
        return values


@dataclass(frozen=True)
class InterleavedArray:
    """A cyclic element interleave across several memories.

    When static residue banking is impossible (subscript strides with
    GCD 1, e.g. FIR's ``S[i + j + k]`` after unrolling only ``j``), the
    paper's renaming still maps each *access expression* to its own
    virtual memory: with elements laid out cyclically modulo ``modulus``
    along dimension ``dim``, the accesses' distinct constant offsets put
    them on distinct memories every iteration, even though the memory an
    individual element lives in varies.  The array keeps its name — the
    interleave lives in the memory binder (address low bits select the
    chip), not in the code.
    """

    array: str
    dim: int
    modulus: int
    memories: Tuple[int, ...]

    def memory_for_offset(self, constant: int) -> int:
        return self.memories[constant % self.modulus]


@dataclass
class LayoutPlan:
    """The complete result of array renaming + memory mapping."""

    num_memories: int
    #: original array name -> its banked decomposition (only arrays that
    #: were actually split; unsplit arrays are absent).
    banked: Dict[str, BankedArray] = field(default_factory=dict)
    #: every post-layout array name -> physical memory id in [0, num_memories).
    physical: Dict[str, int] = field(default_factory=dict)
    #: arrays distributed cyclically without renaming (dynamic banking).
    interleaved: Dict[str, InterleavedArray] = field(default_factory=dict)
    #: declarations for the bank arrays introduced.
    new_decls: List[VarDecl] = field(default_factory=list)

    def memory_of(self, array: str) -> int:
        """Home memory of a non-interleaved array (interleaved arrays span
        several; consult :attr:`interleaved` for those)."""
        try:
            return self.physical[array]
        except KeyError:
            raise LayoutError(f"array {array!r} has no physical memory assignment") from None

    def arrays_on(self, memory: int) -> List[str]:
        return sorted(name for name, m in self.physical.items() if m == memory)

    def distribute_inputs(
        self, inputs: Mapping[str, Sequence[int]]
    ) -> Dict[str, List[int]]:
        """Convert original-array inputs into post-layout inputs.

        Arrays without a banked entry pass through unchanged.
        """
        result: Dict[str, List[int]] = {}
        for name, values in inputs.items():
            if name in self.banked:
                result.update(self.banked[name].distribute(values))
            else:
                result[name] = list(values)
        return result

    def gather_array(
        self, bank_contents: Mapping[str, Sequence[int]], original: str
    ) -> List[int]:
        """Reconstruct one original array from post-layout contents."""
        if original in self.banked:
            return self.banked[original].gather(bank_contents)
        return list(bank_contents[original])

    def memories_of(self, array: str) -> Tuple[int, ...]:
        """All memories an array can touch (one for plain assignments,
        several for interleaved arrays)."""
        if array in self.interleaved:
            return tuple(sorted(set(self.interleaved[array].memories)))
        return (self.memory_of(array),)

    def describe(self) -> str:
        """Human-readable summary, used by examples."""
        lines = [f"{self.num_memories} physical memories"]
        bank_names = {
            name for banked in self.banked.values() for name in banked.banks.values()
        }
        for original, banked in sorted(self.banked.items()):
            parts = ", ".join(
                f"{name}→mem{','.join(str(m) for m in self.memories_of(name))}"
                for name in banked.banks.values()
            )
            lines.append(
                f"  {original}: cyclic moduli {banked.moduli} -> {parts}"
            )
        for name, spec in sorted(self.interleaved.items()):
            if name not in bank_names:
                lines.append(
                    f"  {name}: interleaved mod {spec.modulus} across "
                    f"memories {sorted(set(spec.memories))}"
                )
        for name, memory in sorted(self.physical.items()):
            if name not in bank_names:
                lines.append(f"  {name}: whole array → mem{memory}")
        return "\n".join(lines)


def _product(dims: Sequence[int]) -> int:
    result = 1
    for extent in dims:
        result *= extent
    return result


def _unflatten(flat: int, dims: Sequence[int]) -> Tuple[int, ...]:
    indices = []
    for extent in reversed(dims):
        indices.append(flat % extent)
        flat //= extent
    return tuple(reversed(indices))


def _flatten(indices: Sequence[int], dims: Sequence[int]) -> int:
    flat = 0
    for index, extent in zip(indices, dims):
        flat = flat * extent + index
    return flat
