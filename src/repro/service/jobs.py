"""Job manifests: what the batch engine runs.

A *job* is one complete exploration — a program (built-in kernel or
C-subset source file) on one board with one set of search and pipeline
options.  A *manifest* is an ordered list of jobs plus shared defaults,
written as JSON::

    {
      "defaults": {"board": "pipelined", "timeout_s": 300},
      "jobs": [
        {"program": "kernel:fir"},
        {"program": "kernel:mm", "board": "nonpipelined",
         "search": {"balance_tolerance": 0.05}},
        {"program": "designs/sobel.c",
         "pipeline": {"narrow_bitwidths": true}}
      ]
    }

A bare JSON list is also accepted as shorthand for ``{"jobs": [...]}``,
and a job may be just the program string.  Everything here is plain
data: a :class:`JobSpec` crosses process boundaries as a primitives-only
payload dict, and the worker re-resolves programs, boards, and options
on its own side of the pipe, so no IR objects are ever pickled.
"""

from __future__ import annotations

import dataclasses
import json
import re
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ServiceError

#: Manifest/job keys accepted by :func:`parse_manifest`.
_JOB_KEYS = {
    "id", "program", "board", "search", "pipeline", "timeout_s",
    "max_attempts", "call_deadline_s", "backend", "fidelity", "tenant",
}
_MANIFEST_KEYS = {"defaults", "jobs"}
_DEFAULT_KEYS = _JOB_KEYS - {"id", "program"}
_SEARCH_KEYS = {
    "balance_tolerance", "max_iterations", "max_point_failures", "strategy",
}
_PIPELINE_KEYS = {
    "exploit_outer_reuse", "register_cap", "apply_data_layout",
    "run_licm", "narrow_bitwidths",
}
_BOARDS = ("pipelined", "nonpipelined")
_FIDELITIES = ("single", "multi")

#: The implicit tenant for submissions that name none.  Jobs under this
#: tenant hash identically to pre-tenant submissions, so existing job
#: ids (and dedup hits against old journals) stay byte-identical.
DEFAULT_TENANT = "default"

_TENANT_OK = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def _check_tenant(context: str, tenant: Any) -> str:
    """Validate a tenant id (it becomes a metrics label and a fair-queue
    key, so the charset is deliberately narrow)."""
    if not isinstance(tenant, str) or not _TENANT_OK.match(tenant):
        raise ServiceError(
            f"{context}: tenant must match {_TENANT_OK.pattern!r}, "
            f"got {tenant!r}"
        )
    return tenant


def _check_backend(context: str, backend: Any) -> str:
    """Validate a backend id against the estimate registry, fail-fast."""
    from repro.estimate import backend_ids
    if not isinstance(backend, str) or backend not in backend_ids():
        raise ServiceError(
            f"{context}: unknown backend {backend!r}; "
            f"expected one of {backend_ids()}"
        )
    return backend


def _check_fidelity(context: str, fidelity: Any) -> str:
    if fidelity not in _FIDELITIES:
        raise ServiceError(
            f"{context}: unknown fidelity {fidelity!r}; "
            f"expected one of {_FIDELITIES}"
        )
    return fidelity


def _check_strategy(context: str, strategy: Any) -> str:
    """Validate a search-strategy id against the DSE registry, fail-fast
    at intake (``auto`` defers to the selector at run time)."""
    from repro.dse.strategy import strategy_ids
    valid = strategy_ids() + ("auto",)
    if not isinstance(strategy, str) or strategy not in valid:
        raise ServiceError(
            f"{context}: unknown search strategy {strategy!r}; "
            f"expected one of {valid}"
        )
    return strategy


def _normalize_search(context: str, overrides: Tuple) -> Tuple:
    """Validate the ``strategy`` override and drop it when it names the
    default, so default-strategy specs hash byte-identically to
    pre-strategy ones (the same conditional-inclusion pattern the
    backend/fidelity/tenant fields use)."""
    from repro.dse.strategy import DEFAULT_STRATEGY
    items = dict(overrides)
    if "strategy" in items:
        strategy = _check_strategy(context, items["strategy"])
        if strategy == DEFAULT_STRATEGY:
            del items["strategy"]
    return tuple(sorted(items.items()))


@dataclass
class JobConfig:
    """The single configuration object :meth:`JobSpec.create` accepts.

    Attributes:
        board: ``pipelined`` or ``nonpipelined``.
        search: a :class:`repro.dse.SearchOptions` instance or a mapping
            of field overrides (the manifest shape).
        pipeline: a :class:`repro.transform.PipelineOptions` instance or
            a mapping of primitive-valued field overrides.
        timeout_s / max_attempts / call_deadline_s: robustness knobs,
            as on :class:`JobSpec`.
        backend: estimation backend id the job navigates on.
        fidelity: ``single`` or ``multi`` (authoritative confirmation).
        tenant: accounting identity for multi-tenant admission (quota,
            fair queueing, per-tenant metrics series).
    """

    board: str = "pipelined"
    search: Optional[Any] = None
    pipeline: Optional[Any] = None
    timeout_s: Optional[float] = None
    max_attempts: int = 2
    call_deadline_s: Optional[float] = None
    backend: str = "analytic"
    fidelity: str = "single"
    tenant: str = DEFAULT_TENANT


def _as_overrides(value: Any, allowed: set, what: str) -> Tuple:
    """Normalize an options dataclass or override mapping to the sorted
    key/value tuple :class:`JobSpec` stores (primitives only)."""
    if value is None:
        return ()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        value = {
            key: val for key, val in dataclasses.asdict(value).items()
            if key in allowed
        }
    if not isinstance(value, Mapping):
        raise ServiceError(
            f"{what} must be an options dataclass or a mapping, "
            f"got {type(value).__name__}"
        )
    unknown = set(value) - allowed
    if unknown:
        raise ServiceError(f"{what}: unknown keys {sorted(unknown)}")
    return tuple(sorted(value.items()))


@dataclass(frozen=True)
class JobSpec:
    """One exploration request, as plain picklable data.

    Attributes:
        id: unique name within the manifest (generated when omitted).
        program: ``kernel:<name>`` or a path to a C-subset source file.
        board: ``pipelined`` or ``nonpipelined`` (WildStar presets).
        search: overrides for :class:`repro.dse.SearchOptions` fields.
        pipeline: overrides for :class:`repro.transform.PipelineOptions`
            fields (primitive-valued ones only).
        timeout_s: per-job wall-clock limit; enforced only when the job
            runs in a worker process (serial execution cannot preempt).
        max_attempts: total tries before the job is reported failed.
        call_deadline_s: wall-clock limit for *one* estimator call inside
            the worker (the guard raises ``DeadlineExceeded`` past it) —
            distinct from ``timeout_s``, which bounds the whole job.
        backend: estimation backend id the exploration navigates on
            (``analytic``/``placeroute``/``interp``).
        fidelity: ``single``, or ``multi`` for navigate-cheap /
            confirm-authoritative exploration.
        tenant: accounting identity for multi-tenant admission; the
            default tenant is excluded from every hash so pre-tenant
            job ids stay byte-identical.
    """

    id: str
    program: str
    board: str = "pipelined"
    search: Tuple[Tuple[str, Any], ...] = ()
    pipeline: Tuple[Tuple[str, Any], ...] = ()
    timeout_s: Optional[float] = None
    max_attempts: int = 2
    call_deadline_s: Optional[float] = None
    backend: str = "analytic"
    fidelity: str = "single"
    tenant: str = DEFAULT_TENANT

    def to_payload(self) -> Dict[str, Any]:
        """The primitives-only dict shipped to worker processes."""
        return {
            "id": self.id,
            "program": self.program,
            "board": self.board,
            "search": dict(self.search),
            "pipeline": dict(self.pipeline),
            "call_deadline_s": self.call_deadline_s,
            "backend": self.backend,
            "fidelity": self.fidelity,
            "tenant": self.tenant,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "JobSpec":
        """Rebuild a spec on the worker side of the pipe."""
        return cls(
            id=payload["id"],
            program=payload["program"],
            board=payload.get("board", "pipelined"),
            search=tuple(sorted(payload.get("search", {}).items())),
            pipeline=tuple(sorted(payload.get("pipeline", {}).items())),
            call_deadline_s=payload.get("call_deadline_s"),
            backend=payload.get("backend", "analytic"),
            fidelity=payload.get("fidelity", "single"),
            tenant=payload.get("tenant", DEFAULT_TENANT),
        )

    @classmethod
    def create(
        cls,
        program: str,
        *,
        id: Optional[str] = None,
        config: Optional[JobConfig] = None,
        **legacy: Any,
    ) -> "JobSpec":
        """Build a validated spec from one :class:`JobConfig`.

        This is the programmatic construction API (manifests go through
        :func:`parse_manifest`): it accepts real option dataclasses —
        ``JobConfig(search=SearchOptions(max_iterations=8))`` — and
        normalizes them to the primitives-only form the spec stores.

        The pre-redesign call shape (``board=``, ``search=``, ... as
        individual keyword arguments) still works but raises
        :class:`DeprecationWarning`.
        """
        if legacy:
            if config is not None:
                raise TypeError(
                    "JobSpec.create() takes either config=JobConfig(...) "
                    "or the deprecated individual options, not both"
                )
            allowed = {f.name for f in dataclasses.fields(JobConfig)}
            unknown = set(legacy) - allowed
            if unknown:
                raise TypeError(
                    f"JobSpec.create() got unexpected keyword arguments "
                    f"{sorted(unknown)}"
                )
            warnings.warn(
                "passing JobSpec.create() options individually "
                f"({sorted(legacy)}) is deprecated; pass "
                "JobSpec.create(program, config=JobConfig(...)) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = JobConfig(**legacy)
        config = config or JobConfig()
        if config.board not in _BOARDS:
            raise ServiceError(
                f"unknown board {config.board!r}; expected one of {_BOARDS}"
            )
        if not isinstance(config.max_attempts, int) or config.max_attempts < 1:
            raise ServiceError("max_attempts must be >= 1")
        stem = (
            program.split(":", 1)[1] if program.startswith("kernel:")
            else Path(program).stem
        )
        return cls(
            id=str(id) if id is not None else f"{stem}-{config.board}",
            program=program,
            board=config.board,
            search=_normalize_search(
                "JobConfig",
                _as_overrides(config.search, _SEARCH_KEYS, "search"),
            ),
            pipeline=_as_overrides(
                config.pipeline, _PIPELINE_KEYS, "pipeline"
            ),
            timeout_s=config.timeout_s,
            max_attempts=config.max_attempts,
            call_deadline_s=config.call_deadline_s,
            backend=_check_backend("JobConfig", config.backend),
            fidelity=_check_fidelity("JobConfig", config.fidelity),
            tenant=_check_tenant("JobConfig", config.tenant),
        )


@dataclass(frozen=True)
class BatchManifest:
    """An ordered, validated collection of jobs."""

    jobs: Tuple[JobSpec, ...]
    source: Optional[str] = None

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs)


def load_manifest(path: Path) -> BatchManifest:
    """Parse and validate a manifest JSON file."""
    path = Path(path)
    if not path.exists():
        raise ServiceError(f"no such manifest: {path}")
    try:
        raw = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ServiceError(f"manifest {path} is not valid JSON: {error}") from None
    return parse_manifest(raw, source=str(path), base_dir=path.parent)


def parse_manifest(
    raw: Any,
    source: Optional[str] = None,
    base_dir: Optional[Path] = None,
) -> BatchManifest:
    """Validate a decoded manifest object into a :class:`BatchManifest`.

    ``base_dir`` anchors relative source-file paths (the manifest's own
    directory when loaded from disk), so a manifest works no matter
    where the engine is launched from.
    """
    if isinstance(raw, list):
        raw = {"jobs": raw}
    if not isinstance(raw, dict):
        raise ServiceError("manifest must be a JSON object or list of jobs")
    unknown = set(raw) - _MANIFEST_KEYS
    if unknown:
        raise ServiceError(f"unknown manifest keys: {sorted(unknown)}")
    defaults = raw.get("defaults", {})
    _check_keys("defaults", defaults, _DEFAULT_KEYS)
    entries = raw.get("jobs")
    if not isinstance(entries, list) or not entries:
        raise ServiceError("manifest needs a non-empty 'jobs' list")

    jobs: List[JobSpec] = []
    seen_ids = set()
    for position, entry in enumerate(entries):
        if isinstance(entry, str):
            entry = {"program": entry}
        if not isinstance(entry, dict):
            raise ServiceError(
                f"job {position} must be an object or a program string"
            )
        _check_keys(f"job {position}", entry, _JOB_KEYS)
        merged = {**defaults, **entry}
        spec = _build_job(position, merged, base_dir)
        if spec.id in seen_ids:
            raise ServiceError(f"duplicate job id {spec.id!r}")
        seen_ids.add(spec.id)
        jobs.append(spec)
    return BatchManifest(jobs=tuple(jobs), source=source)


def _build_job(
    position: int, entry: Mapping[str, Any], base_dir: Optional[Path]
) -> JobSpec:
    program = entry.get("program")
    if not isinstance(program, str) or not program:
        raise ServiceError(f"job {position} needs a 'program' string")
    program = _resolve_program(position, program, base_dir)

    board = entry.get("board", "pipelined")
    if board not in _BOARDS:
        raise ServiceError(
            f"job {position}: unknown board {board!r}; expected one of {_BOARDS}"
        )

    search = entry.get("search", {})
    _check_keys(f"job {position} search", search, _SEARCH_KEYS)
    pipeline = entry.get("pipeline", {})
    _check_keys(f"job {position} pipeline", pipeline, _PIPELINE_KEYS)

    timeout_s = entry.get("timeout_s")
    if timeout_s is not None and (
        not isinstance(timeout_s, (int, float)) or timeout_s <= 0
    ):
        raise ServiceError(f"job {position}: timeout_s must be positive")
    call_deadline_s = entry.get("call_deadline_s")
    if call_deadline_s is not None and (
        not isinstance(call_deadline_s, (int, float)) or call_deadline_s <= 0
    ):
        raise ServiceError(f"job {position}: call_deadline_s must be positive")
    max_attempts = entry.get("max_attempts", 2)
    if not isinstance(max_attempts, int) or max_attempts < 1:
        raise ServiceError(f"job {position}: max_attempts must be >= 1")

    backend = _check_backend(
        f"job {position}", entry.get("backend", "analytic")
    )
    fidelity = _check_fidelity(
        f"job {position}", entry.get("fidelity", "single")
    )
    tenant = _check_tenant(
        f"job {position}", entry.get("tenant", DEFAULT_TENANT)
    )

    job_id = entry.get("id") or _default_id(position, program, board)
    return JobSpec(
        id=str(job_id),
        program=program,
        board=board,
        search=_normalize_search(
            f"job {position}", tuple(sorted(search.items()))
        ),
        pipeline=tuple(sorted(pipeline.items())),
        timeout_s=timeout_s,
        max_attempts=max_attempts,
        call_deadline_s=call_deadline_s,
        backend=backend,
        fidelity=fidelity,
        tenant=tenant,
    )


def _resolve_program(
    position: int, program: str, base_dir: Optional[Path]
) -> str:
    """Fail fast on unknown kernels and missing source files."""
    if program.startswith("kernel:"):
        from repro.kernels import kernel_by_name
        try:
            kernel_by_name(program.split(":", 1)[1])
        except KeyError as error:
            raise ServiceError(f"job {position}: {error.args[0]}") from None
        return program
    path = Path(program)
    if not path.is_absolute() and base_dir is not None:
        path = Path(base_dir) / path
    if not path.exists():
        raise ServiceError(f"job {position}: no such program file: {program}")
    return str(path)


def _default_id(position: int, program: str, board: str) -> str:
    stem = program.split(":", 1)[1] if program.startswith("kernel:") else (
        Path(program).stem
    )
    return f"job{position}-{stem}-{board}"


def _check_keys(context: str, mapping: Any, allowed: set) -> None:
    if not isinstance(mapping, dict):
        raise ServiceError(f"{context} must be an object")
    unknown = set(mapping) - allowed
    if unknown:
        raise ServiceError(f"{context}: unknown keys {sorted(unknown)}")
