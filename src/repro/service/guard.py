"""Deadline and backoff discipline around estimator calls.

The paper's estimation backend stands in for Monet behavioral synthesis
— in a real deployment a slow, flaky external tool.  The worker
therefore never calls ``synthesize`` bare; every call goes through an
:class:`EstimationGuard` that adds three behaviours:

* **Per-call deadline** (``call_deadline_s``): one estimator call that
  hangs must not eat the whole job's ``timeout_s`` budget.  The call
  runs on a reaper thread; past the deadline the guard raises
  :class:`~repro.errors.DeadlineExceeded` (transient) and moves on —
  the abandoned thread is a daemon, and the worker process is recycled
  after the job anyway.
* **Bounded retries with exponential backoff + jitter**: transient
  faults (:class:`~repro.errors.TransientError`, which includes
  deadline overruns) are retried up to ``max_retries`` times, sleeping
  ``base * 2^(attempt-1)`` capped at ``backoff_max_s``, with seeded
  jitter so a fleet of workers retrying the same sick backend does not
  stampede in phase.  Backoff changes wall time only, never results.
* **Validation**: the returned estimate is structurally checked before
  it can reach the search or the cache; garbage (negative cycles, NaN
  balance) raises :class:`~repro.errors.CorruptEstimate` — a permanent,
  typed failure instead of a wrong design selection.

The guard hooks in through :meth:`EstimateCache._synthesize_miss`, so
cache hits pay nothing and both cache classes share one code path.
Fault-injection sites ``estimator`` (before the call, inside the
deadline window) and ``estimate`` (the returned value) live here.
"""

from __future__ import annotations

import math
import os
import random
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Optional

from repro import faults
from repro.errors import CorruptEstimate, DeadlineExceeded, TransientError
from repro.obs import current_registry, current_tracer
from repro.service.shared_cache import SharedEstimateCache
from repro.synthesis.cache import EstimateCache
from repro.synthesis.estimator import Estimate


@dataclass(frozen=True)
class GuardPolicy:
    """How one worker treats its estimation backend."""

    call_deadline_s: Optional[float] = None  # None: no per-call bound
    max_retries: int = 3                     # transient retries per call
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    jitter_frac: float = 0.25                # up to +25% of the backoff


class EstimationGuard:
    """Applies a :class:`GuardPolicy` to estimator calls.

    Counters (``retries``, ``deadline_hits``) are reported in the job
    payload so chaos runs can assert how much grief the backend gave.
    """

    def __init__(
        self,
        policy: Optional[GuardPolicy] = None,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.policy = policy or GuardPolicy()
        self.retries = 0
        self.deadline_hits = 0
        self._rng = random.Random(seed)
        self._sleep = sleep

    def call(self, fn: Callable[..., Estimate], *args: Any,
             key: Optional[str] = None,
             backend: Optional[str] = None) -> Estimate:
        """Run one estimator call under deadline/retry/validation.

        Each call records an ``estimate.call`` span (with the attempt
        count it took and the ``backend`` that answered, when known) and
        a latency observation on the ``estimate.call_seconds``
        histogram; retries and deadline overruns increment the
        ``estimator.retries`` / ``estimator.deadline_hits`` counters as
        they happen.
        """
        registry = current_registry()
        started = time.monotonic()
        with current_tracer().span(
            "estimate.call", key=key, backend=backend
        ) as span:
            attempt = 0
            try:
                while True:
                    try:
                        estimate = self._bounded(fn, args, key)
                        estimate = faults.mangle("estimate", estimate, key=key)
                        validate_estimate(estimate)
                        span.set_attribute("attempts", attempt + 1)
                        return estimate
                    except TransientError:
                        attempt += 1
                        self.retries += 1
                        registry.counter("estimator.retries").inc()
                        if attempt > self.policy.max_retries:
                            span.set_attribute("attempts", attempt)
                            raise
                        self._sleep(self._backoff_s(attempt))
            finally:
                registry.histogram("estimate.call_seconds").observe(
                    time.monotonic() - started
                )

    def _bounded(self, fn, args, key):
        """The call itself, under the per-call deadline when one is set."""
        def body():
            faults.check("estimator", key=key)
            return fn(*args)

        if self.policy.call_deadline_s is None:
            return body()
        box = []

        def run():
            try:
                box.append((True, body()))
            except BaseException as error:  # noqa: BLE001 - re-raised below
                box.append((False, error))

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        thread.join(self.policy.call_deadline_s)
        if thread.is_alive():
            self.deadline_hits += 1
            current_registry().counter("estimator.deadline_hits").inc()
            raise DeadlineExceeded(
                f"estimator call exceeded its "
                f"{self.policy.call_deadline_s:.1f}s deadline"
            )
        ok, value = box[0]
        if not ok:
            raise value
        return value

    def _backoff_s(self, attempt: int) -> float:
        base = min(
            self.policy.backoff_max_s,
            self.policy.backoff_base_s * (2 ** (attempt - 1)),
        )
        return base * (1.0 + self.policy.jitter_frac * self._rng.random())


def validate_estimate(estimate: Any) -> Estimate:
    """Reject structurally invalid estimator output with a typed error."""
    if not isinstance(estimate, Estimate):
        raise CorruptEstimate(
            f"estimator returned {type(estimate).__name__}, not an Estimate"
        )
    if not isinstance(estimate.cycles, int) or estimate.cycles <= 0:
        raise CorruptEstimate(f"estimate has invalid cycles {estimate.cycles!r}")
    if not isinstance(estimate.space, int) or estimate.space < 0:
        raise CorruptEstimate(f"estimate has invalid space {estimate.space!r}")
    for name in ("fetch_rate", "consumption_rate", "balance"):
        value = getattr(estimate, name)
        if not isinstance(value, (int, float)) or math.isnan(value):
            raise CorruptEstimate(f"estimate has invalid {name} {value!r}")
    return estimate


class GuardedSharedEstimateCache(SharedEstimateCache):
    """The worker's cache view: shared persistence + guarded misses."""

    def __init__(
        self,
        path: Path,
        guard: EstimationGuard,
        job_id: Optional[str] = None,
        max_entries: Optional[int] = None,
        lock_timeout_s: float = 30.0,
    ):
        super().__init__(
            path, lock_timeout_s=lock_timeout_s, max_entries=max_entries,
        )
        self._guard = guard
        self._job_id = job_id

    def _synthesize_miss(self, program, board, plan, library, backend):
        return self._guard.call(
            backend.estimate, program, board, plan, library,
            key=self._job_id, backend=backend.id,
        )


class GuardedEstimateCache(EstimateCache):
    """Guarded but memory-only — for jobs run without a cache file.

    Gives cache-less jobs the same deadline/retry/validation semantics;
    nothing is ever persisted.
    """

    def __init__(self, guard: EstimationGuard, job_id: Optional[str] = None):
        super().__init__(Path(os.devnull))
        self._guard = guard
        self._job_id = job_id

    def _synthesize_miss(self, program, board, plan, library, backend):
        return self._guard.call(
            backend.estimate, program, board, plan, library,
            key=self._job_id, backend=backend.id,
        )

    def save(self) -> None:
        """Deliberately persist nothing.

        Contract: this class backs jobs that ran *without* a cache file
        (``cache_path is None``); there is no durable location, so
        ``save()`` is a no-op **by design**, not a lost write.  Entries
        accumulated during the job simply die with the process.  Because
        a silent no-op is indistinguishable from a dropped save in a
        trace, every call records a ``cache.save.skipped`` metric so an
        operator wondering why a cache file never appeared can see the
        skips in the run's metrics instead of guessing.
        """
        current_registry().counter("cache.save.skipped").inc()
        return None
