"""A process-shared estimate cache.

Synthesis estimates are the expensive resource (the paper's premise), so
parallel workers must pool what they learn.  Plain
:class:`~repro.synthesis.cache.EstimateCache` instances pointed at one
file would clobber each other: last writer wins and every other worker's
estimates are lost.  :class:`SharedEstimateCache` fixes the write side —
``save()`` takes an exclusive file lock, re-reads what other workers
persisted meanwhile, merges, and atomically replaces the file — so the
cache only ever grows.

Merging is safe because entries are value-transparent: the fingerprint
key covers everything an estimate depends on, so two processes can only
ever write identical payloads under the same key.  That is also why the
engine's determinism guarantee holds — sharing the cache changes hit/miss
counters and wall time, never results.

Locking uses ``fcntl.flock`` on a sibling ``<cache>.lock`` file where
available, falling back to an atomic mkdir spin-lock elsewhere.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Dict, Optional

from repro.synthesis.cache import EstimateCache, load_entries

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback exercised via flag
    fcntl = None


class FileLock:
    """An exclusive inter-process lock tied to a filesystem path.

    Reentrant within one instance is *not* supported — use one lock per
    critical section.  With ``fcntl`` the lock dies with the process, so
    a killed worker cannot leave the cache wedged; the mkdir fallback
    additionally honors ``stale_s`` to break locks left by crashes.
    """

    def __init__(self, path: Path, timeout_s: float = 30.0, stale_s: float = 60.0):
        self.path = Path(path)
        self.timeout_s = timeout_s
        self.stale_s = stale_s
        self._handle = None
        self._use_fcntl = fcntl is not None

    def acquire(self) -> None:
        """Block until the lock is held (or raise ``TimeoutError``)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self._use_fcntl:
            handle = open(self.path, "a+")
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            self._handle = handle
            return
        deadline = time.monotonic() + self.timeout_s
        lock_dir = self.path.with_suffix(self.path.suffix + ".d")
        while True:
            try:
                os.mkdir(lock_dir)
                self._handle = lock_dir
                return
            except FileExistsError:
                try:
                    age = time.time() - lock_dir.stat().st_mtime
                    if age > self.stale_s:
                        os.rmdir(lock_dir)
                        continue
                except OSError:
                    pass
                if time.monotonic() > deadline:
                    raise TimeoutError(f"could not lock {self.path}") from None
                time.sleep(0.01)

    def release(self) -> None:
        """Release the lock if held; never raises."""
        if self._handle is None:
            return
        try:
            if self._use_fcntl:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
                self._handle.close()
            else:
                os.rmdir(self._handle)
        except OSError:
            pass
        self._handle = None

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class SharedEstimateCache(EstimateCache):
    """An :class:`EstimateCache` safe for many concurrent processes.

    Reads stay lock-free (a snapshot is loaded at construction and on
    :meth:`refresh`); only persistence takes the lock.  ``save()`` is
    merge-on-write: lock, re-read the file, adopt entries other workers
    added, write the union atomically, unlock.
    """

    def __init__(self, path: Path, lock_timeout_s: float = 30.0):
        super().__init__(path)
        self._lock_path = self.path.with_suffix(self.path.suffix + ".lock")
        self._lock_timeout_s = lock_timeout_s

    def _make_lock(self) -> FileLock:
        return FileLock(self._lock_path, timeout_s=self._lock_timeout_s)

    def refresh(self) -> int:
        """Adopt entries other workers have persisted since our last
        look.  Returns how many new entries arrived."""
        before = len(self._entries)
        with self._make_lock():
            self.merge(load_entries(self.path))
        return len(self._entries) - before

    def save(self) -> None:
        """Merge-on-write persistence: the file ends up holding the
        union of every saver's entries, whatever the interleaving."""
        with self._make_lock():
            self.merge(load_entries(self.path))
            super().save()
