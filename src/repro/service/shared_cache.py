"""A process-shared estimate cache.

Synthesis estimates are the expensive resource (the paper's premise), so
parallel workers must pool what they learn.  Plain
:class:`~repro.synthesis.cache.EstimateCache` instances pointed at one
file would clobber each other: last writer wins and every other worker's
estimates are lost.  :class:`SharedEstimateCache` fixes the write side —
``save()`` takes an exclusive file lock, re-reads what other workers
persisted meanwhile, merges, and atomically replaces the file — so the
cache only ever grows.

Merging is safe because entries are value-transparent: the fingerprint
key covers everything an estimate depends on, so two processes can only
ever write identical payloads under the same key.  That is also why the
engine's determinism guarantee holds — sharing the cache changes hit/miss
counters and wall time, never results.

Locking uses ``fcntl.flock`` on a sibling ``<cache>.lock`` file where
available, falling back to an atomic mkdir spin-lock elsewhere.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Dict, Optional

from repro.errors import CacheLockTimeout
from repro.synthesis.cache import EstimateCache, load_entries

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback exercised via flag
    fcntl = None

#: How often acquisition re-polls a contended lock (seconds).
_SPIN_S = 0.01


class FileLock:
    """An exclusive inter-process lock tied to a filesystem path.

    Reentrant within one instance is *not* supported — use one lock per
    critical section.  With ``fcntl`` the lock dies with the process, so
    a killed worker cannot leave the cache wedged; the mkdir fallback
    additionally honors ``stale_s`` to break locks left by crashes.

    Acquisition is bounded: a *live but hung* peer (which ``fcntl``
    cannot distinguish from a slow one) would otherwise block every
    other worker forever.  Past ``timeout_s`` the attempt raises the
    typed :class:`~repro.errors.CacheLockTimeout` (a ``TimeoutError``
    subclass, and transient — the caller may retry or degrade).  Pass
    ``timeout_s=None`` to block indefinitely.
    """

    def __init__(
        self,
        path: Path,
        timeout_s: Optional[float] = 30.0,
        stale_s: float = 60.0,
    ):
        self.path = Path(path)
        self.timeout_s = timeout_s
        self.stale_s = stale_s
        self._handle = None
        self._use_fcntl = fcntl is not None

    def _deadline(self) -> Optional[float]:
        if self.timeout_s is None:
            return None
        return time.monotonic() + self.timeout_s

    def _expired(self, deadline: Optional[float]) -> bool:
        return deadline is not None and time.monotonic() > deadline

    def acquire(self) -> None:
        """Take the lock, or raise :class:`CacheLockTimeout`."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        deadline = self._deadline()
        if self._use_fcntl:
            handle = open(self.path, "a+")
            while True:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                    self._handle = handle
                    return
                except OSError:
                    if self._expired(deadline):
                        handle.close()
                        raise CacheLockTimeout(
                            f"could not lock {self.path} within "
                            f"{self.timeout_s:.1f}s (peer holding the lock?)"
                        ) from None
                    time.sleep(_SPIN_S)
        lock_dir = self.path.with_suffix(self.path.suffix + ".d")
        while True:
            try:
                os.mkdir(lock_dir)
                self._handle = lock_dir
                return
            except FileExistsError:
                try:
                    age = time.time() - lock_dir.stat().st_mtime
                    if age > self.stale_s:
                        os.rmdir(lock_dir)
                        continue
                except OSError:
                    pass
                if self._expired(deadline):
                    raise CacheLockTimeout(
                        f"could not lock {self.path} within "
                        f"{self.timeout_s:.1f}s (stale peer?)"
                    ) from None
                time.sleep(_SPIN_S)

    def release(self) -> None:
        """Release the lock if held; never raises."""
        if self._handle is None:
            return
        try:
            if self._use_fcntl:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
                self._handle.close()
            else:
                os.rmdir(self._handle)
        except OSError:
            pass
        self._handle = None

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class SharedEstimateCache(EstimateCache):
    """An :class:`EstimateCache` safe for many concurrent processes.

    Reads stay lock-free (a snapshot is loaded at construction and on
    :meth:`refresh`); only persistence takes the lock.  ``save()`` is
    merge-on-write: lock, re-read the file, adopt entries other workers
    added, write the union atomically, unlock.
    """

    def __init__(
        self,
        path: Path,
        lock_timeout_s: Optional[float] = 30.0,
        max_entries: Optional[int] = None,
    ):
        super().__init__(path, max_entries=max_entries)
        self._lock_path = self.path.with_suffix(self.path.suffix + ".lock")
        self._lock_timeout_s = lock_timeout_s

    def _make_lock(self) -> FileLock:
        return FileLock(self._lock_path, timeout_s=self._lock_timeout_s)

    def refresh(self) -> int:
        """Adopt entries other workers have persisted since our last
        look.  Returns how many new entries arrived."""
        before = len(self._entries)
        with self._make_lock():
            self.merge(load_entries(self.path))
        return len(self._entries) - before

    def save(self) -> None:
        """Merge-on-write persistence: the file ends up holding the
        union of every saver's entries, whatever the interleaving."""
        with self._make_lock():
            self.merge(load_entries(self.path))
            super().save()
