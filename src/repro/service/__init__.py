"""Batch exploration service: many explorations, one managed run.

The paper's insight is that synthesis estimation is the scarce resource;
this subsystem treats design space exploration as a service over many
concurrent evaluations.  A JSON *manifest* of jobs (program x board x
options) fans out across a ``concurrent.futures`` process pool, workers
pool their synthesis estimates through one crash-safe shared cache, and
every scheduling decision lands in a structured JSONL trace:

    manifest -> queue -> workers -> shared estimate cache
                   \\-> telemetry (JSONL + summary table)

Entry points: the :class:`BatchRunner` engine (or :func:`run_batch`
convenience wrapper) from Python, and ``python -m repro batch
manifest.json --jobs N --cache estimates.json --trace trace.jsonl`` from
the shell.  The engine guarantees determinism — parallelism changes wall
time and cache counters, never which designs are selected.
"""

from repro.service.jobs import BatchManifest, JobSpec, load_manifest, parse_manifest
from repro.service.runner import BatchResult, BatchRunner, JobResult, run_batch
from repro.service.shared_cache import FileLock, SharedEstimateCache
from repro.service.telemetry import (
    Telemetry, TelemetryEvent, read_trace, summarize_events,
)
from repro.service.worker import execute_job

__all__ = [
    "BatchManifest", "BatchResult", "BatchRunner", "FileLock", "JobResult",
    "JobSpec", "SharedEstimateCache", "Telemetry", "TelemetryEvent",
    "execute_job", "load_manifest", "parse_manifest", "read_trace",
    "run_batch", "summarize_events",
]
