"""Batch exploration service: many explorations, one managed run.

The paper's insight is that synthesis estimation is the scarce resource;
this subsystem treats design space exploration as a service over many
concurrent evaluations.  A JSON *manifest* of jobs (program x board x
options) fans out across a ``concurrent.futures`` process pool, workers
pool their synthesis estimates through one crash-safe shared cache, and
every scheduling decision lands in a structured JSONL trace:

    manifest -> queue -> workers -> shared estimate cache
                   \\-> telemetry (JSONL + summary table)
                   \\-> run ledger (journal; --resume replays it)

Entry points: the :class:`BatchRunner` engine (or :func:`run_batch`
convenience wrapper) from Python, and ``python -m repro batch
manifest.json --jobs N --run-dir runs/exp1`` from the shell (then
``repro batch --resume runs/exp1`` after any crash).  The engine
guarantees determinism — parallelism, cache sharing, and kill/resume
change wall time and cache counters, never which designs are selected.

Robustness stack (each layer independent, all typed through
:mod:`repro.errors`):

* :mod:`~repro.service.ledger` — fsync'd JSONL journal; resume adopts
  completed jobs and re-runs only what was in flight.
* :mod:`~repro.service.guard` — per-call estimator deadline, bounded
  backoff on transient faults, corrupt-estimate validation.
* :mod:`~repro.service.shared_cache` — bounded lock acquisition
  (:class:`~repro.errors.CacheLockTimeout`) and LRU-bounded growth.
* :mod:`~repro.service.telemetry` — write failures degrade to counted
  drops, never abort the batch.
"""

from repro.service.jobs import (
    BatchManifest, JobConfig, JobSpec, load_manifest, parse_manifest,
)
from repro.service.guard import (
    EstimationGuard, GuardedEstimateCache, GuardedSharedEstimateCache,
    GuardPolicy, validate_estimate,
)
from repro.service.ledger import (
    LedgerState, RunLedger, manifest_document, manifest_fingerprint, replay,
    spec_hash,
)
from repro.service.runner import (
    BatchResult, BatchRunner, JobFailure, JobResult, run_batch,
)
from repro.service.shared_cache import FileLock, SharedEstimateCache
from repro.service.telemetry import (
    Telemetry, TelemetryEvent, read_trace, summarize_events,
)
from repro.service.worker import execute_job

__all__ = [
    "BatchManifest", "BatchResult", "BatchRunner", "EstimationGuard",
    "FileLock", "GuardPolicy", "GuardedEstimateCache",
    "GuardedSharedEstimateCache", "JobConfig", "JobFailure", "JobResult",
    "JobSpec",
    "LedgerState", "RunLedger", "SharedEstimateCache", "Telemetry",
    "TelemetryEvent", "execute_job", "load_manifest", "manifest_document",
    "manifest_fingerprint", "parse_manifest", "read_trace", "replay",
    "run_batch", "spec_hash", "summarize_events", "validate_estimate",
]
