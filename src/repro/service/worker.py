"""The per-job execution function that runs inside worker processes.

:func:`execute_job` is the unit of work the batch engine distributes: it
rebuilds the program, board, and options from a primitives-only payload
(nothing rich crosses the pipe inbound), runs the full exploration, and
returns a primitives-only result dict (nothing rich crosses back out
either — ``CompiledDesign`` IR stays in the worker).  The same function
runs unchanged in-process when the engine degrades to serial execution,
so both paths share one code path and one telemetry shape.

Robustness discipline inside the worker:

* every estimator call goes through an
  :class:`~repro.service.guard.EstimationGuard` (per-call deadline,
  backoff on transient faults, corrupt-output validation) — configured
  from the job's ``call_deadline_s`` and the payload's ``runtime`` map;
* a failed cache *save* degrades, it does not fail the job: the
  selections are already computed, so the error is reported in the
  payload (``cache_save_error``) and the estimates are simply re-learned
  next time;
* fault-injection sites ``worker`` (entry) and the guard's sites are
  active whenever a fault spec is (env or runtime), which is how the
  chaos suite drives this exact code path.

Each invocation opens its own :class:`SharedEstimateCache` view of the
shared cache file and saves (merge-on-write) before returning, so
estimates learned by one job are visible to jobs scheduled later.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

from repro import faults
from repro.errors import CacheLockTimeout, failure_kind
from repro.obs import MetricsRegistry, Tracer, use_registry, use_tracer
from repro.service.guard import (
    EstimationGuard, GuardPolicy, GuardedEstimateCache,
    GuardedSharedEstimateCache,
)
from repro.service.jobs import JobSpec


def resolve_board(name: str):
    """A board preset from its manifest name."""
    from repro.target import wildstar_nonpipelined, wildstar_pipelined
    if name == "pipelined":
        return wildstar_pipelined()
    if name == "nonpipelined":
        return wildstar_nonpipelined()
    from repro.errors import ServiceError
    raise ServiceError(f"unknown board {name!r}")


def load_program(spec: str) -> Tuple[Any, Optional[Any]]:
    """``(program, kernel-or-None)`` from ``kernel:<name>`` or a path."""
    from repro.errors import ServiceError
    from repro.frontend import compile_source
    from repro.kernels import kernel_by_name
    if spec.startswith("kernel:"):
        try:
            kernel = kernel_by_name(spec.split(":", 1)[1])
        except KeyError as error:
            raise ServiceError(error.args[0]) from None
        return kernel.program(), kernel
    path = Path(spec)
    if not path.exists():
        raise ServiceError(f"no such program file: {spec}")
    return compile_source(path.read_text(), name=path.stem), None


def build_options(spec: JobSpec, kernel) -> Tuple[Any, Any]:
    """(SearchOptions, PipelineOptions) from a spec's override maps."""
    from repro.dse import SearchOptions
    from repro.transform import PipelineOptions
    search = SearchOptions(**dict(spec.search))
    pipeline_overrides = dict(spec.pipeline)
    options = PipelineOptions(**pipeline_overrides)
    if options.narrow_bitwidths and kernel is not None:
        options.input_value_ranges = kernel.value_ranges()
    return search, options


def _guard_seed(spec: JobSpec) -> int:
    """A stable per-job seed for backoff jitter (reproducible runs)."""
    from repro.service.ledger import spec_hash
    return int(spec_hash(spec)[:8], 16)


def _make_guard(spec: JobSpec, runtime: Mapping[str, Any]) -> EstimationGuard:
    deadline = spec.call_deadline_s
    if deadline is None:
        deadline = runtime.get("call_deadline_s")
    return EstimationGuard(
        GuardPolicy(call_deadline_s=deadline), seed=_guard_seed(spec),
    )


def execute_job(
    payload: Mapping[str, Any], cache_path: Optional[str] = None
) -> Dict[str, Any]:
    """Run one exploration job; returns the primitives-only result dict.

    The dict carries everything the coordinator reports: the selection
    (unroll/cycles/space/balance), baseline and speedup, search effort
    (points vs design-space size), the narrative trace, this job's cache
    hit/miss/eviction counters, guard counters (estimator retries and
    deadline hits), and wall seconds split by phase.

    Observability: unless the payload's runtime map sets
    ``trace: false``, the whole job runs under a fresh per-job
    :class:`~repro.obs.Tracer` (every span stamped with this job's id)
    and :class:`~repro.obs.MetricsRegistry`; both are serialized into
    the result under ``"obs"`` (``{"spans": [...], "metrics": {...}}``)
    for the coordinator to fold into the run's span file and registry —
    workers share no memory with the parent, so observations ride the
    same pipe as results.
    """
    spec = JobSpec.from_payload(payload)
    runtime = payload.get("runtime") or {}
    faults.activate(runtime.get("fault_spec"))
    faults.check("worker", key=spec.id)

    traced = runtime.get("trace", True)
    tracer = Tracer(base_attributes={"job": spec.id}) if traced else None
    registry = MetricsRegistry()
    with use_tracer(tracer) if traced else _noop(), use_registry(registry):
        result_dict = _execute(spec, runtime, cache_path)
    if traced:
        result_dict["obs"] = {
            "spans": tracer.to_dicts(),
            "metrics": registry.snapshot(),
        }
    else:
        result_dict["obs"] = {"spans": [], "metrics": registry.snapshot()}
    return result_dict


def _noop():
    from contextlib import nullcontext
    return nullcontext()


def _execute(
    spec: JobSpec, runtime: Mapping[str, Any], cache_path: Optional[str]
) -> Dict[str, Any]:
    t_start = time.perf_counter()
    program, kernel = load_program(spec.program)
    board = resolve_board(spec.board)
    search_options, pipeline_options = build_options(spec, kernel)
    t_loaded = time.perf_counter()

    guard = _make_guard(spec, runtime)
    max_entries = runtime.get("cache_max_entries")
    if cache_path:
        cache = GuardedSharedEstimateCache(
            Path(cache_path), guard, job_id=spec.id, max_entries=max_entries,
        )
    else:
        cache = GuardedEstimateCache(guard, job_id=spec.id)
    from repro.dse import ExploreConfig, explore
    # Incremental evaluation is an engine knob, not part of job identity:
    # memo hits are bit-identical to recomputation, so the flag rides the
    # runtime map (like fault_spec) and never perturbs job hashes.  A
    # shared memo_dir makes entries learned by one job visible to jobs
    # scheduled later — the journal is flock-guarded, so concurrent
    # workers flush safely.
    incremental = runtime.get("incremental", True)
    memo_dir = runtime.get("memo_dir")
    # An auto-strategy job consults the coordinator's persisted win
    # rates (the server journals strategy_outcome events durably), so
    # selection keeps learning across server restarts.
    scoreboard = None
    tallies = runtime.get("scoreboard")
    if isinstance(tallies, Mapping) and tallies:
        from repro.dse.selector import StrategyScoreboard
        scoreboard = StrategyScoreboard.from_dict(tallies)
    result = explore(program, board, config=ExploreConfig(
        search=search_options,
        pipeline=pipeline_options,
        estimate_cache=cache,
        backend=spec.backend,
        fidelity=spec.fidelity,
        incremental=bool(incremental),
        memo_dir=Path(memo_dir) if memo_dir else None,
        scoreboard=scoreboard,
    ))
    t_explored = time.perf_counter()
    cache_save_error = None
    try:
        cache.save()
    except (CacheLockTimeout, OSError) as error:
        # The exploration is done and correct; losing the cache write
        # only costs re-synthesis later.  Degrade and report.
        cache_save_error = f"{failure_kind(error)}: {error}"
    t_saved = time.perf_counter()

    out = {
        "job_id": spec.id,
        "program": result.program_name,
        "board": result.board_name,
        "selected_unroll": list(result.selected.unroll),
        "cycles": result.selected.cycles,
        "space": result.selected.space,
        "balance": result.selected.balance,
        "baseline_cycles": result.baseline.cycles,
        "baseline_space": result.baseline.space,
        "speedup": result.speedup,
        "points_searched": result.points_searched,
        "design_space_size": result.design_space_size,
        "trace": [str(step) for step in result.search.trace],
        "infeasible_count": len(result.infeasible),
        "infeasible_points": [
            diagnostic.as_dict() for diagnostic in result.infeasible
        ],
        "baseline_degraded": result.baseline_degraded,
        "backend": result.backend,
        "fidelity": spec.fidelity,
        "confirmation": _confirmation_dict(result.confirmation),
        "rank_agreement": _differential_dict(result.differential),
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
        "cache_evictions": cache.evictions,
        "cache_save_error": cache_save_error,
        "estimator_retries": guard.retries,
        "deadline_hits": guard.deadline_hits,
        "wall_seconds": t_saved - t_start,
        "phase_seconds": {
            "load": t_loaded - t_start,
            "explore": t_explored - t_loaded,
            "cache_save": t_saved - t_explored,
        },
        "report": result.report(),
    }
    # Strategy details ride the payload only when they carry signal —
    # default-strategy runs keep the exact PR-8 payload shape.
    from repro.dse import DEFAULT_STRATEGY
    if result.strategy != DEFAULT_STRATEGY:
        out["strategy"] = result.strategy
    if result.strategy_selection is not None:
        out["strategy_selection"] = result.strategy_selection.as_dict()
    if result.memo_stats is not None:
        out["memo"] = result.memo_stats
    switches = result.search.fidelity_switches
    if switches:
        out["fidelity_switches"] = [switch.as_dict() for switch in switches]
    return out


def _confirmation_dict(confirmation) -> Optional[Dict[str, Any]]:
    """Primitives-only view of a multi-fidelity confirmation."""
    return confirmation.as_dict() if confirmation is not None else None


def _differential_dict(differential) -> Optional[Dict[str, Any]]:
    """Primitives-only view of a differential validation report."""
    return differential.as_dict() if differential is not None else None
