"""The batch exploration engine: queue -> workers -> results.

:class:`BatchRunner` takes a validated manifest and drives every job to
a terminal state.  Scheduling is wave-based: each wave submits all
runnable jobs to a fresh ``concurrent.futures`` process pool, collects
completions, and carries failures (worker exceptions, crashed worker
processes, per-job timeouts) into the next wave until each job either
succeeds or exhausts its ``max_attempts``.  A fresh pool per wave keeps
the failure semantics simple and honest: a hung or crashed worker can
poison a pool, and recycling the pool is the only reliable reclaim.

Failures are *typed*, not stringly: every terminal failure is a
:class:`JobFailure` carrying the stable ``kind`` and ``transient``
classification from :mod:`repro.errors`.  Classification drives the
retry policy — transient failures (crashes, timeouts, deadline
overruns, foreign exceptions) retry up to ``max_attempts``; permanent
ones (parse errors, corrupt estimates, bad manifests) fail fast, since
re-running a deterministic function on the same input cannot help.

Crash safety: give the runner a :class:`~repro.service.ledger.RunLedger`
and every attempt start and terminal result is journaled (fsync'd)
before the engine moves on; give it a replayed
:class:`~repro.service.ledger.LedgerState` and it adopts completed jobs
verbatim (emitting ``job_resumed``) and re-enqueues in-flight attempts
— the mechanics behind ``repro batch --resume``.

Degradation is graceful and explicit: with ``workers <= 1``, or when a
process pool cannot be created at all (restricted environments), jobs
run serially in-process through the *same* worker function, a
``pool_unavailable`` event is emitted, and only timeout preemption is
lost.

Determinism guarantee: jobs are independent and each exploration is a
deterministic function of its job spec, and the shared cache is
value-transparent (fingerprint keys cover every input to an estimate).
Parallel execution therefore changes wall time and cache hit/miss
counters, never selections — ``--jobs 8`` picks bit-identical designs
to ``--jobs 1``, and a killed-and-resumed run picks bit-identical
designs to an uninterrupted one.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.obs import MetricsRegistry, use_registry
from repro.service.jobs import BatchManifest, JobSpec
from repro.service.ledger import LedgerState, RunLedger
from repro.service.telemetry import Telemetry
from repro.service.worker import execute_job
from repro.errors import failure_kind, is_transient

#: How often the coordinator wakes to check deadlines (seconds).
_POLL_S = 0.05


@dataclass(frozen=True)
class JobFailure:
    """One terminal (or retried) failure, typed.

    ``kind`` is the stable taxonomy string from :mod:`repro.errors`
    (``"timeout"``, ``"worker_crash"``, ``"corrupt_estimate"``, ...);
    ``transient`` records whether retrying could have helped — which is
    exactly what the engine's retry policy keyed on.
    """

    kind: str
    message: str
    transient: bool
    exception: Optional[str] = None   # original exception class, if any

    def __str__(self) -> str:
        return self.message

    @classmethod
    def from_exception(cls, error: BaseException) -> "JobFailure":
        return cls(
            kind=failure_kind(error),
            message=f"{type(error).__name__}: {error}",
            transient=is_transient(error),
            exception=type(error).__name__,
        )

    @classmethod
    def crash(cls) -> "JobFailure":
        return cls(
            kind="worker_crash", message="worker process crashed",
            transient=True,
        )

    @classmethod
    def timeout(cls, timeout_s: float) -> "JobFailure":
        return cls(
            kind="timeout", message=f"timed out after {timeout_s:.1f}s",
            transient=True,
        )

    def as_dict(self) -> Dict[str, Any]:
        record = {
            "kind": self.kind, "message": self.message,
            "transient": self.transient,
        }
        if self.exception is not None:
            record["exception"] = self.exception
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "JobFailure":
        return cls(
            kind=str(record.get("kind", "exception")),
            message=str(record.get("message", "unknown failure")),
            transient=bool(record.get("transient", False)),
            exception=record.get("exception"),
        )


@dataclass
class JobResult:
    """Terminal state of one job after the engine is done with it."""

    spec: JobSpec
    status: str                       # "ok" | "failed"
    attempts: int
    payload: Optional[Dict[str, Any]] = None
    failure: Optional[JobFailure] = None
    resumed: bool = False             # adopted from a ledger, not re-run

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def error(self) -> Optional[str]:
        """The failure message (compatibility accessor; the typed record
        is :attr:`failure`)."""
        return self.failure.message if self.failure is not None else None


@dataclass
class BatchResult:
    """Everything a batch run produced, jobs in manifest order."""

    results: List[JobResult]
    summary: Dict[str, Any] = field(default_factory=dict)

    @property
    def succeeded(self) -> List[JobResult]:
        return [r for r in self.results if r.ok]

    @property
    def failed(self) -> List[JobResult]:
        return [r for r in self.results if not r.ok]

    @property
    def all_ok(self) -> bool:
        return not self.failed

    def report(self) -> str:
        """One line per job plus failure details — the CLI's output."""
        lines = []
        for result in self.results:
            mark = " [resumed]" if result.resumed else ""
            if result.ok:
                payload = result.payload
                unroll = ",".join(str(f) for f in payload["selected_unroll"])
                lines.append(
                    f"{result.spec.id}: U={unroll} {payload['cycles']} cycles "
                    f"{payload['space']} slices speedup {payload['speedup']:.2f}x "
                    f"({payload['points_searched']} of "
                    f"{payload['design_space_size']} points){mark}"
                )
            else:
                lines.append(
                    f"{result.spec.id}: FAILED after {result.attempts} "
                    f"attempt(s): {result.error}{mark}"
                )
        return "\n".join(lines)


class BatchRunner:
    """Fans a manifest's jobs out over a process pool.

    Args:
        manifest: the validated jobs to run.
        workers: process-pool size; ``<= 1`` means serial in-process.
        cache_path: shared estimate cache file (optional but what makes
            the engine pay off across jobs and runs).
        telemetry: event sink; a silent in-memory one is created when
            omitted.
        worker: the job-execution callable — injectable for tests; must
            be picklable (module-level) when ``workers > 1``.
        default_timeout_s: per-job timeout for jobs that do not set
            their own; only enforceable in pool mode.
        ledger: journal attempts and terminal results here (optional).
        resume_state: a replayed ledger's end state; completed jobs are
            adopted without re-execution, in-flight attempts re-enqueued.
        call_deadline_s: default per-estimator-call deadline for jobs
            that do not set their own.
        cache_max_entries: LRU bound handed to each worker's cache view.
        fault_spec: fault-injection spec path handed to workers (chaos
            testing; see :mod:`repro.faults`).
        incremental: hand workers the incremental-evaluation switch
            (memoized cross-point reuse; see :mod:`repro.incremental`).
            Defaults on; hits are bit-identical to recomputation, so
            the knob never changes selections — only wall time.
        memo_dir: shared memo-journal directory for the run; entries
            learned by one job are replayed into jobs scheduled later
            (and into future runs pointed at the same directory).
        spans_path: append every span the workers ship back to this
            JSONL file (``repro trace`` renders it); ``None`` keeps
            spans in worker payloads only until they are discarded.
        metrics: the run's :class:`~repro.obs.MetricsRegistry`; worker
            snapshots are merged into it and it is installed ambiently
            for the coordinator's own instrumented code (telemetry and
            ledger drop counters).  A fresh registry is created when
            omitted; either way the final snapshot lands in
            ``summary["metrics"]``.
    """

    def __init__(
        self,
        manifest: BatchManifest,
        workers: int = 1,
        cache_path: Optional[Path] = None,
        telemetry: Optional[Telemetry] = None,
        worker: Callable[..., Dict[str, Any]] = execute_job,
        default_timeout_s: Optional[float] = None,
        ledger: Optional[RunLedger] = None,
        resume_state: Optional[LedgerState] = None,
        call_deadline_s: Optional[float] = None,
        cache_max_entries: Optional[int] = None,
        fault_spec: Optional[str] = None,
        spans_path: Optional[Path] = None,
        metrics: Optional[MetricsRegistry] = None,
        incremental: bool = True,
        memo_dir: Optional[Path] = None,
    ):
        self.manifest = manifest
        self.workers = max(1, int(workers))
        self.cache_path = str(cache_path) if cache_path else None
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.worker = worker
        self.default_timeout_s = default_timeout_s
        self.ledger = ledger
        self.resume_state = resume_state
        self.call_deadline_s = call_deadline_s
        self.cache_max_entries = cache_max_entries
        self.fault_spec = fault_spec
        self.incremental = bool(incremental)
        self.memo_dir = str(memo_dir) if memo_dir else None
        self.spans_path = Path(spans_path) if spans_path else None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        from repro.dse.selector import StrategyScoreboard
        #: the run's per-strategy win-rate ledger; every successful job
        #: folds in, and each fold is journaled as a typed
        #: ``strategy_outcome`` event.
        self.scoreboard = StrategyScoreboard()

    # -- public entry ---------------------------------------------------------

    def run(self) -> BatchResult:
        """Drive every job to success or exhaustion; never raises for
        job-level failures (they are reported in the result)."""
        with use_registry(self.metrics):
            return self._run()

    def _run(self) -> BatchResult:
        results: Dict[str, JobResult] = {}
        if self.spans_path is not None and self.resume_state is None:
            # Fresh run: truncate; resumed runs append to the old spans.
            self.spans_path.parent.mkdir(parents=True, exist_ok=True)
            self.spans_path.write_text("")
        queue = self._build_queue(results)
        self.telemetry.emit(
            "batch_start",
            jobs=len(self.manifest),
            workers=self.workers,
            cache=self.cache_path,
            manifest=self.manifest.source,
            resumed_jobs=len(results),
        )
        if self.workers <= 1:
            self._run_serial(queue, results)
        else:
            self._run_pool(queue, results)
        ordered = [results[spec.id] for spec in self.manifest.jobs]
        batch = BatchResult(results=ordered, summary=self.telemetry.summary())
        if self.ledger is not None:
            self.ledger.record_finish(
                succeeded=len(batch.succeeded), failed=len(batch.failed),
            )
        self.telemetry.emit(
            "batch_finish",
            succeeded=len(batch.succeeded),
            failed=len(batch.failed),
            resumed=sum(1 for r in ordered if r.resumed),
            cache_hits=batch.summary.get("cache_hits", 0),
            cache_misses=batch.summary.get("cache_misses", 0),
            points_synthesized=batch.summary.get("points_synthesized", 0),
            telemetry_dropped=self.telemetry.dropped,
            ledger_dropped=(
                self.ledger.dropped_writes if self.ledger is not None else 0
            ),
        )
        batch.summary["telemetry_dropped"] = self.telemetry.dropped
        batch.summary["ledger_dropped"] = (
            self.ledger.dropped_writes if self.ledger is not None else 0
        )
        batch.summary["metrics"] = self.metrics.snapshot()
        return batch

    # -- resume adoption ------------------------------------------------------

    def _build_queue(
        self, results: Dict[str, JobResult]
    ) -> List[Tuple[JobSpec, int]]:
        """The work list, minus jobs a resumed ledger already finished.

        Adopted results are verbatim (payload bytes from the journal);
        in-flight jobs re-enter at their recorded attempt number — the
        attempt whose terminal record the crash swallowed simply runs
        again, recomputing the identical payload.
        """
        queue: List[Tuple[JobSpec, int]] = []
        state = self.resume_state
        for spec in self.manifest.jobs:
            record = state.completed.get(spec.id) if state else None
            if record is None:
                attempt = state.in_flight.get(spec.id, 1) if state else 1
                queue.append((spec, max(1, attempt)))
                continue
            status = record.get("status", "failed")
            attempts = record.get("attempts", 1)
            if status == "ok":
                results[spec.id] = JobResult(
                    spec=spec, status="ok", attempts=attempts,
                    payload=record.get("payload"), resumed=True,
                )
            else:
                results[spec.id] = JobResult(
                    spec=spec, status="failed", attempts=attempts,
                    failure=JobFailure.from_dict(record.get("failure") or {}),
                    resumed=True,
                )
            self.telemetry.emit(
                "job_resumed", job_id=spec.id, status=status,
                attempts=attempts,
            )
        return queue

    # -- payloads -------------------------------------------------------------

    def _payload(self, spec: JobSpec) -> Dict[str, Any]:
        """The spec payload plus the engine's runtime knobs.

        The ``runtime`` key is only added when a knob is set, so
        injected test workers see exactly the spec payload otherwise.
        """
        payload = spec.to_payload()
        runtime: Dict[str, Any] = {}
        if self.call_deadline_s is not None:
            runtime["call_deadline_s"] = self.call_deadline_s
        if self.cache_max_entries is not None:
            runtime["cache_max_entries"] = self.cache_max_entries
        if self.fault_spec is not None:
            runtime["fault_spec"] = self.fault_spec
        if not self.incremental:
            runtime["incremental"] = False
        if self.memo_dir is not None:
            runtime["memo_dir"] = self.memo_dir
        if runtime:
            payload["runtime"] = runtime
        return payload

    # -- serial path ----------------------------------------------------------

    def _run_serial(
        self, queue: List[Tuple[JobSpec, int]], results: Dict[str, JobResult]
    ) -> None:
        """In-process execution: same worker function, no preemption."""
        pending = list(queue)
        while pending:
            spec, attempt = pending.pop(0)
            self._note_attempt(spec, attempt)
            try:
                payload = self.worker(self._payload(spec), self.cache_path)
            except Exception as error:  # noqa: BLE001 - isolate job failures
                self._note_failure(
                    spec, attempt, JobFailure.from_exception(error),
                    pending, results,
                )
                continue
            self._note_success(spec, attempt, payload, results)

    # -- pool path ------------------------------------------------------------

    def _make_executor(self) -> ProcessPoolExecutor:
        """Build the wave's pool; overridable/injectable for tests."""
        return ProcessPoolExecutor(max_workers=self.workers)

    def _run_pool(
        self, queue: List[Tuple[JobSpec, int]], results: Dict[str, JobResult]
    ) -> None:
        pending = list(queue)
        while pending:
            try:
                executor = self._make_executor()
            except Exception as error:  # noqa: BLE001 - degrade, don't die
                self.telemetry.emit(
                    "pool_unavailable", error=f"{type(error).__name__}: {error}"
                )
                self._run_serial(pending, results)
                return
            pending = self._run_wave(executor, pending, results)

    def _run_wave(
        self,
        executor: ProcessPoolExecutor,
        wave: List[Tuple[JobSpec, int]],
        results: Dict[str, JobResult],
    ) -> List[Tuple[JobSpec, int]]:
        """Submit one wave; returns the retry list for the next wave.

        Any timeout or worker crash marks the pool dirty: it is shut
        down without waiting (the stuck process cannot be reclaimed
        through the executor API) and the next wave gets a fresh one.
        """
        retry: List[Tuple[JobSpec, int]] = []
        info: Dict[Any, Tuple[JobSpec, int, float]] = {}
        for spec, attempt in wave:
            self._note_attempt(spec, attempt)
            future = executor.submit(
                self.worker, self._payload(spec), self.cache_path
            )
            info[future] = (spec, attempt, time.monotonic())

        dirty = False
        outstanding = set(info)
        while outstanding:
            done, outstanding = wait(
                outstanding, timeout=_POLL_S, return_when=FIRST_COMPLETED
            )
            for future in done:
                spec, attempt, _t0 = info.pop(future)
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    # The culprit cannot be identified from outside, so
                    # every job caught in the broken pool retries.
                    dirty = True
                    self._note_failure(
                        spec, attempt, JobFailure.crash(), retry, results,
                    )
                except Exception as error:  # noqa: BLE001 - per-job isolation
                    self._note_failure(
                        spec, attempt, JobFailure.from_exception(error),
                        retry, results,
                    )
                else:
                    self._note_success(spec, attempt, payload, results)
            # deadline sweep over the still-running futures
            now = time.monotonic()
            for future in list(outstanding):
                spec, attempt, t0 = info[future]
                timeout_s = (
                    spec.timeout_s
                    if spec.timeout_s is not None else self.default_timeout_s
                )
                if timeout_s is None or now - t0 <= timeout_s:
                    continue
                info.pop(future)
                outstanding.discard(future)
                if not future.cancel():
                    dirty = True  # already running: pool must be recycled
                self._note_failure(
                    spec, attempt, JobFailure.timeout(timeout_s),
                    retry, results,
                )
        if dirty:
            executor.shutdown(wait=False, cancel_futures=True)
        else:
            executor.shutdown(wait=True)
        return retry

    # -- shared bookkeeping ----------------------------------------------------

    def _note_attempt(self, spec: JobSpec, attempt: int) -> None:
        """Journal first, then announce: the ledger line must hit disk
        before the attempt exists anywhere else, so a crash can never
        leave an attempt the journal knows nothing about."""
        if self.ledger is not None:
            self.ledger.record_attempt(spec, attempt)
        self.telemetry.emit("job_start", job_id=spec.id, attempt=attempt)

    def _absorb_obs(self, obs: Mapping[str, Any]) -> None:
        """Fold one worker's shipped observations into the run's:
        metrics snapshots merge into the coordinator registry, spans
        append to the run's span file.  Never a point of failure — a
        bad spans disk degrades to a counted drop."""
        metrics = obs.get("metrics")
        if isinstance(metrics, Mapping):
            self.metrics.merge(metrics)
        spans = obs.get("spans")
        if spans and self.spans_path is not None:
            try:
                self.spans_path.parent.mkdir(parents=True, exist_ok=True)
                with open(self.spans_path, "a") as stream:
                    for span in spans:
                        stream.write(json.dumps(span) + "\n")
            except (OSError, TypeError, ValueError):
                self.metrics.counter("obs.spans.dropped").inc(len(spans))

    def _note_success(
        self,
        spec: JobSpec,
        attempt: int,
        payload: Dict[str, Any],
        results: Dict[str, JobResult],
    ) -> None:
        # Observations leave the payload before it reaches the ledger or
        # telemetry: spans/metrics are run-level artifacts with their own
        # files, and journaling them per job would bloat every record.
        if isinstance(payload, dict):
            obs = payload.pop("obs", None)
            if isinstance(obs, Mapping):
                self._absorb_obs(obs)
        if self.ledger is not None:
            self.ledger.record_success(spec, attempt, payload)
        finish_fields = {
            key: payload.get(key)
            for key in (
                "program", "board", "cycles", "space", "speedup",
                "points_searched", "design_space_size",
                "cache_hits", "cache_misses", "cache_evictions",
                "cache_save_error", "estimator_retries", "deadline_hits",
                "wall_seconds", "phase_seconds",
            )
            if payload.get(key) is not None
        }
        # fail-soft and strategy fields ride along only when they carry
        # signal, so a clean default-strategy run's trace stays
        # identical to earlier releases
        for key in ("infeasible_count", "baseline_degraded", "strategy"):
            if payload.get(key):
                finish_fields[key] = payload[key]
        self.telemetry.emit(
            "job_finish", job_id=spec.id, attempt=attempt,
            selected_unroll=payload.get("selected_unroll"), **finish_fields,
        )
        self._note_strategy(spec, payload)
        results[spec.id] = JobResult(
            spec=spec, status="ok", attempts=attempt, payload=payload,
        )

    def _note_strategy(
        self, spec: JobSpec, payload: Mapping[str, Any]
    ) -> None:
        """Fold one finished job into the strategy win-rate ledger.

        An auto-selection decision (if the worker made one) and the
        scored outcome are journaled as typed v1 events; the outcome's
        ``trials``/``win_rate`` snapshot the scoreboard after the fold.
        A win means the walk found a real speedup without degrading the
        baseline.
        """
        from repro.dse import DEFAULT_STRATEGY
        selection = payload.get("strategy_selection")
        if isinstance(selection, Mapping):
            self.telemetry.emit(
                "strategy_selected", job_id=spec.id,
                strategy=selection.get("strategy"),
                reason=selection.get("reason", ""),
                features=selection.get("features"),
            )
            if self.ledger is not None:
                self.ledger.record_strategy_selected(
                    spec.id, selection.get("strategy"),
                    reason=selection.get("reason", ""),
                    features=selection.get("features"),
                )
        strategy = payload.get("strategy") or DEFAULT_STRATEGY
        speedup = payload.get("speedup")
        won = (
            speedup is not None and speedup >= 1.0
            and not payload.get("baseline_degraded")
        )
        self.scoreboard.record(strategy, won)
        trials = self.scoreboard.trials(strategy)
        win_rate = self.scoreboard.win_rate(strategy)
        self.telemetry.emit(
            "strategy_outcome", job_id=spec.id, strategy=strategy,
            won=won, speedup=speedup,
            points_searched=payload.get("points_searched"),
            trials=trials, win_rate=win_rate,
        )
        if self.ledger is not None:
            self.ledger.record_strategy_outcome(
                spec.id, strategy, won, speedup=speedup,
                points_searched=payload.get("points_searched"),
                trials=trials, win_rate=win_rate,
            )

    def _note_failure(
        self,
        spec: JobSpec,
        attempt: int,
        failure: JobFailure,
        retry: List[Tuple[JobSpec, int]],
        results: Dict[str, JobResult],
    ) -> None:
        """Retry transient failures while attempts remain; permanent
        failures fail fast — the job is a deterministic function of its
        spec, so re-running a parse error or corrupt estimate can only
        waste the batch's time."""
        if failure.transient and attempt < spec.max_attempts:
            self.telemetry.emit(
                "job_retry", job_id=spec.id, attempt=attempt,
                reason=failure.message, kind=failure.kind,
                transient=failure.transient,
            )
            retry.append((spec, attempt + 1))
            return
        if self.ledger is not None:
            self.ledger.record_failure(spec, attempt, failure.as_dict())
        self.telemetry.emit(
            "job_failed", job_id=spec.id, attempt=attempt,
            reason=failure.message, kind=failure.kind,
            transient=failure.transient,
        )
        results[spec.id] = JobResult(
            spec=spec, status="failed", attempts=attempt, failure=failure,
        )


def run_batch(
    manifest: Optional[BatchManifest] = None,
    workers: int = 1,
    cache_path: Optional[Path] = None,
    trace_path: Optional[Path] = None,
    default_timeout_s: Optional[float] = None,
    run_dir: Optional[Path] = None,
    resume: bool = False,
    call_deadline_s: Optional[float] = None,
    cache_max_entries: Optional[int] = None,
    fault_spec: Optional[str] = None,
    spans_path: Optional[Path] = None,
    incremental: bool = True,
    memo_dir: Optional[Path] = None,
) -> BatchResult:
    """One-call convenience wrapper around the full crash-safe stack.

    Without ``run_dir`` this is the classic ephemeral batch: telemetry
    to ``trace_path`` (optional), no journal.  With ``run_dir`` the run
    is *journaled*: a :class:`RunLedger` is created there, and cache,
    trace, and spans default to files inside it, and the coordinator's
    merged metrics registry is persisted as ``<run-dir>/metrics.json``
    when the batch finishes — the artifacts ``repro trace`` renders.
    With ``resume=True`` the run directory is replayed instead —
    ``manifest`` must be ``None`` (the snapshot inside the run directory
    is the manifest; passing another one would invite mixing batches) —
    completed jobs are adopted, and telemetry appends to the existing
    trace.
    """
    ledger: Optional[RunLedger] = None
    resume_state: Optional[LedgerState] = None
    trace_mode = "w"
    if resume:
        if run_dir is None:
            raise ValueError("resume=True requires run_dir")
        if manifest is not None:
            raise ValueError(
                "resume=True loads the manifest snapshot from the run "
                "directory; do not pass one"
            )
        ledger, manifest, resume_state = RunLedger.resume(run_dir)
        trace_mode = "a"
    elif run_dir is not None:
        if manifest is None:
            raise ValueError("a fresh run needs a manifest")
        ledger = RunLedger.create(run_dir, manifest)
    if run_dir is not None:
        run_dir = Path(run_dir)
        if cache_path is None:
            cache_path = run_dir / "estimates.json"
        if trace_path is None:
            trace_path = run_dir / "trace.jsonl"
        if spans_path is None:
            spans_path = run_dir / "spans.jsonl"
        if memo_dir is None and incremental:
            # Journaled runs get a durable memo by default: a resumed or
            # repeated run replays the journal and starts warm.
            memo_dir = run_dir / "memo"
    try:
        with Telemetry(trace_path, mode=trace_mode) as telemetry:
            runner = BatchRunner(
                manifest,
                workers=workers,
                cache_path=cache_path,
                telemetry=telemetry,
                default_timeout_s=default_timeout_s,
                ledger=ledger,
                resume_state=resume_state,
                call_deadline_s=call_deadline_s,
                cache_max_entries=cache_max_entries,
                fault_spec=fault_spec,
                spans_path=spans_path,
                incremental=incremental,
                memo_dir=memo_dir,
            )
            batch = runner.run()
            if run_dir is not None:
                try:
                    (run_dir / "metrics.json").write_text(
                        json.dumps(batch.summary.get("metrics", {}), indent=1)
                        + "\n"
                    )
                except (OSError, TypeError, ValueError):
                    pass  # observability must never fail the batch
            return batch
    finally:
        if ledger is not None:
            ledger.close()
