"""The batch exploration engine: queue -> workers -> results.

:class:`BatchRunner` takes a validated manifest and drives every job to
a terminal state.  Scheduling is wave-based: each wave submits all
runnable jobs to a fresh ``concurrent.futures`` process pool, collects
completions, and carries failures (worker exceptions, crashed worker
processes, per-job timeouts) into the next wave until each job either
succeeds or exhausts its ``max_attempts``.  A fresh pool per wave keeps
the failure semantics simple and honest: a hung or crashed worker can
poison a pool, and recycling the pool is the only reliable reclaim.

Degradation is graceful and explicit: with ``workers <= 1``, or when a
process pool cannot be created at all (restricted environments), jobs
run serially in-process through the *same* worker function, a
``pool_unavailable`` event is emitted, and only timeout preemption is
lost.

Determinism guarantee: jobs are independent and each exploration is a
deterministic function of its job spec, and the shared cache is
value-transparent (fingerprint keys cover every input to an estimate).
Parallel execution therefore changes wall time and cache hit/miss
counters, never selections — ``--jobs 8`` picks bit-identical designs
to ``--jobs 1``.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.service.jobs import BatchManifest, JobSpec
from repro.service.telemetry import Telemetry
from repro.service.worker import execute_job

#: How often the coordinator wakes to check deadlines (seconds).
_POLL_S = 0.05


@dataclass
class JobResult:
    """Terminal state of one job after the engine is done with it."""

    spec: JobSpec
    status: str                       # "ok" | "failed"
    attempts: int
    payload: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class BatchResult:
    """Everything a batch run produced, jobs in manifest order."""

    results: List[JobResult]
    summary: Dict[str, Any] = field(default_factory=dict)

    @property
    def succeeded(self) -> List[JobResult]:
        return [r for r in self.results if r.ok]

    @property
    def failed(self) -> List[JobResult]:
        return [r for r in self.results if not r.ok]

    @property
    def all_ok(self) -> bool:
        return not self.failed

    def report(self) -> str:
        """One line per job plus failure details — the CLI's output."""
        lines = []
        for result in self.results:
            if result.ok:
                payload = result.payload
                unroll = ",".join(str(f) for f in payload["selected_unroll"])
                lines.append(
                    f"{result.spec.id}: U={unroll} {payload['cycles']} cycles "
                    f"{payload['space']} slices speedup {payload['speedup']:.2f}x "
                    f"({payload['points_searched']} of "
                    f"{payload['design_space_size']} points)"
                )
            else:
                lines.append(
                    f"{result.spec.id}: FAILED after {result.attempts} "
                    f"attempt(s): {result.error}"
                )
        return "\n".join(lines)


class BatchRunner:
    """Fans a manifest's jobs out over a process pool.

    Args:
        manifest: the validated jobs to run.
        workers: process-pool size; ``<= 1`` means serial in-process.
        cache_path: shared estimate cache file (optional but what makes
            the engine pay off across jobs and runs).
        telemetry: event sink; a silent in-memory one is created when
            omitted.
        worker: the job-execution callable — injectable for tests; must
            be picklable (module-level) when ``workers > 1``.
        default_timeout_s: per-job timeout for jobs that do not set
            their own; only enforceable in pool mode.
    """

    def __init__(
        self,
        manifest: BatchManifest,
        workers: int = 1,
        cache_path: Optional[Path] = None,
        telemetry: Optional[Telemetry] = None,
        worker: Callable[..., Dict[str, Any]] = execute_job,
        default_timeout_s: Optional[float] = None,
    ):
        self.manifest = manifest
        self.workers = max(1, int(workers))
        self.cache_path = str(cache_path) if cache_path else None
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.worker = worker
        self.default_timeout_s = default_timeout_s

    # -- public entry ---------------------------------------------------------

    def run(self) -> BatchResult:
        """Drive every job to success or exhaustion; never raises for
        job-level failures (they are reported in the result)."""
        self.telemetry.emit(
            "batch_start",
            jobs=len(self.manifest),
            workers=self.workers,
            cache=self.cache_path,
            manifest=self.manifest.source,
        )
        results: Dict[str, JobResult] = {}
        queue: List[Tuple[JobSpec, int]] = [
            (spec, 1) for spec in self.manifest.jobs
        ]
        if self.workers <= 1:
            self._run_serial(queue, results)
        else:
            self._run_pool(queue, results)
        ordered = [results[spec.id] for spec in self.manifest.jobs]
        batch = BatchResult(results=ordered, summary=self.telemetry.summary())
        self.telemetry.emit(
            "batch_finish",
            succeeded=len(batch.succeeded),
            failed=len(batch.failed),
            cache_hits=batch.summary.get("cache_hits", 0),
            cache_misses=batch.summary.get("cache_misses", 0),
            points_synthesized=batch.summary.get("points_synthesized", 0),
        )
        return batch

    # -- serial path ----------------------------------------------------------

    def _run_serial(
        self, queue: List[Tuple[JobSpec, int]], results: Dict[str, JobResult]
    ) -> None:
        """In-process execution: same worker function, no preemption."""
        pending = list(queue)
        while pending:
            spec, attempt = pending.pop(0)
            self.telemetry.emit("job_start", job_id=spec.id, attempt=attempt)
            try:
                payload = self.worker(spec.to_payload(), self.cache_path)
            except Exception as error:  # noqa: BLE001 - isolate job failures
                self._note_failure(
                    spec, attempt, f"{type(error).__name__}: {error}",
                    pending, results,
                )
                continue
            self._note_success(spec, attempt, payload, results)

    # -- pool path ------------------------------------------------------------

    def _make_executor(self) -> ProcessPoolExecutor:
        """Build the wave's pool; overridable/injectable for tests."""
        return ProcessPoolExecutor(max_workers=self.workers)

    def _run_pool(
        self, queue: List[Tuple[JobSpec, int]], results: Dict[str, JobResult]
    ) -> None:
        pending = list(queue)
        while pending:
            try:
                executor = self._make_executor()
            except Exception as error:  # noqa: BLE001 - degrade, don't die
                self.telemetry.emit(
                    "pool_unavailable", error=f"{type(error).__name__}: {error}"
                )
                self._run_serial(pending, results)
                return
            pending = self._run_wave(executor, pending, results)

    def _run_wave(
        self,
        executor: ProcessPoolExecutor,
        wave: List[Tuple[JobSpec, int]],
        results: Dict[str, JobResult],
    ) -> List[Tuple[JobSpec, int]]:
        """Submit one wave; returns the retry list for the next wave.

        Any timeout or worker crash marks the pool dirty: it is shut
        down without waiting (the stuck process cannot be reclaimed
        through the executor API) and the next wave gets a fresh one.
        """
        retry: List[Tuple[JobSpec, int]] = []
        info: Dict[Any, Tuple[JobSpec, int, float]] = {}
        for spec, attempt in wave:
            self.telemetry.emit("job_start", job_id=spec.id, attempt=attempt)
            future = executor.submit(
                self.worker, spec.to_payload(), self.cache_path
            )
            info[future] = (spec, attempt, time.monotonic())

        dirty = False
        outstanding = set(info)
        while outstanding:
            done, outstanding = wait(
                outstanding, timeout=_POLL_S, return_when=FIRST_COMPLETED
            )
            for future in done:
                spec, attempt, _t0 = info.pop(future)
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    # The culprit cannot be identified from outside, so
                    # every job caught in the broken pool retries.
                    dirty = True
                    self._note_failure(
                        spec, attempt, "worker process crashed",
                        retry, results,
                    )
                except Exception as error:  # noqa: BLE001 - per-job isolation
                    self._note_failure(
                        spec, attempt, f"{type(error).__name__}: {error}",
                        retry, results,
                    )
                else:
                    self._note_success(spec, attempt, payload, results)
            # deadline sweep over the still-running futures
            now = time.monotonic()
            for future in list(outstanding):
                spec, attempt, t0 = info[future]
                timeout_s = (
                    spec.timeout_s
                    if spec.timeout_s is not None else self.default_timeout_s
                )
                if timeout_s is None or now - t0 <= timeout_s:
                    continue
                info.pop(future)
                outstanding.discard(future)
                if not future.cancel():
                    dirty = True  # already running: pool must be recycled
                self._note_failure(
                    spec, attempt, f"timed out after {timeout_s:.1f}s",
                    retry, results,
                )
        if dirty:
            executor.shutdown(wait=False, cancel_futures=True)
        else:
            executor.shutdown(wait=True)
        return retry

    # -- shared bookkeeping ----------------------------------------------------

    def _note_success(
        self,
        spec: JobSpec,
        attempt: int,
        payload: Dict[str, Any],
        results: Dict[str, JobResult],
    ) -> None:
        finish_fields = {
            key: payload.get(key)
            for key in (
                "program", "board", "cycles", "space", "speedup",
                "points_searched", "design_space_size",
                "cache_hits", "cache_misses", "wall_seconds", "phase_seconds",
            )
        }
        self.telemetry.emit(
            "job_finish", job_id=spec.id, attempt=attempt,
            selected_unroll=payload.get("selected_unroll"), **finish_fields,
        )
        results[spec.id] = JobResult(
            spec=spec, status="ok", attempts=attempt, payload=payload,
        )

    def _note_failure(
        self,
        spec: JobSpec,
        attempt: int,
        reason: str,
        retry: List[Tuple[JobSpec, int]],
        results: Dict[str, JobResult],
    ) -> None:
        if attempt < spec.max_attempts:
            self.telemetry.emit(
                "job_retry", job_id=spec.id, attempt=attempt, reason=reason,
            )
            retry.append((spec, attempt + 1))
            return
        self.telemetry.emit(
            "job_failed", job_id=spec.id, attempt=attempt, reason=reason,
        )
        results[spec.id] = JobResult(
            spec=spec, status="failed", attempts=attempt, error=reason,
        )


def run_batch(
    manifest: BatchManifest,
    workers: int = 1,
    cache_path: Optional[Path] = None,
    trace_path: Optional[Path] = None,
    default_timeout_s: Optional[float] = None,
) -> BatchResult:
    """One-call convenience wrapper: build telemetry, run, close."""
    with Telemetry(trace_path) as telemetry:
        runner = BatchRunner(
            manifest,
            workers=workers,
            cache_path=cache_path,
            telemetry=telemetry,
            default_timeout_s=default_timeout_s,
        )
        return runner.run()
