"""The journaled run ledger: what makes a batch killable.

A batch that dies — OOM kill, SIGKILL, power loss — must not forfeit
the explorations it already finished.  The ledger is an append-only
JSONL journal inside a *run directory*, fsync'd per event, recording
every job's attempts and terminal result.  ``--resume <run-dir>``
replays it, adopts every terminal result verbatim, re-enqueues attempts
that were in flight when the run died, and runs only what is missing —
so a resumed batch produces selections bit-identical to an
uninterrupted one (each job is a deterministic function of its spec,
and terminal payloads are adopted bytes-for-bytes).

Run directory layout::

    <run-dir>/
      manifest.json    normalized manifest snapshot (paths resolved)
      ledger.jsonl     the journal: run_start, job_attempt, job_done, ...
      trace.jsonl      telemetry (default location; append on resume)
      estimates.json   shared estimate cache (default location)

Consistency: ``run_start`` records a fingerprint over every job's
*spec hash* (the result-determining fields: program, board, search and
pipeline options).  Resume recomputes it from the manifest snapshot and
refuses a mismatch with :class:`~repro.errors.LedgerError` — resuming a
ledger against a different manifest would silently mix two batches.
Robustness knobs (``timeout_s``, ``max_attempts``, ``call_deadline_s``)
are deliberately outside the hash: tightening them between resumes does
not change results.

Crash-window analysis, event by event: a torn or missing ``job_attempt``
only loses an attempt count; a torn ``job_done`` means the job re-runs
on resume — wasteful, never wrong, because the re-run recomputes the
identical payload.  Replay therefore skips a torn final line.  A
*failed* append (ENOSPC, injected fault) degrades the same way: it is
counted on :attr:`RunLedger.dropped_writes`, surfaced in the batch
summary, and the batch keeps running on its in-memory state.

Since PR 8 the ledger sits on :mod:`repro.durable.journal`: records are
CRC32-framed (the checksum rides as a ``crc32`` field, so every line is
still plain JSON and pre-checksum ledgers replay unchanged), the file
rotates into ``ledger.0001.jsonl``… segments past a size threshold, and
compaction can fold history into a ``journal_snapshot`` checkpoint.
Replay now tells a torn tail (only ever the final line of the final
segment) apart from mid-file corruption: damaged records elsewhere are
counted on :attr:`LedgerState.corrupt_records` — and quarantined to the
``ledger.quarantine`` sidecar by :meth:`RunLedger.resume` — instead of
being silently conflated with crash debris.  ``repro fsck <run-dir>``
inspects and repairs the same format offline.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro import faults
from repro.durable.journal import (
    DEFAULT_SEGMENT_BYTES,
    SNAPSHOT_EVENT,
    DurableJournal,
    quarantine_records,
    scan_journal,
    segment_paths,
)
from repro.errors import LedgerError
from repro.obs import current_registry
from repro.obs.events import SCHEMA_VERSION
from repro.service.jobs import BatchManifest, JobSpec, parse_manifest

LEDGER_NAME = "ledger.jsonl"
MANIFEST_NAME = "manifest.json"

#: Segment-file prefix (``ledger.jsonl`` is segment zero).
LEDGER_PREFIX = "ledger"

#: Rotations auto-compact once this many closed segments accumulate.
DEFAULT_COMPACT_SEGMENTS = 4


# -- identity -----------------------------------------------------------------

def spec_hash(spec: JobSpec) -> str:
    """Hash of a job's result-determining fields.

    Covers exactly what :func:`repro.service.worker.execute_job` feeds
    the exploration; retry/timeout knobs are excluded on purpose.
    """
    doc = {
        "id": spec.id,
        "program": spec.program,
        "board": spec.board,
        "search": dict(spec.search),
        "pipeline": dict(spec.pipeline),
    }
    # Only non-default estimation settings enter the hash, so ledgers
    # written before backends existed still resume cleanly.
    if spec.backend != "analytic":
        doc["backend"] = spec.backend
    if spec.fidelity != "single":
        doc["fidelity"] = spec.fidelity
    # Same conditional-inclusion discipline for the tenant: pre-tenant
    # ledgers (and every default-tenant manifest) hash unchanged.
    if spec.tenant != "default":
        doc["tenant"] = spec.tenant
    encoded = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode()).hexdigest()


def manifest_fingerprint(manifest: BatchManifest) -> str:
    """Order-sensitive fingerprint over every job's spec hash."""
    joined = "\n".join(spec_hash(spec) for spec in manifest.jobs)
    return hashlib.sha256(joined.encode()).hexdigest()


def manifest_document(manifest: BatchManifest) -> Dict[str, Any]:
    """A normalized manifest snapshot that re-parses to the same jobs.

    Source-file paths were resolved to absolute paths at load time, so
    the snapshot is location-independent.
    """
    jobs: List[Dict[str, Any]] = []
    for spec in manifest.jobs:
        job: Dict[str, Any] = {
            "id": spec.id, "program": spec.program, "board": spec.board,
            "max_attempts": spec.max_attempts,
        }
        if spec.search:
            job["search"] = dict(spec.search)
        if spec.pipeline:
            job["pipeline"] = dict(spec.pipeline)
        if spec.timeout_s is not None:
            job["timeout_s"] = spec.timeout_s
        if spec.call_deadline_s is not None:
            job["call_deadline_s"] = spec.call_deadline_s
        if spec.backend != "analytic":
            job["backend"] = spec.backend
        if spec.fidelity != "single":
            job["fidelity"] = spec.fidelity
        if spec.tenant != "default":
            job["tenant"] = spec.tenant
        jobs.append(job)
    return {"jobs": jobs}


# -- replay state -------------------------------------------------------------

@dataclass
class LedgerState:
    """What a replayed ledger says about a run.

    Attributes:
        completed: job id -> its terminal ``job_done`` record (the
            payload/failure inside is adopted verbatim on resume).
        in_flight: job id -> the highest attempt number that started
            without reaching a terminal record (re-enqueued on resume).
        fingerprint: the manifest fingerprint ``run_start`` recorded.
        resumes: how many times this run has been resumed before.
        corrupt_records: mid-file damage found by replay (checksum
            failures, unparseable lines that are *not* the torn tail).
        torn_tail: the final line of the final segment was a torn write.
    """

    completed: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    in_flight: Dict[str, int] = field(default_factory=dict)
    fingerprint: Optional[str] = None
    resumes: int = 0
    corrupt_records: int = 0
    torn_tail: bool = False

    def snapshot_state(self) -> Dict[str, Any]:
        """The compaction checkpoint :func:`replay` folds back."""
        return {
            "fingerprint": self.fingerprint,
            "resumes": self.resumes,
            "completed": dict(self.completed),
            "in_flight": dict(self.in_flight),
        }


def replay(path: Path) -> LedgerState:
    """Fold a ledger (all segments) into its end state.

    ``path`` is the ledger's base file (``<run-dir>/ledger.jsonl``);
    rotated segments next to it are replayed in order.  A torn final
    line is skipped as the crash-window analysis always allowed;
    mid-file damage is *counted*, never silently conflated with crash
    debris (quarantining is :meth:`RunLedger.resume`'s job — this
    function stays read-only).  A ``journal_snapshot`` record resets
    state to its checkpoint.
    """
    path = Path(path)
    scan = scan_journal(path.parent, _prefix_of(path))
    state = LedgerState(
        corrupt_records=len(scan.corrupt),
        torn_tail=scan.torn_tail is not None,
    )
    for record in scan.records:
        event = record.get("event")
        if event == SNAPSHOT_EVENT:
            _fold_snapshot(state, record)
        elif event == "run_start":
            state.fingerprint = record.get("fingerprint")
        elif event == "run_resume":
            state.resumes += 1
        elif event == "job_attempt":
            job_id = record.get("job_id")
            if isinstance(job_id, str) and job_id not in state.completed:
                attempt = record.get("attempt", 1)
                state.in_flight[job_id] = max(
                    state.in_flight.get(job_id, 1),
                    attempt if isinstance(attempt, int) else 1,
                )
        elif event == "job_done":
            job_id = record.get("job_id")
            if isinstance(job_id, str):
                state.completed[job_id] = record
                state.in_flight.pop(job_id, None)
    return state


def _prefix_of(path: Path) -> str:
    name = Path(path).name
    return name[:-len(".jsonl")] if name.endswith(".jsonl") else name


def _fold_snapshot(state: LedgerState, record: Mapping[str, Any]) -> None:
    doc = record.get("state")
    if not isinstance(doc, Mapping):
        return
    fingerprint = doc.get("fingerprint")
    if isinstance(fingerprint, str):
        state.fingerprint = fingerprint
    resumes = doc.get("resumes")
    if isinstance(resumes, int):
        state.resumes = resumes
    state.completed = {
        job_id: dict(done) for job_id, done in doc.get("completed", {}).items()
        if isinstance(job_id, str) and isinstance(done, Mapping)
    }
    state.in_flight = {
        job_id: attempt for job_id, attempt in doc.get("in_flight", {}).items()
        if isinstance(job_id, str) and isinstance(attempt, int)
    }


def compact_ledger_dir(run_dir: Path, clock=time.time) -> bool:
    """Fold a run directory's ledger into one snapshot checkpoint.

    The offline entry point ``repro fsck --repair --compact`` uses; a
    live batch compacts through its own :class:`RunLedger` instead.
    Returns ``False`` when there is no ledger to compact.
    """
    run_dir = Path(run_dir)
    if not segment_paths(run_dir, LEDGER_PREFIX):
        return False
    state = replay(run_dir / LEDGER_NAME)
    journal = DurableJournal(run_dir, LEDGER_PREFIX, clock=clock)
    try:
        journal.compact(state.snapshot_state(), schema_version=SCHEMA_VERSION)
    finally:
        journal.close()
    return True


# -- the ledger ---------------------------------------------------------------

class RunLedger:
    """Append-only journal of one batch run, fsync'd per event.

    Construct through :meth:`create` (fresh run directory) or
    :meth:`resume` (existing one); both leave the ledger open for
    appending.  Append failures never raise — they are counted on
    :attr:`dropped_writes` (losing a journal entry only costs re-work on
    the *next* resume, while raising would fail the job that just
    finished).
    """

    def __init__(self, run_dir: Path, fingerprint: str, clock=time.time,
                 max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 compact_segments: int = DEFAULT_COMPACT_SEGMENTS):
        self.run_dir = Path(run_dir)
        #: segment zero — the name every pre-rotation reader knows.
        self.path = self.run_dir / LEDGER_NAME
        self.fingerprint = fingerprint
        self.dropped_writes = 0
        self.compact_segments = max(1, int(compact_segments))
        self._clock = clock
        self._journal = DurableJournal(
            self.run_dir, LEDGER_PREFIX, clock=clock,
            max_segment_bytes=max_segment_bytes,
            line_filter=lambda line: faults.mangle("ledger_line", line),
            on_damage=self._count_drop,
        )

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def create(
        cls, run_dir: Path, manifest: BatchManifest, clock=time.time
    ) -> "RunLedger":
        """Start a fresh run directory; refuses to clobber an existing
        ledger (that is what :meth:`resume` is for)."""
        run_dir = Path(run_dir)
        ledger_path = run_dir / LEDGER_NAME
        if segment_paths(run_dir, LEDGER_PREFIX):
            raise LedgerError(
                f"{ledger_path} already exists; resume the run instead"
            )
        run_dir.mkdir(parents=True, exist_ok=True)
        snapshot = manifest_document(manifest)
        (run_dir / MANIFEST_NAME).write_text(
            json.dumps(snapshot, indent=2) + "\n"
        )
        ledger = cls(run_dir, manifest_fingerprint(manifest), clock=clock)
        ledger._open()
        ledger._append({
            "event": "run_start",
            "fingerprint": ledger.fingerprint,
            "jobs": len(manifest),
            "manifest_source": manifest.source,
        })
        return ledger

    @classmethod
    def resume(
        cls, run_dir: Path, clock=time.time
    ) -> Tuple["RunLedger", BatchManifest, LedgerState]:
        """Reopen a run directory: replay the journal, verify it against
        the manifest snapshot, and return everything a resumed run needs.
        """
        run_dir = Path(run_dir)
        ledger_path = run_dir / LEDGER_NAME
        manifest_path = run_dir / MANIFEST_NAME
        if not segment_paths(run_dir, LEDGER_PREFIX) \
                or not manifest_path.exists():
            raise LedgerError(
                f"{run_dir} is not a run directory (missing "
                f"{LEDGER_NAME} or {MANIFEST_NAME})"
            )
        try:
            raw = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as error:
            raise LedgerError(
                f"manifest snapshot {manifest_path} is corrupt: {error}"
            ) from None
        manifest = parse_manifest(
            raw, source=str(manifest_path), base_dir=run_dir
        )
        state = replay(ledger_path)
        if state.corrupt_records:
            # Damage that is not a torn tail: quarantine it (the sidecar
            # dedups across resumes) and keep resuming — a batch must
            # come back up even when the disk lied to it.
            scan = scan_journal(run_dir, LEDGER_PREFIX)
            quarantine_records(run_dir, LEDGER_PREFIX, scan.corrupt,
                               clock=clock)
            current_registry().counter("journal.corrupt_records").inc(
                state.corrupt_records
            )
        fingerprint = manifest_fingerprint(manifest)
        if state.fingerprint is None:
            raise LedgerError(
                f"{ledger_path} has no readable run_start record"
            )
        if state.fingerprint != fingerprint:
            raise LedgerError(
                f"{run_dir}: manifest does not match the ledger "
                f"(fingerprint {fingerprint[:12]} vs recorded "
                f"{state.fingerprint[:12]}); refusing to resume"
            )
        hashes = {spec.id: spec_hash(spec) for spec in manifest.jobs}
        for job_id, record in state.completed.items():
            if job_id not in hashes:
                raise LedgerError(
                    f"{run_dir}: ledger records job {job_id!r} that is "
                    f"not in the manifest; refusing to resume"
                )
            recorded = record.get("spec_hash")
            if recorded is not None and recorded != hashes[job_id]:
                raise LedgerError(
                    f"{run_dir}: job {job_id!r} changed since it was "
                    f"recorded; refusing to resume"
                )
        ledger = cls(run_dir, fingerprint, clock=clock)
        ledger._open()
        ledger._append({
            "event": "run_resume",
            "completed": len(state.completed),
            "in_flight": len(state.in_flight),
        })
        return ledger, manifest, state

    def _open(self) -> None:
        self._journal.open()

    def close(self) -> None:
        self._journal.close()

    def compact(self) -> None:
        """Fold the ledger's history into one snapshot checkpoint.

        Resume-critical state (terminal results, in-flight attempts,
        the fingerprint) survives by construction; the per-event audit
        trail folds away, which is the point — a long campaign's ledger
        stops growing with its history.
        """
        state = replay(self.path)
        state.fingerprint = state.fingerprint or self.fingerprint
        self._journal.compact(state.snapshot_state(),
                              schema_version=SCHEMA_VERSION)

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- recording ------------------------------------------------------------

    def record_attempt(self, spec: JobSpec, attempt: int) -> None:
        self._append({
            "event": "job_attempt", "job_id": spec.id, "attempt": attempt,
            "spec_hash": spec_hash(spec),
        })

    def record_success(
        self, spec: JobSpec, attempt: int, payload: Mapping[str, Any]
    ) -> None:
        self._append({
            "event": "job_done", "job_id": spec.id, "status": "ok",
            "attempts": attempt, "spec_hash": spec_hash(spec),
            "payload": dict(payload),
        })

    def record_failure(
        self, spec: JobSpec, attempt: int, failure: Mapping[str, Any]
    ) -> None:
        self._append({
            "event": "job_done", "job_id": spec.id, "status": "failed",
            "attempts": attempt, "spec_hash": spec_hash(spec),
            "failure": dict(failure),
        })

    def record_strategy_selected(
        self, job_id: str, strategy: str, reason: str = "",
        features: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Journal one ``--strategy auto`` resolution (typed v1 event;
        replay ignores it — it is audit evidence, not resume state)."""
        record: Dict[str, Any] = {
            "event": "strategy_selected", "job_id": job_id,
            "strategy": strategy, "reason": reason,
        }
        if features is not None:
            record["features"] = dict(features)
        self._append(record)

    def record_strategy_outcome(
        self, job_id: str, strategy: str, won: bool,
        speedup: Optional[float] = None,
        points_searched: Optional[int] = None,
        trials: int = 0, win_rate: float = 0.0,
    ) -> None:
        """Journal one entry of the per-strategy win-rate ledger:
        ``trials``/``win_rate`` snapshot the scoreboard *after* this
        outcome folded in."""
        self._append({
            "event": "strategy_outcome", "job_id": job_id,
            "strategy": strategy, "won": won, "speedup": speedup,
            "points_searched": points_searched, "trials": trials,
            "win_rate": win_rate,
        })

    def record_finish(self, succeeded: int, failed: int) -> None:
        self._append({
            "event": "run_finish", "succeeded": succeeded, "failed": failed,
        })

    def _count_drop(self) -> None:
        self.dropped_writes += 1
        current_registry().counter("ledger.dropped").inc()

    def _append(self, record: Dict[str, Any]) -> None:
        """One framed, fsync'd, schema-versioned journal line; failures
        become counted drops (a mangled line — the ``ledger_line`` /
        ``journal_torn`` / ``journal_bitflip`` fault sites — counts as a
        drop too: the bytes land, the record is lost, and now the
        checksum makes the loss detectable on replay).  Rotation
        auto-compacts once enough closed segments accumulate.
        """
        if self._journal.closed:
            self._count_drop()
            return
        record = {
            "ts": self._clock(),
            "schema_version": SCHEMA_VERSION,
            **record,
        }
        try:
            faults.check("ledger_write")
            rotated = self._journal.append(record)
        except (OSError, TypeError, ValueError):
            self._count_drop()
            return
        if rotated and self._journal.closed_segment_count() >= \
                self.compact_segments:
            try:
                self.compact()
            except (OSError, LedgerError):
                pass  # compaction is an optimization; the journal stands
