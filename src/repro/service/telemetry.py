"""Structured telemetry for batch runs.

Every notable moment in a batch — submission, per-attempt start/finish,
retries, pool degradation — is one JSON object on one line of the trace
file (JSONL), so a run can be tailed live, replayed later, and asserted
on in tests.  The same events feed an in-memory aggregator whose summary
(jobs, points synthesized, cache hit/miss totals, wall time per phase)
renders as a :class:`repro.report.Table` next to the paper's own tables.

Event vocabulary:

===================  ========================================================
``batch_start``      manifest size, worker count, cache path
``job_start``        one attempt begins (``attempt`` counts from 1)
``job_finish``       attempt succeeded; carries cycles/space/points/cache
                     counters and per-phase wall seconds
``job_retry``        attempt failed but the job will be retried (``reason``,
                     plus the typed ``kind``/``transient`` classification)
``job_failed``       the job is terminally failed (attempts exhausted, or a
                     permanent typed failure that retrying cannot fix)
``job_resumed``      a resumed run adopted this job's terminal result from
                     the ledger without re-executing it
``pool_unavailable`` process pool could not start; degraded to serial
``batch_finish``     aggregate summary (also returned by :meth:`summary`)
===================  ========================================================
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro import faults
from repro.obs import current_registry
from repro.obs.events import SCHEMA_VERSION
from repro.report import batch_summary_table


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured event: a name, a wall-clock stamp, and payload.

    Serialized records carry the versioned-event contract of
    :mod:`repro.obs.events`: every line stamps ``schema_version`` and
    round-trips through :func:`repro.obs.events.from_record`.
    """

    event: str
    timestamp: float
    job_id: Optional[str] = None
    data: Mapping[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "event": self.event,
            "ts": self.timestamp,
            "schema_version": SCHEMA_VERSION,
        }
        if self.job_id is not None:
            record["job_id"] = self.job_id
        record.update(self.data)
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "TelemetryEvent":
        data = {
            key: value for key, value in record.items()
            if key not in ("event", "ts", "job_id", "schema_version")
        }
        return cls(
            event=record["event"],
            timestamp=record.get("ts", 0.0),
            job_id=record.get("job_id"),
            data=data,
        )


class Telemetry:
    """Collects events in memory and streams them to a JSONL file.

    The writer appends and flushes per event so a crashed run still
    leaves a readable prefix; pass ``path=None`` for in-memory only,
    and ``mode="a"`` to extend an earlier run's trace (resumed batches).

    Telemetry is observability, never a point of failure: an event that
    cannot be serialized or written (disk full, closed stream, injected
    fault) is *dropped and counted* on :attr:`dropped` — the in-memory
    record survives either way, and the batch summary surfaces the
    count so silent trace gaps cannot masquerade as a quiet run.
    """

    def __init__(
        self,
        path: Optional[Path] = None,
        clock=time.time,
        mode: str = "w",
    ):
        self.path = Path(path) if path is not None else None
        self.events: List[TelemetryEvent] = []
        self.dropped = 0
        self._clock = clock
        self._stream = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(self.path, mode)

    def emit(self, event: str, job_id: Optional[str] = None, **data: Any) -> TelemetryEvent:
        """Record one event (and write it through immediately)."""
        record = TelemetryEvent(
            event=event, timestamp=self._clock(), job_id=job_id, data=data,
        )
        self.events.append(record)
        if self._stream is not None:
            try:
                line = json.dumps(record.as_dict())
            except (TypeError, ValueError):
                self.dropped += 1  # unserializable payload
                current_registry().counter("telemetry.dropped").inc()
                return record
            try:
                faults.check("telemetry_write")
                self._stream.write(line + "\n")
                self._stream.flush()
            except (OSError, ValueError):
                self.dropped += 1  # write failed; keep the batch alive
                current_registry().counter("telemetry.dropped").inc()
        return record

    def close(self) -> None:
        """Flush and close the trace file (idempotent)."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def summary(self) -> Dict[str, Any]:
        """Aggregate counters over everything emitted so far."""
        return summarize_events(self.events)

    def summary_table(self):
        """The aggregate rendered as a :class:`repro.report.Table`."""
        return batch_summary_table(self.summary())


def read_trace(path: Path) -> List[TelemetryEvent]:
    """Load a JSONL trace back into events (tolerates a truncated tail,
    which a killed run legitimately produces)."""
    events: List[TelemetryEvent] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(TelemetryEvent.from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError):
            continue
    return events


def summarize_events(events: List[TelemetryEvent]) -> Dict[str, Any]:
    """Roll a batch's events up into the metrics the summary table shows.

    ``cache_hits``/``cache_misses`` sum the per-job counters reported by
    each worker's :class:`EstimateCache`, so the trace totals equal the
    cache-object totals by construction — the invariant the integration
    tests pin down.
    """
    summary: Dict[str, Any] = {
        "jobs": 0, "succeeded": 0, "failed": 0, "retries": 0, "attempts": 0,
        "points_synthesized": 0, "cache_hits": 0, "cache_misses": 0,
        "wall_seconds": 0.0, "serial_fallbacks": 0, "resumed": 0,
        "estimator_retries": 0, "deadline_hits": 0, "cache_evictions": 0,
        "infeasible_points": 0, "baselines_degraded": 0,
    }
    phases: Dict[str, float] = {}
    started = set()
    resumed = set()
    for event in events:
        if event.event == "job_start":
            summary["attempts"] += 1
            if event.job_id not in started:
                started.add(event.job_id)
                summary["jobs"] += 1
        elif event.event == "job_finish":
            summary["succeeded"] += 1
            summary["points_synthesized"] += event.data.get("points_searched", 0)
            summary["cache_hits"] += event.data.get("cache_hits", 0)
            summary["cache_misses"] += event.data.get("cache_misses", 0)
            summary["wall_seconds"] += event.data.get("wall_seconds", 0.0)
            summary["estimator_retries"] += (
                event.data.get("estimator_retries") or 0
            )
            summary["deadline_hits"] += event.data.get("deadline_hits") or 0
            summary["cache_evictions"] += (
                event.data.get("cache_evictions") or 0
            )
            summary["infeasible_points"] += (
                event.data.get("infeasible_count") or 0
            )
            if event.data.get("baseline_degraded"):
                summary["baselines_degraded"] += 1
            for phase, seconds in event.data.get("phase_seconds", {}).items():
                phases[phase] = phases.get(phase, 0.0) + seconds
        elif event.event == "job_retry":
            summary["retries"] += 1
        elif event.event == "job_failed":
            summary["failed"] += 1
        elif event.event == "job_resumed":
            # A combined trace (append-mode resume) can hold both the
            # original terminal event and the adoption record; count the
            # job itself only once.
            if event.job_id in resumed:
                continue
            resumed.add(event.job_id)
            summary["resumed"] += 1
            if event.job_id not in started:
                summary["jobs"] += 1
                if event.data.get("status") == "ok":
                    summary["succeeded"] += 1
                else:
                    summary["failed"] += 1
        elif event.event == "pool_unavailable":
            summary["serial_fallbacks"] += 1
    summary["phase_seconds"] = phases
    return summary
