"""Exception hierarchy shared across the repro packages.

Every user-facing failure raised by this library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
Subsystem-specific errors refine it: the frontend raises
:class:`FrontendError` subclasses with source locations, analyses raise
:class:`AnalysisError` when a program falls outside the affine domain the
paper supports, and so on.

Failure taxonomy.  Errors that can cross the batch service's process
boundary carry two class attributes the engine keys its behaviour on:

* ``kind`` — a short stable string ("estimation", "deadline", ...) used
  in ledger records and telemetry events, so traces never depend on
  Python class names.
* ``transient`` — whether retrying the *same* operation can plausibly
  succeed.  Transient failures (deadline overruns, injected flakes,
  lock timeouts) are retried with backoff; permanent ones (a parse
  error, a corrupt estimate) fail fast — re-running a deterministic
  computation cannot change its outcome.

Use :func:`failure_kind` / :func:`is_transient` to classify arbitrary
exceptions, including non-repro ones, under one policy.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""

    #: Stable taxonomy tag for ledger/telemetry records.
    kind = "error"
    #: Permanent by default: repro errors describe deterministic facts
    #: about the input (bad program, bad config), which retries cannot fix.
    transient = False


class FrontendError(ReproError):
    """A problem detected while lexing, parsing, or checking source code.

    Carries an optional source location so messages can point at the
    offending token, in the familiar ``line:column`` compiler style.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class LexError(FrontendError):
    """An unrecognizable character sequence in the input."""


class ParseError(FrontendError):
    """The token stream does not match the accepted C subset grammar."""


class SemanticError(FrontendError):
    """The program parses but violates a semantic rule.

    Examples: use of an undeclared variable, a non-constant loop bound,
    an array reference with the wrong number of subscripts.
    """


class AnalysisError(ReproError):
    """An analysis cannot handle the program (e.g. non-affine subscripts)."""


class TransformError(ReproError):
    """A transformation was requested with illegal parameters.

    Examples: an unroll factor that is not positive, tiling a loop that
    does not exist in the nest.

    Carries optional structured context so design-space exploration can
    report *which* kernel, loop, and pipeline stage rejected a point
    instead of a bare message: the keyword arguments are exposed as
    attributes (and via :meth:`context`) and folded into the rendered
    message.
    """

    kind = "transform"

    def __init__(
        self,
        message: str,
        *,
        kernel: "str | None" = None,
        loop: "str | None" = None,
        stage: "str | None" = None,
        location: "str | None" = None,
    ):
        self.bare_message = message
        self.kernel = kernel
        self.loop = loop
        self.stage = stage
        #: ``"line:column"`` of the loop in the original source, when the
        #: frontend threaded one through (builder-built programs have none).
        self.location = location
        parts = []
        if kernel:
            parts.append(f"kernel {kernel}")
        if stage:
            parts.append(f"stage {stage}")
        if loop:
            parts.append(f"loop {loop!r}")
        if location:
            parts.append(f"at {location}")
        if parts:
            message = f"{message} [{', '.join(parts)}]"
        super().__init__(message)

    def context(self) -> "dict[str, str]":
        """The non-empty structured fields, for diagnostics records."""
        fields = {
            "kernel": self.kernel, "loop": self.loop,
            "stage": self.stage, "location": self.location,
        }
        return {key: value for key, value in fields.items() if value}

    def annotate(self, **context) -> "TransformError":
        """A copy with *missing* context fields filled in.

        Fields the error already carries win — a deep raise site knows
        its loop better than the pipeline wrapper that catches it.
        Returns ``self`` unchanged when nothing new would be added.
        """
        fields = {
            "kernel": self.kernel, "loop": self.loop,
            "stage": self.stage, "location": self.location,
        }
        changed = False
        for key, value in context.items():
            if key not in fields:
                raise TypeError(f"unknown context field {key!r}")
            if fields[key] is None and value is not None:
                fields[key] = value
                changed = True
        if not changed:
            return self
        return self._rebuild(self.bare_message, fields)

    def _rebuild(self, message: str, fields: dict) -> "TransformError":
        return TransformError(message, **fields)


class VerificationError(TransformError):
    """A program violates an IR invariant (see :mod:`repro.ir.verify`).

    Raised when the post-transform invariant checker finds scoping,
    shape, or well-formedness violations — evidence of a transform bug,
    not of a bad input.  Carries the individual
    :class:`repro.ir.verify.Violation` records on ``violations``.
    """

    kind = "verifier"

    def __init__(self, message: str, *, violations=(), **context):
        self.violations = tuple(violations)
        super().__init__(message, **context)

    def _rebuild(self, message: str, fields: dict) -> "VerificationError":
        return VerificationError(
            message, violations=self.violations, **fields
        )


class LayoutError(ReproError):
    """Custom data layout could not be derived for an array."""


class SynthesisError(ReproError):
    """Behavioral synthesis estimation failed for a design."""

    kind = "synthesis"


class EstimationError(SynthesisError):
    """The estimation backend failed permanently for a design.

    This is the typed terminal state for an estimator call that raised,
    or returned something unusable, in a way retrying cannot fix.
    """

    kind = "estimation"


class CorruptEstimate(EstimationError):
    """The estimation backend returned a structurally invalid estimate.

    Example: negative cycles or NaN balance from a faulty (or
    fault-injected) backend.  Detected by the guard's validation before
    the value can reach the search or be cached.
    """

    kind = "corrupt_estimate"


class CapacityError(SynthesisError):
    """A design exceeds the capacity of the target FPGA.

    The DSE algorithm treats this as a signal to shrink the unroll
    factors, mirroring the space-constrained branch of Figure 2.
    """


class SearchError(ReproError):
    """The design space exploration was configured inconsistently."""

    kind = "search"


class PointFailureBudgetExceeded(SearchError):
    """Too many design points failed; the search gave up on the nest.

    The fail-soft search tolerates per-point failures (illegal jams,
    estimation errors, verifier violations) up to a configurable budget
    — past it the nest is considered hopeless and the whole exploration
    fails with this typed error.  The message summarizes the failure
    kinds seen so the terminal record still names the underlying cause.
    """

    kind = "failure_budget"


class NoFeasiblePoint(SearchError):
    """Every design point the search visited failed.

    The fail-soft search finished its walk without a single successful
    evaluation to select, so there is nothing to degrade to.  Like
    :class:`PointFailureBudgetExceeded`, the message carries the
    dominant underlying failure kinds.
    """

    kind = "no_feasible_point"


class FuzzError(ReproError):
    """The differential fuzzer found a real disagreement.

    Raised (or recorded, in batch fuzz runs) when a generated program
    fails round-trip identity, an invariant check, or interpreter
    equivalence after a transform — each a genuine pipeline bug, never
    an artifact of the generator.
    """

    kind = "fuzz"


class ServiceError(ReproError):
    """The batch exploration service was misconfigured.

    Examples: a job manifest that fails validation, an unknown board
    name in a job entry, a manifest file that is not valid JSON.
    """

    kind = "service"


class ServerError(ServiceError):
    """The exploration server was misused or is in a bad state.

    Examples: a job submission that fails validation, an unknown job id,
    a state directory whose journal cannot be appended to.  Admission
    rejections (full queue, draining server) are *not* errors — they are
    HTTP responses — so they never raise this.
    """

    kind = "server"


class LedgerError(ServiceError):
    """The run ledger is unusable or inconsistent with its manifest.

    Raised when resuming a run directory whose manifest no longer
    matches the fingerprints the ledger recorded — resuming would mix
    results from two different batches, so the engine refuses.
    """

    kind = "ledger"


class JournalError(ServiceError):
    """A durable journal cannot be inspected or repaired.

    Raised by the ``repro fsck`` toolkit for directories that hold no
    recognizable journal, or repairs that cannot be applied.  Damage
    *inside* a journal is never an exception — replay quarantines and
    continues, and fsck reports it — this class covers only the cases
    where there is nothing coherent to operate on.
    """

    kind = "journal"


class TransientError(ReproError):
    """A retryable fault: the same operation may succeed if repeated.

    The estimation guard retries these with exponential backoff, and
    the batch engine re-enqueues jobs that ultimately fail with one.
    """

    kind = "transient"
    transient = True


class DeadlineExceeded(TransientError):
    """An estimator call overran its per-call deadline.

    Distinct from a job's ``timeout_s``: the deadline bounds one
    ``synthesize`` call inside a worker, the timeout bounds the whole
    job from the coordinator's side.
    """

    kind = "deadline"


class CacheLockTimeout(ReproError, TimeoutError):
    """The shared estimate cache's file lock could not be acquired.

    A live-but-hung peer can hold the flock indefinitely; rather than
    blocking the worker forever, acquisition times out with this typed
    error.  Transient: the peer may recover or be reclaimed.  Inherits
    ``TimeoutError`` so callers treating it generically keep working.
    """

    kind = "cache_lock_timeout"
    transient = True


def failure_kind(error: BaseException) -> str:
    """The taxonomy tag for any exception (repro-typed or foreign)."""
    kind = getattr(error, "kind", None)
    if isinstance(kind, str) and kind:
        return kind
    return "exception"


def is_transient(error: BaseException) -> bool:
    """Whether retrying the failed operation can plausibly succeed.

    Repro errors declare themselves via ``transient``; ``OSError`` (I/O
    flakes, ENOSPC that may clear) and foreign exceptions default to
    transient — the engine has no evidence they are deterministic, and
    bounded retries of a deterministic failure only cost attempts.
    """
    transient = getattr(error, "transient", None)
    if isinstance(transient, bool):
        return transient
    return True
