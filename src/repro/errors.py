"""Exception hierarchy shared across the repro packages.

Every user-facing failure raised by this library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
Subsystem-specific errors refine it: the frontend raises
:class:`FrontendError` subclasses with source locations, analyses raise
:class:`AnalysisError` when a program falls outside the affine domain the
paper supports, and so on.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class FrontendError(ReproError):
    """A problem detected while lexing, parsing, or checking source code.

    Carries an optional source location so messages can point at the
    offending token, in the familiar ``line:column`` compiler style.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class LexError(FrontendError):
    """An unrecognizable character sequence in the input."""


class ParseError(FrontendError):
    """The token stream does not match the accepted C subset grammar."""


class SemanticError(FrontendError):
    """The program parses but violates a semantic rule.

    Examples: use of an undeclared variable, a non-constant loop bound,
    an array reference with the wrong number of subscripts.
    """


class AnalysisError(ReproError):
    """An analysis cannot handle the program (e.g. non-affine subscripts)."""


class TransformError(ReproError):
    """A transformation was requested with illegal parameters.

    Examples: an unroll factor that is not positive, tiling a loop that
    does not exist in the nest.
    """


class LayoutError(ReproError):
    """Custom data layout could not be derived for an array."""


class SynthesisError(ReproError):
    """Behavioral synthesis estimation failed for a design."""


class CapacityError(SynthesisError):
    """A design exceeds the capacity of the target FPGA.

    The DSE algorithm treats this as a signal to shrink the unroll
    factors, mirroring the space-constrained branch of Figure 2.
    """


class SearchError(ReproError):
    """The design space exploration was configured inconsistently."""


class ServiceError(ReproError):
    """The batch exploration service was misconfigured.

    Examples: a job manifest that fails validation, an unknown board
    name in a job entry, a manifest file that is not valid JSON.
    """
