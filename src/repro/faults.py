"""Deterministic fault injection for the batch service's chaos tests.

The batch engine claims to survive a flaky estimation backend, crashing
workers, and failing writes.  This module makes those failure modes
*injectable on demand* so the claims are exercised by tests instead of
by hand: a JSON *fault spec* names sites in the pipeline and what should
go wrong there, and instrumented code consults :func:`check` /
:func:`mangle` at each site.  With no spec active both are no-ops (one
``is None`` test), so production paths pay nothing.

A spec looks like::

    {
      "seed": 1234,
      "faults": [
        {"site": "estimator", "mode": "transient", "jobs": ["fir"],
         "max_hits": 1},
        {"site": "estimator", "mode": "hang", "seconds": 30.0},
        {"site": "estimate", "mode": "corrupt"},
        {"site": "worker", "mode": "kill"},
        {"site": "cache_write", "mode": "io_error"},
        {"site": "telemetry_write", "mode": "io_error", "p": 0.5},
        {"site": "ledger_write", "mode": "io_error"}
      ]
    }

Sites instrumented across the service (the taxonomy the chaos suite
asserts over):

==================  =========================================================
``worker``          entry of :func:`repro.service.worker.execute_job`
``transform``       entry of :func:`repro.transform.pipeline.compile_design`
                    (key = the program name, so ``jobs`` restricts by
                    kernel; pair with ``max_hits`` to poison only some
                    design points)
``estimator``       inside the guard, around each backend ``synthesize`` call
``estimate``        the returned estimate value (``mangle`` site)
``cache_write``     :meth:`SharedEstimateCache.save` / ``EstimateCache.save``
``telemetry_write`` each JSONL trace append
``ledger_write``    each run-ledger append
``server``          the exploration server's dispatch loop, once per
                    claimed job before it is handed to a worker (key =
                    the job id); ``kill`` here murders the server
                    mid-queue to exercise restart-resume
``heartbeat``       inside a fleet worker's lease-renewal loop (key =
                    the worker id); a ``raise`` silently skips beats
                    until the lease lapses — lease starvation without
                    killing the process
``worker_kill``     entry of :func:`repro.server.fleet.execute_shard`
                    (key = the shard id); ``kill`` with ``max_hits: 1``
                    murders a fleet worker mid-shard exactly once, the
                    rehomed retry runs clean
``rehome``          in the fleet coordinator just before an orphaned
                    shard is requeued (key = the shard id); a ``raise``
                    defers the rehoming to the next lease sweep instead
                    of losing the shard
``disk_full``       before every durable-journal append (key = the
                    journal prefix, ``jobs`` or ``ledger``); an
                    ``io_error`` rule turns the append into ENOSPC,
                    which the job store degrades into read-only mode
``journal_bitflip`` the serialized journal line (``mangle`` site, key =
                    the journal prefix); a ``bitflip`` rule flips one
                    deterministic bit — the record lands on disk but
                    fails its CRC on replay
``journal_torn``    the serialized journal line (``mangle`` site, key =
                    the journal prefix); a ``corrupt`` rule truncates
                    the line mid-record and the journal suppresses the
                    newline — a crash mid-append, on demand
==================  =========================================================

Modes: ``transient`` raises :class:`~repro.errors.TransientError`,
``raise`` raises :class:`~repro.errors.EstimationError`, ``io_error``
raises ``OSError(ENOSPC)``, ``hang`` sleeps ``seconds`` (pair it with a
call deadline or a job timeout), ``kill`` hard-exits the process the way
a segfault would, and ``corrupt`` (``mangle`` sites only) returns a
structurally invalid variant of the value.  ``bitflip`` (``mangle``
sites only) flips one deterministic bit of a string value — the
single-event upset a checksum exists to catch.  ``transform_error`` raises a
:class:`~repro.errors.TransformError` with an ``injected`` stage tag —
the chaos suite uses it at the ``transform`` site to poison individual
design points and assert the fail-soft search degrades instead of dying.

Determinism: whether a rule fires is a pure function of ``(seed, site,
key, nth consultation of that rule in this process)`` — no wall clock,
no global RNG — so a chaos run replays identically under a fixed seed.
``max_hits`` additionally bounds total firings *across processes*
through lock-free claim files in a state directory (atomic
``O_CREAT|O_EXCL``), which is what lets "fail exactly once, then
recover" scenarios span pool workers.

Activation: set the ``REPRO_FAULTS`` environment variable to the spec's
path (inherited by pool workers), or pass the path through the batch
runner's ``fault_spec`` (carried in each job payload's ``runtime``).
The CLI's ``--fault-spec`` does both.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import EstimationError, ServiceError, TransientError
from repro.obs.metrics import current_registry

#: Environment variable naming the active fault-spec file.
ENV_SPEC = "REPRO_FAULTS"

_MODES = (
    "transient", "raise", "io_error", "hang", "kill", "corrupt",
    "transform_error", "bitflip",
)

#: Modes that act on values (:func:`mangle`), not control flow
#: (:func:`check`).
_MANGLE_MODES = ("corrupt", "bitflip")
_RULE_KEYS = {"site", "mode", "p", "max_hits", "jobs", "seconds", "message"}


@dataclass(frozen=True)
class FaultRule:
    """One thing that goes wrong at one site."""

    site: str
    mode: str
    p: float = 1.0                 # firing probability per consultation
    max_hits: Optional[int] = None  # total firings across all processes
    jobs: Tuple[str, ...] = ()     # restrict to these job ids (empty = all)
    seconds: float = 30.0          # hang duration
    message: str = ""

    def matches(self, site: str, key: Optional[str]) -> bool:
        if site != self.site:
            return False
        return not self.jobs or (key is not None and key in self.jobs)


@dataclass
class FaultInjector:
    """Evaluates a spec's rules at instrumented sites."""

    seed: int
    rules: List[FaultRule]
    state_dir: Optional[Path] = None
    #: per-rule consultation counters (process-local; part of the
    #: deterministic firing function, not of cross-process accounting).
    #: Also holds ("hits", index) slots when no state_dir is set.
    _calls: Dict[Any, int] = field(default_factory=dict)

    # -- rule evaluation ------------------------------------------------------

    def _fires(self, index: int, rule: FaultRule, key: Optional[str]) -> bool:
        nth = self._calls.get(index, 0)
        self._calls[index] = nth + 1
        if rule.p < 1.0:
            digest = hashlib.sha256(
                f"{self.seed}:{rule.site}:{key}:{nth}".encode()
            ).digest()
            draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
            if draw >= rule.p:
                return False
        if rule.max_hits is not None and not self._claim_hit(index, rule):
            return False
        return True

    def _claim_hit(self, index: int, rule: FaultRule) -> bool:
        """Claim one of the rule's ``max_hits`` firing slots atomically.

        Without a state directory the count is process-local.
        """
        if self.state_dir is None:
            used = self._calls.setdefault(("hits", index), 0)
            if used >= rule.max_hits:
                return False
            self._calls[("hits", index)] = used + 1
            return True
        self.state_dir.mkdir(parents=True, exist_ok=True)
        for slot in range(rule.max_hits):
            claim = self.state_dir / f"rule{index}.hit{slot}"
            try:
                fd = os.open(str(claim), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    # -- instrumented-site API ------------------------------------------------

    def check(self, site: str, key: Optional[str] = None) -> None:
        """Consult every matching rule; the first firing one acts."""
        for index, rule in enumerate(self.rules):
            if not rule.matches(site, key) or rule.mode in _MANGLE_MODES:
                continue
            if not self._fires(index, rule, key):
                continue
            current_registry().counter(
                "faults.hits", site=site, mode=rule.mode
            ).inc()
            message = rule.message or (
                f"injected {rule.mode} at {site}" + (f" ({key})" if key else "")
            )
            if rule.mode == "transient":
                raise TransientError(message)
            if rule.mode == "raise":
                raise EstimationError(message)
            if rule.mode == "transform_error":
                from repro.errors import TransformError
                raise TransformError(
                    message, stage="injected", kernel=key,
                )
            if rule.mode == "io_error":
                raise OSError(errno.ENOSPC, message)
            if rule.mode == "hang":
                time.sleep(rule.seconds)
                return
            if rule.mode == "kill":
                os._exit(13)

    def mangle(self, site: str, value: Any, key: Optional[str] = None) -> Any:
        """Pass ``value`` through matching ``corrupt``/``bitflip`` rules."""
        for index, rule in enumerate(self.rules):
            if rule.mode not in _MANGLE_MODES or not rule.matches(site, key):
                continue
            if self._fires(index, rule, key):
                current_registry().counter(
                    "faults.hits", site=site, mode=rule.mode
                ).inc()
                if rule.mode == "bitflip":
                    return _bitflip(value, self.seed, site, key)
                return _corrupt(value)
        return value


def _bitflip(value: Any, seed: int, site: str, key: Optional[str]) -> Any:
    """Flip one deterministic bit of a string value.

    Which byte and which bit are a pure function of ``(seed, site, key,
    value)``, so a chaos run corrupts the same record the same way on
    every replay — the determinism contract the rest of the injector
    keeps.  Non-strings pass through the generic corruptor.
    """
    if not isinstance(value, str) or not value:
        return _corrupt(value)
    data = bytearray(value.encode("utf-8"))
    digest = hashlib.sha256(
        f"{seed}:{site}:{key}:{value}".encode("utf-8", "replace")
    ).digest()
    position = int.from_bytes(digest[:4], "big") % len(data)
    data[position] ^= 1 << (digest[4] % 8)
    return bytes(data).decode("utf-8", "replace")


def _corrupt(value: Any) -> Any:
    """A structurally invalid variant of an estimator product."""
    import dataclasses
    if dataclasses.is_dataclass(value):
        return dataclasses.replace(value, cycles=-1)
    if isinstance(value, str):
        return value[: max(1, len(value) // 2)]
    return None


# -- spec loading and the active injector -------------------------------------

def parse_spec(raw: Any, state_dir: Optional[Path] = None) -> FaultInjector:
    """Validate a decoded spec into an injector."""
    if not isinstance(raw, dict):
        raise ServiceError("fault spec must be a JSON object")
    unknown = set(raw) - {"seed", "faults", "state_dir"}
    if unknown:
        raise ServiceError(f"fault spec: unknown keys {sorted(unknown)}")
    seed = raw.get("seed", 0)
    if not isinstance(seed, int):
        raise ServiceError("fault spec: seed must be an integer")
    entries = raw.get("faults", [])
    if not isinstance(entries, list):
        raise ServiceError("fault spec: 'faults' must be a list")
    rules = []
    for position, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ServiceError(f"fault {position} must be an object")
        unknown = set(entry) - _RULE_KEYS
        if unknown:
            raise ServiceError(
                f"fault {position}: unknown keys {sorted(unknown)}"
            )
        mode = entry.get("mode")
        if mode not in _MODES:
            raise ServiceError(
                f"fault {position}: mode must be one of {_MODES}"
            )
        site = entry.get("site")
        if not isinstance(site, str) or not site:
            raise ServiceError(f"fault {position}: needs a 'site' string")
        rules.append(FaultRule(
            site=site,
            mode=mode,
            p=float(entry.get("p", 1.0)),
            max_hits=entry.get("max_hits"),
            jobs=tuple(entry.get("jobs", ())),
            seconds=float(entry.get("seconds", 30.0)),
            message=entry.get("message", ""),
        ))
    if state_dir is None and raw.get("state_dir"):
        state_dir = Path(raw["state_dir"])
    return FaultInjector(seed=seed, rules=rules, state_dir=state_dir)


def load_spec(path: Path) -> FaultInjector:
    """Load a spec file; its state directory defaults to ``<path>.state``
    so cross-process hit accounting works without configuration."""
    path = Path(path)
    try:
        raw = json.loads(path.read_text())
    except OSError as error:
        raise ServiceError(f"cannot read fault spec {path}: {error}") from None
    except json.JSONDecodeError as error:
        raise ServiceError(
            f"fault spec {path} is not valid JSON: {error}"
        ) from None
    injector = parse_spec(raw)
    if injector.state_dir is None:
        injector.state_dir = path.with_suffix(path.suffix + ".state")
    return injector


_active: Optional[FaultInjector] = None
_active_source: Optional[str] = None


def activate(spec_path: Optional[str] = None) -> Optional[FaultInjector]:
    """Install the process-wide injector from ``spec_path`` or the
    ``REPRO_FAULTS`` environment variable; returns it (or ``None``).

    Idempotent per path: re-activating the same file keeps the existing
    injector and its counters.
    """
    global _active, _active_source
    source = spec_path or os.environ.get(ENV_SPEC)
    if not source:
        return _active
    if _active is not None and _active_source == str(source):
        return _active
    _active = load_spec(Path(source))
    _active_source = str(source)
    return _active


def deactivate() -> None:
    """Drop the process-wide injector (tests)."""
    global _active, _active_source
    _active = None
    _active_source = None


def check(site: str, key: Optional[str] = None) -> None:
    """No-op unless an injector is active."""
    if _active is not None:
        _active.check(site, key)


def mangle(site: str, value: Any, key: Optional[str] = None) -> Any:
    """Identity unless an injector is active."""
    if _active is not None:
        return _active.mangle(site, value, key)
    return value
