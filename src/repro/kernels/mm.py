"""MM: dense integer matrix multiply.

"Integer dense matrix multiplication of a 32-by-16 matrix by a 16-by-4
matrix" (Section 6.1).  The innermost (k) loop's memory accesses are all
removed by scalar replacement + loop-invariant code motion, which is why
the paper — and the saturation analysis here — only unrolls the two
outermost loops.
"""

from repro.kernels.base import Kernel

MM = Kernel(
    name="mm",
    description="Integer dense matrix multiply: (32x16) * (16x4)",
    source="""
int a[32][16];
int b[16][4];
int c[32][4];

for (i = 0; i < 32; i++)
  for (j = 0; j < 4; j++)
    for (k = 0; k < 16; k++)
      c[i][j] = c[i][j] + a[i][k] * b[k][j];
""",
    input_arrays=("a", "b"),
    output_arrays=("c",),
)
