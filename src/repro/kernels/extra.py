"""Additional kernels from the paper's motivating domain.

Section 2.4 lists "image correlation, Laplacian image operators,
erosion/dilation operators and edge detection" as the computations this
class of FPGA applications comprises.  The evaluation uses five of them;
these extras exercise the compiler's generality (and appear in the
extended integration tests): 2-D correlation with a 4x4 template,
morphological dilation, the pure 5-point Laplacian, and a 1-D
downsampling filter with a strided outer loop.
"""

from repro.kernels.base import Kernel

CORR = Kernel(
    name="corr",
    description="2-D image correlation: 4x4 template over a 16x16 image",
    source="""
char IMG[19][19];
char T[4][4];
int R[16][16];

for (y = 0; y < 16; y++)
  for (x = 0; x < 16; x++)
    for (u = 0; u < 4; u++)
      for (v = 0; v < 4; v++)
        R[y][x] = R[y][x] + IMG[y + u][x + v] * T[u][v];
""",
    input_arrays=("IMG", "T"),
    output_arrays=("R",),
    input_range=(0, 16),
)

DILATE = Kernel(
    name="dilate",
    description="Morphological dilation: 3x3 max over an 18x18 8-bit image",
    source="""
char A[18][18];
char D[18][18];

for (i = 1; i < 17; i++)
  for (j = 1; j < 17; j++)
    D[i][j] = max(max(max(A[i - 1][j], A[i + 1][j]),
                      max(A[i][j - 1], A[i][j + 1])),
                  A[i][j]);
""",
    input_arrays=("A",),
    output_arrays=("D",),
    input_range=(0, 128),
)

LAPLACE = Kernel(
    name="laplace",
    description="5-point Laplacian operator over an 18x18 integer grid",
    source="""
int A[18][18];
int L[18][18];

for (i = 1; i < 17; i++)
  for (j = 1; j < 17; j++)
    L[i][j] = A[i - 1][j] + A[i + 1][j] + A[i][j - 1] + A[i][j + 1]
            - 4 * A[i][j];
""",
    input_arrays=("A",),
    output_arrays=("L",),
    input_range=(0, 256),
)

DECIMATE = Kernel(
    name="decimate",
    description="Decimating FIR: 8-tap filter with 2x downsampling "
                "(stride-2 input accesses)",
    source="""
int X[72];
int H[8];
int Y[32];

for (m = 0; m < 32; m++)
  for (k = 0; k < 8; k++)
    Y[m] = Y[m] + X[2 * m + k] * H[k];
""",
    input_arrays=("X", "H"),
    output_arrays=("Y",),
)

EXTRA_KERNELS = (CORR, DILATE, LAPLACE, DECIMATE)
