"""JAC: Jacobi iteration.

"4-point stencil averaging computation over the elements of an array"
(Section 6.1): each interior point becomes the mean of its four
neighbors.  The divide-by-4 strength-reduces to a shift in hardware.
"""

from repro.kernels.base import Kernel

JAC = Kernel(
    name="jac",
    description="Jacobi iteration: 4-point stencil average over an "
                "18x18 integer grid's interior",
    source="""
int A[18][18];
int B[18][18];

for (i = 1; i < 17; i++)
  for (j = 1; j < 17; j++)
    B[i][j] = (A[i - 1][j] + A[i + 1][j] + A[i][j - 1] + A[i][j + 1]) / 4;
""",
    input_arrays=("A",),
    output_arrays=("B",),
    input_range=(0, 256),
)
