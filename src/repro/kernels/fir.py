"""FIR: finite impulse response filter.

"Integer multiply-accumulate over 32 consecutive elements of a 64
element array" (Section 6.1) — the paper's running example (Figure 1).
"""

from repro.kernels.base import Kernel

FIR = Kernel(
    name="fir",
    description="Finite Impulse Response filter: integer multiply-accumulate "
                "over 32 consecutive elements for each of 64 outputs",
    source="""
int S[96];
int C[32];
int D[64];

for (j = 0; j < 64; j++)
  for (i = 0; i < 32; i++)
    D[j] = D[j] + S[i + j] * C[i];
""",
    input_arrays=("S", "C"),
    output_arrays=("D",),
)
