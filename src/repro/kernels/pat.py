"""PAT: string pattern matching.

"Character matching operator of a string of length 16 over an input
string of length 64" (Section 6.1): for each alignment, count how many
pattern characters match the input.
"""

from repro.kernels.base import Kernel

PAT = Kernel(
    name="pat",
    description="String pattern matching: 16-char pattern scored against "
                "every alignment of a 64-char input window",
    source="""
char S[80];
char P[16];
int M[64];

for (j = 0; j < 64; j++)
  for (i = 0; i < 16; i++)
    M[j] = M[j] + (S[i + j] == P[i]);
""",
    input_arrays=("S", "P"),
    output_arrays=("M",),
    input_range=(0, 4),  # a small alphabet so matches actually occur
)
