"""SOBEL: edge detection.

"3-by-3 window Laplacian operator over an integer image" (Section 6.1):
the classic Sobel gradient magnitude |Gx| + |Gy| over each interior
pixel of an 8-bit image.
"""

from repro.kernels.base import Kernel

SOBEL = Kernel(
    name="sobel",
    description="Sobel edge detection: 3x3 window gradient magnitude over "
                "an 18x18 8-bit image",
    source="""
char A[18][18];
int E[18][18];

for (i = 1; i < 17; i++)
  for (j = 1; j < 17; j++)
    E[i][j] = abs(A[i - 1][j + 1] + 2 * A[i][j + 1] + A[i + 1][j + 1]
                - A[i - 1][j - 1] - 2 * A[i][j - 1] - A[i + 1][j - 1])
            + abs(A[i + 1][j - 1] + 2 * A[i + 1][j] + A[i + 1][j + 1]
                - A[i - 1][j - 1] - 2 * A[i - 1][j] - A[i - 1][j + 1]);
""",
    input_arrays=("A",),
    output_arrays=("E",),
    input_range=(0, 128),
)
