"""Kernel registry infrastructure.

Each of the paper's five multimedia kernels (Section 6.1) is a standard
C program whose computation is a single loop nest — no pragmas,
annotations, or language extensions.  A :class:`Kernel` bundles the
source with what tests and benchmarks need: a parsed program, random
input generation, and the output arrays to compare.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.frontend import compile_source
from repro.ir.symbols import Program


@dataclass(frozen=True)
class Kernel:
    """One benchmark kernel.

    Attributes:
        name: short lowercase identifier (fir, mm, pat, jac, sobel).
        description: the paper's one-line characterization.
        source: the C-subset program text.
        input_arrays: arrays the computation reads (filled with random
            data by :meth:`random_inputs`).
        output_arrays: arrays holding the result (compared by tests).
        input_range: half-open value range for random input data,
            matched to the element type (images are 8-bit).
    """

    name: str
    description: str
    source: str
    input_arrays: Tuple[str, ...]
    output_arrays: Tuple[str, ...]
    input_range: Tuple[int, int] = (-100, 100)

    def program(self) -> Program:
        """Parse and check the kernel source (fresh each call — IR is
        immutable but callers may want distinct node identities)."""
        return compile_source(self.source, self.name)

    def random_inputs(self, seed: int = 0) -> Dict[str, List[int]]:
        """Deterministic random contents for every input array."""
        rng = random.Random(seed)
        program = self.program()
        low, high = self.input_range
        inputs: Dict[str, List[int]] = {}
        for name in self.input_arrays:
            decl = program.decl(name)
            inputs[name] = [rng.randrange(low, high) for _ in range(decl.element_count)]
        return inputs

    def value_ranges(self):
        """Sound value ranges for bitwidth analysis: inputs span the
        kernel's data range, outputs start zeroed (the kernel contract —
        :meth:`random_inputs` never fills output arrays)."""
        from repro.analysis.bitwidth import ValueRange
        low, high = self.input_range
        ranges = {name: ValueRange(low, high - 1) for name in self.input_arrays}
        for name in self.output_arrays:
            ranges[name] = ValueRange.exact(0)
        return ranges
