"""The paper's five multimedia kernels (Section 6.1), plus extras from
its motivating domain (Section 2.4)."""

from typing import Dict, List

from repro.kernels.base import Kernel
from repro.kernels.extra import CORR, DECIMATE, DILATE, EXTRA_KERNELS, LAPLACE
from repro.kernels.fir import FIR
from repro.kernels.jac import JAC
from repro.kernels.mm import MM
from repro.kernels.pat import PAT
from repro.kernels.sobel import SOBEL

#: The evaluation order used throughout the paper's tables.
ALL_KERNELS = (FIR, MM, PAT, JAC, SOBEL)

__all__ = ["ALL_KERNELS", "CORR", "DECIMATE", "DILATE", "EXTRA_KERNELS",
           "FIR", "JAC", "Kernel", "LAPLACE", "MM", "PAT", "SOBEL",
           "kernel_by_name"]


def kernel_by_name(name: str) -> Kernel:
    """Look up a built-in or extra kernel by its short name."""
    for kernel in ALL_KERNELS + EXTRA_KERNELS:
        if kernel.name == name.lower():
            return kernel
    known = ", ".join(k.name for k in ALL_KERNELS + EXTRA_KERNELS)
    raise KeyError(f"unknown kernel {name!r}; expected one of: {known}")
