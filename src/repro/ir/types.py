"""Fixed-width integer types for the loop-nest IR.

The paper targets multimedia kernels on 8- and 16-bit data, where FPGA
designs exploit reduced data widths (Section 2.4).  Every value in the IR
carries an :class:`IntType` so the synthesis estimator can size operators
and memory transfers in bits, and the interpreter can reproduce hardware
wrap-around semantics exactly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IntType:
    """A fixed-width two's-complement (or unsigned) integer type.

    Attributes:
        width: number of bits, 1..64.
        signed: True for two's-complement, False for unsigned.
    """

    width: int
    signed: bool = True

    def __post_init__(self):
        if not 1 <= self.width <= 64:
            raise ValueError(f"unsupported bit width: {self.width}")

    @property
    def min_value(self) -> int:
        """Smallest representable value."""
        if self.signed:
            return -(1 << (self.width - 1))
        return 0

    @property
    def max_value(self) -> int:
        """Largest representable value."""
        if self.signed:
            return (1 << (self.width - 1)) - 1
        return (1 << self.width) - 1

    def wrap(self, value: int) -> int:
        """Reduce an arbitrary integer into this type's range.

        Implements the usual hardware truncation: keep the low ``width``
        bits, then sign-extend if the type is signed.  This is what a
        synthesized datapath of this width computes, and what the IR
        interpreter uses so software and "hardware" results agree.
        """
        mask = (1 << self.width) - 1
        value &= mask
        if self.signed and value > self.max_value:
            value -= 1 << self.width
        return value

    def contains(self, value: int) -> bool:
        """True if ``value`` is representable without wrapping."""
        return self.min_value <= value <= self.max_value

    def __str__(self) -> str:
        prefix = "int" if self.signed else "uint"
        return f"{prefix}{self.width}"


# The C-subset type names the frontend accepts, with their widths chosen to
# match the paper's target domain (8-bit image data, 16-bit signal data,
# 32-bit integer accumulators).
INT8 = IntType(8, signed=True)
INT16 = IntType(16, signed=True)
INT32 = IntType(32, signed=True)
UINT8 = IntType(8, signed=False)
UINT16 = IntType(16, signed=False)
UINT32 = IntType(32, signed=False)
BOOL = IntType(1, signed=False)

C_TYPE_NAMES = {
    "char": INT8,
    "short": INT16,
    "int": INT32,
    "int8": INT8,
    "int16": INT16,
    "int32": INT32,
    "uint8": UINT8,
    "uint16": UINT16,
    "uint32": UINT32,
    "unsigned char": UINT8,
    "unsigned short": UINT16,
    "unsigned int": UINT32,
}


def type_from_name(name: str) -> IntType:
    """Look up a C type name, raising ``KeyError`` with a helpful message."""
    try:
        return C_TYPE_NAMES[name]
    except KeyError:
        known = ", ".join(sorted(C_TYPE_NAMES))
        raise KeyError(f"unknown type name {name!r}; expected one of: {known}") from None


def common_type(left: IntType, right: IntType) -> IntType:
    """The result type of a binary operation on two operand types.

    Mirrors C's integer promotion loosely: the wider operand wins, and
    signedness is preserved only if both operands agree.  Behavioral
    synthesis sizes the operator for the result type, so this choice
    directly feeds the area model.
    """
    width = max(left.width, right.width)
    return IntType(width, signed=left.signed and right.signed)
