"""Pretty-printer: render IR back to compilable C-subset source.

The printed form round-trips through the frontend (tested in
``tests/unit/test_printer.py``), which is how we validate that transformed
programs remain inside the accepted language.  ``rotate_registers`` prints
as a call-like statement the parser also accepts.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.ir.expr import ArrayRef, BinOp, Call, Expr, IntLit, UnOp, VarRef
from repro.ir.stmt import Assign, For, If, RotateRegisters, Stmt
from repro.ir.symbols import Program

_INDENT = "  "

# Precedence table for minimal-parenthesis printing, mirroring C.
_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}
_UNARY_PRECEDENCE = 11


def print_expr(expr: Expr, parent_precedence: int = 0) -> str:
    """Render an expression with only the parentheses C requires."""
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, ArrayRef):
        subs = "".join(f"[{print_expr(index)}]" for index in expr.indices)
        return f"{expr.array}{subs}"
    if isinstance(expr, Call):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, UnOp):
        inner = print_expr(expr.operand, _UNARY_PRECEDENCE)
        if inner.startswith(("-", "+", "~", "!")):
            # "--x" / "--1" would lex as the decrement operator (and
            # negative literals print with a sign); keep "-(-x)".
            inner = f"({inner})"
        text = f"{expr.op}{inner}"
        return f"({text})" if parent_precedence > _UNARY_PRECEDENCE else text
    if isinstance(expr, BinOp):
        precedence = _PRECEDENCE[expr.op]
        left = print_expr(expr.left, precedence)
        # Right child of a same-precedence non-commutative op needs parens
        # (a - (b - c) must keep them), so bump the requirement by one.
        right = print_expr(expr.right, precedence + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if parent_precedence > precedence else text
    raise TypeError(f"unknown expression node: {type(expr).__name__}")


def print_stmt(stmt: Stmt, depth: int = 0) -> List[str]:
    """Render one statement as a list of indented source lines."""
    pad = _INDENT * depth
    if isinstance(stmt, Assign):
        return [f"{pad}{print_expr(stmt.target)} = {print_expr(stmt.value)};"]
    if isinstance(stmt, RotateRegisters):
        return [f"{pad}rotate_registers({', '.join(stmt.registers)});"]
    if isinstance(stmt, If):
        lines = [f"{pad}if ({print_expr(stmt.cond)}) {{"]
        for inner in stmt.then_body:
            lines.extend(print_stmt(inner, depth + 1))
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            for inner in stmt.else_body:
                lines.extend(print_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, For):
        incr = f"{stmt.var}++" if stmt.step == 1 else f"{stmt.var} += {stmt.step}"
        header = f"{pad}for ({stmt.var} = {stmt.lower}; {stmt.var} < {stmt.upper}; {incr}) {{"
        lines = [header]
        for inner in stmt.body:
            lines.extend(print_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    raise TypeError(f"unknown statement node: {type(stmt).__name__}")


def print_program(program: Program) -> str:
    """Render a full program: declarations, then the statement sequence."""
    lines: List[str] = []
    for decl in program.decls:
        dims = "".join(f"[{d}]" for d in decl.dims)
        lines.append(f"{decl.type} {decl.name}{dims};")
    if program.decls and program.body:
        lines.append("")
    for stmt in program.body:
        lines.extend(print_stmt(stmt))
    return "\n".join(lines) + "\n"
