"""Loop-nest intermediate representation.

The IR plays the role SUIF plays in the DEFACTO system: the common
substrate the frontend produces and every analysis, transformation, and
backend consumes.  It adds one thing SUIF did not have — a reference
interpreter (:mod:`repro.ir.interp`) used as a semantics oracle in tests.
"""

from repro.ir.types import (
    BOOL, INT8, INT16, INT32, UINT8, UINT16, UINT32,
    IntType, common_type, type_from_name,
)
from repro.ir.expr import (
    ArrayRef, BinOp, Call, Expr, IntLit, UnOp, VarRef,
    fold_constants, substitute, array_refs, referenced_arrays, referenced_scalars,
)
from repro.ir.stmt import Assign, For, If, RotateRegisters, Stmt, count_statements, walk_all
from repro.ir.symbols import Program, VarDecl
from repro.ir.nest import LoopInfo, LoopNest
from repro.ir.interp import (
    ArrayStorage, InterpBudgetExceeded, InterpError, Interpreter,
    MachineState, run_program,
)
from repro.ir.printer import print_expr, print_program, print_stmt
from repro.ir.verify import Violation, check_ir, verify_program

__all__ = [
    "ArrayRef", "ArrayStorage", "Assign", "BinOp", "BOOL", "Call", "Expr",
    "For", "If", "INT8", "INT16", "INT32", "IntLit", "InterpBudgetExceeded",
    "InterpError", "Interpreter", "IntType", "LoopInfo", "LoopNest",
    "MachineState", "Program", "RotateRegisters", "Stmt", "UINT8", "UINT16",
    "UINT32", "UnOp", "VarDecl", "VarRef", "Violation", "array_refs",
    "check_ir", "common_type", "count_statements", "fold_constants",
    "print_expr", "print_program", "print_stmt", "referenced_arrays",
    "referenced_scalars", "run_program", "substitute", "type_from_name",
    "verify_program", "walk_all",
]
