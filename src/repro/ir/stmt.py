"""Statement nodes of the loop-nest IR.

Like expressions, statements are immutable: bodies are tuples and
transformations rebuild the tree.  A program body is a tuple of
statements; there is no separate block node.

``RotateRegisters`` is the one node with no C counterpart.  It models the
parallel register-rotation the paper introduces during scalar replacement
for reuse carried by an outer loop (Figure 1(c)): in hardware all the
shifts happen in a single cycle, so keeping it as a first-class statement
lets the synthesis estimator cost it correctly instead of as a chain of
copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Tuple, Union

from repro.ir.expr import ArrayRef, Expr, VarRef

#: The things an assignment may write to.
LValue = Union[VarRef, ArrayRef]


class Stmt:
    """Base class for all statement nodes."""

    __slots__ = ()

    def walk(self) -> Iterator["Stmt"]:
        """Pre-order traversal of this statement subtree."""
        yield self

    def expressions(self) -> Tuple[Expr, ...]:
        """Expressions evaluated directly by this statement (not nested stmts)."""
        return ()


@dataclass(frozen=True)
class Assign(Stmt):
    """``target = value;`` where target is a scalar or array reference."""

    target: LValue
    value: Expr

    def __post_init__(self):
        if not isinstance(self.target, (VarRef, ArrayRef)):
            raise TypeError(f"cannot assign to {type(self.target).__name__}")

    def expressions(self) -> Tuple[Expr, ...]:
        return (self.target, self.value)

    def __str__(self) -> str:
        return f"{self.target} = {self.value};"


@dataclass(frozen=True)
class If(Stmt):
    """``if (cond) { then_body } else { else_body }``.

    The paper supports loops with control flow but notes the generated
    hardware always performs conditional memory accesses; the synthesis
    estimator schedules both arms and the interpreter takes one.
    """

    cond: Expr
    then_body: Tuple[Stmt, ...]
    else_body: Tuple[Stmt, ...] = ()

    def walk(self) -> Iterator[Stmt]:
        yield self
        for stmt in self.then_body + self.else_body:
            yield from stmt.walk()

    def expressions(self) -> Tuple[Expr, ...]:
        return (self.cond,)

    def __str__(self) -> str:
        return f"if ({self.cond}) {{ ... }}"


@dataclass(frozen=True)
class For(Stmt):
    """A counted loop ``for (var = lower; var < upper; var += step)``.

    Bounds and step are compile-time constants, matching the paper's
    restriction (Section 2.4): "The loop bounds must be constant."
    ``upper`` is exclusive.  ``step`` must be positive; loop normalization
    (:mod:`repro.transform.normalize`) rewrites strided loops to step 1
    when needed for downstream analyses.
    """

    var: str
    lower: int
    upper: int
    step: int
    body: Tuple[Stmt, ...]
    #: Source position of the ``for`` keyword, threaded through by the
    #: frontend for diagnostics.  Excluded from equality/hash so printer
    #: round-trips and transform rewrites compare structurally; loops
    #: built programmatically keep the 0 sentinel ("no location").
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)

    def __post_init__(self):
        if self.step <= 0:
            raise ValueError(f"loop {self.var}: step must be positive, got {self.step}")

    @property
    def location(self) -> "str | None":
        """``"line:column"`` when the frontend recorded one, else None."""
        if self.line:
            return f"{self.line}:{self.column}"
        return None

    @property
    def trip_count(self) -> int:
        """Number of iterations the loop executes."""
        if self.upper <= self.lower:
            return 0
        return (self.upper - self.lower + self.step - 1) // self.step

    def iteration_values(self) -> range:
        """The values the index variable takes, as a range object."""
        return range(self.lower, self.upper, self.step)

    def walk(self) -> Iterator[Stmt]:
        yield self
        for stmt in self.body:
            yield from stmt.walk()

    def __str__(self) -> str:
        incr = f"{self.var}++" if self.step == 1 else f"{self.var} += {self.step}"
        return f"for ({self.var} = {self.lower}; {self.var} < {self.upper}; {incr}) {{ ... }}"


@dataclass(frozen=True)
class RotateRegisters(Stmt):
    """Rotate a register file: ``(r0, r1, ..., rn) <- (r1, ..., rn, r0)``.

    Introduced by scalar replacement for outer-loop reuse.  All moves
    happen simultaneously (a barrel shift in hardware, a tuple assignment
    in the interpreter).
    """

    registers: Tuple[str, ...]

    def __post_init__(self):
        if len(self.registers) < 2:
            raise ValueError("register rotation needs at least two registers")

    def __str__(self) -> str:
        names = ", ".join(self.registers)
        return f"rotate_registers({names});"


def walk_all(body: Tuple[Stmt, ...]) -> Iterator[Stmt]:
    """Pre-order traversal over a statement sequence."""
    for stmt in body:
        yield from stmt.walk()


def count_statements(body: Tuple[Stmt, ...]) -> int:
    """Total number of statement nodes in a sequence, including nested ones."""
    return sum(1 for _ in walk_all(body))
