"""Expression nodes of the loop-nest IR.

Expressions are immutable; transformations build new trees rather than
mutating in place, which keeps sharing safe and makes the interpreter and
printers straightforward.  The node set is deliberately small — the C
subset the paper accepts needs integer arithmetic, comparisons, boolean
connectives, and array references with affine subscripts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.ir.types import INT32, BOOL, IntType

# Binary operators, grouped by the hardware resource class they bind to in
# behavioral synthesis.  The estimator keys its operator library on these
# exact strings.
ARITH_OPS = ("+", "-", "*", "/", "%")
SHIFT_OPS = ("<<", ">>")
BITWISE_OPS = ("&", "|", "^")
COMPARE_OPS = ("<", "<=", ">", ">=", "==", "!=")
LOGICAL_OPS = ("&&", "||")
BINARY_OPS = ARITH_OPS + SHIFT_OPS + BITWISE_OPS + COMPARE_OPS + LOGICAL_OPS
UNARY_OPS = ("-", "!", "~")

_COMMUTATIVE = {"+", "*", "&", "|", "^", "==", "!=", "&&", "||"}


class Expr:
    """Base class for all expression nodes."""

    __slots__ = ()

    def children(self) -> Tuple["Expr", ...]:
        """Immediate sub-expressions, left to right."""
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of this expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class IntLit(Expr):
    """An integer literal with an explicit type."""

    value: int
    type: IntType = INT32

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VarRef(Expr):
    """A reference to a scalar variable or a loop index variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayRef(Expr):
    """A subscripted reference to an array variable, e.g. ``S[i + j + 1]``.

    Subscripts are ordinary expressions; the affine analysis
    (:mod:`repro.analysis.affine`) decides whether they fall in the
    domain the paper's transformations require.
    """

    array: str
    indices: Tuple[Expr, ...]

    def __post_init__(self):
        if not self.indices:
            raise ValueError(f"array reference to {self.array!r} needs at least one subscript")

    def children(self) -> Tuple[Expr, ...]:
        return self.indices

    def __str__(self) -> str:
        subs = "".join(f"[{index}]" for index in self.indices)
        return f"{self.array}{subs}"


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation.  ``op`` must be one of :data:`BINARY_OPS`."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary operator {self.op!r}")

    @property
    def is_commutative(self) -> bool:
        return self.op in _COMMUTATIVE

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary operation.  ``op`` must be one of :data:`UNARY_OPS`."""

    op: str
    operand: Expr

    def __post_init__(self):
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary operator {self.op!r}")

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class Call(Expr):
    """A call to one of the supported intrinsics (abs, min, max).

    The paper's kernels (e.g. Sobel edge detection) need an absolute
    value; behavioral synthesis maps these to small dedicated datapath
    blocks, so the IR keeps them as calls rather than lowering to
    control flow.
    """

    INTRINSICS = ("abs", "min", "max")

    name: str
    args: Tuple[Expr, ...]

    def __post_init__(self):
        if self.name not in self.INTRINSICS:
            raise ValueError(f"unknown intrinsic {self.name!r}; supported: {self.INTRINSICS}")
        arity = 1 if self.name == "abs" else 2
        if len(self.args) != arity:
            raise ValueError(f"{self.name} expects {arity} argument(s), got {len(self.args)}")

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


def substitute(expr: Expr, bindings: Mapping[str, Expr]) -> Expr:
    """Return ``expr`` with every :class:`VarRef` named in ``bindings`` replaced.

    Used by loop unrolling (``i`` → ``i + k``) and by scalar replacement
    (array reference → register reference is handled separately because it
    rewrites :class:`ArrayRef` nodes, not :class:`VarRef` nodes).
    """
    if isinstance(expr, VarRef):
        return bindings.get(expr.name, expr)
    if isinstance(expr, IntLit):
        return expr
    if isinstance(expr, ArrayRef):
        return ArrayRef(expr.array, tuple(substitute(e, bindings) for e in expr.indices))
    if isinstance(expr, BinOp):
        return BinOp(expr.op, substitute(expr.left, bindings), substitute(expr.right, bindings))
    if isinstance(expr, UnOp):
        return UnOp(expr.op, substitute(expr.operand, bindings))
    if isinstance(expr, Call):
        return Call(expr.name, tuple(substitute(a, bindings) for a in expr.args))
    raise TypeError(f"unknown expression node: {type(expr).__name__}")


def referenced_scalars(expr: Expr) -> frozenset:
    """Names of all scalar variables read anywhere in ``expr``."""
    return frozenset(node.name for node in expr.walk() if isinstance(node, VarRef))


def referenced_arrays(expr: Expr) -> frozenset:
    """Names of all arrays referenced anywhere in ``expr``."""
    return frozenset(node.array for node in expr.walk() if isinstance(node, ArrayRef))


def array_refs(expr: Expr) -> Tuple[ArrayRef, ...]:
    """All array references in ``expr``, in pre-order (duplicates kept)."""
    return tuple(node for node in expr.walk() if isinstance(node, ArrayRef))


def fold_constants(expr: Expr) -> Expr:
    """Evaluate constant sub-expressions.

    Unrolling produces subscripts like ``(i + 0)`` and ``((i + 1) + 1)``;
    folding them keeps generated code readable and lets uniformly generated
    set detection compare normalized subscripts.  Only exact integer
    arithmetic is folded — division by zero and friends are left in place
    for the interpreter to report at run time.
    """
    if isinstance(expr, (IntLit, VarRef)):
        return expr
    if isinstance(expr, ArrayRef):
        return ArrayRef(expr.array, tuple(fold_constants(e) for e in expr.indices))
    if isinstance(expr, UnOp):
        operand = fold_constants(expr.operand)
        if isinstance(operand, IntLit) and expr.op == "-":
            return IntLit(-operand.value, operand.type)
        if isinstance(operand, IntLit) and expr.op == "!":
            return IntLit(0 if operand.value else 1, BOOL)
        if isinstance(operand, IntLit) and expr.op == "~":
            return IntLit(~operand.value, operand.type)
        return UnOp(expr.op, operand)
    if isinstance(expr, Call):
        args = tuple(fold_constants(a) for a in expr.args)
        if all(isinstance(a, IntLit) for a in args):
            values = [a.value for a in args]
            if expr.name == "abs":
                return IntLit(abs(values[0]), args[0].type)
            if expr.name == "min":
                return IntLit(min(values), args[0].type)
            if expr.name == "max":
                return IntLit(max(values), args[0].type)
        return Call(expr.name, args)
    if isinstance(expr, BinOp):
        left = fold_constants(expr.left)
        right = fold_constants(expr.right)
        folded = _fold_binop(expr.op, left, right)
        return folded if folded is not None else BinOp(expr.op, left, right)
    raise TypeError(f"unknown expression node: {type(expr).__name__}")


def _fold_binop(op: str, left: Expr, right: Expr) -> Optional[Expr]:
    """Fold a binary op over literals, plus the easy algebraic identities."""
    if isinstance(left, IntLit) and isinstance(right, IntLit):
        lv, rv = left.value, right.value
        if op in ("/", "%") and rv == 0:
            return None  # leave for the interpreter to report
        if op in ("<<", ">>") and rv < 0:
            return None  # undefined in C; leave unfolded
        table = {
            "+": lambda: lv + rv, "-": lambda: lv - rv, "*": lambda: lv * rv,
            "/": lambda: _c_div(lv, rv), "%": lambda: _c_mod(lv, rv),
            "<<": lambda: lv << rv, ">>": lambda: lv >> rv,
            "&": lambda: lv & rv, "|": lambda: lv | rv, "^": lambda: lv ^ rv,
            "<": lambda: int(lv < rv), "<=": lambda: int(lv <= rv),
            ">": lambda: int(lv > rv), ">=": lambda: int(lv >= rv),
            "==": lambda: int(lv == rv), "!=": lambda: int(lv != rv),
            "&&": lambda: int(bool(lv) and bool(rv)),
            "||": lambda: int(bool(lv) or bool(rv)),
        }
        result_type = BOOL if op in COMPARE_OPS + LOGICAL_OPS else left.type
        return IntLit(table[op](), result_type)
    # x + 0, 0 + x, x - 0, x * 1, 1 * x, x * 0, 0 * x
    if op == "+" and isinstance(right, IntLit) and right.value == 0:
        return left
    if op == "+" and isinstance(left, IntLit) and left.value == 0:
        return right
    if op == "-" and isinstance(right, IntLit) and right.value == 0:
        return left
    if op == "*" and isinstance(right, IntLit) and right.value == 1:
        return left
    if op == "*" and isinstance(left, IntLit) and left.value == 1:
        return right
    if op == "*" and isinstance(right, IntLit) and right.value == 0:
        return IntLit(0, right.type)
    if op == "*" and isinstance(left, IntLit) and left.value == 0:
        return IntLit(0, left.type)
    return None


def _c_div(a: int, b: int) -> int:
    """C-style truncating division (rounds toward zero)."""
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _c_mod(a: int, b: int) -> int:
    """C-style remainder: ``a == b * _c_div(a, b) + _c_mod(a, b)``."""
    return a - b * _c_div(a, b)
