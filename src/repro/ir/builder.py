"""Ergonomic constructors for building IR by hand.

Tests, kernels, and examples use these helpers instead of spelling out
dataclass constructors.  ``ex()`` coerces Python ints and strings into
literals and variable references, so ``add("i", 1)`` reads like the C it
represents.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

from repro.ir.expr import ArrayRef, BinOp, Call, Expr, IntLit, UnOp, VarRef
from repro.ir.stmt import Assign, For, If, RotateRegisters, Stmt
from repro.ir.symbols import Program, VarDecl
from repro.ir.types import INT32, IntType

ExprLike = Union[Expr, int, str]


def ex(value: ExprLike) -> Expr:
    """Coerce an int to a literal, a str to a variable reference."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject to avoid surprises
        raise TypeError("pass 0/1, not bool, when building IR literals")
    if isinstance(value, int):
        return IntLit(value)
    if isinstance(value, str):
        return VarRef(value)
    raise TypeError(f"cannot build an expression from {type(value).__name__}")


def lit(value: int, type: IntType = INT32) -> IntLit:
    return IntLit(value, type)


def var(name: str) -> VarRef:
    return VarRef(name)


def arr(array: str, *indices: ExprLike) -> ArrayRef:
    return ArrayRef(array, tuple(ex(i) for i in indices))


def binop(op: str, left: ExprLike, right: ExprLike) -> BinOp:
    return BinOp(op, ex(left), ex(right))


def add(left: ExprLike, right: ExprLike) -> BinOp:
    return binop("+", left, right)


def sub(left: ExprLike, right: ExprLike) -> BinOp:
    return binop("-", left, right)


def mul(left: ExprLike, right: ExprLike) -> BinOp:
    return binop("*", left, right)


def neg(operand: ExprLike) -> UnOp:
    return UnOp("-", ex(operand))


def call(name: str, *args: ExprLike) -> Call:
    return Call(name, tuple(ex(a) for a in args))


def assign(target: Union[VarRef, ArrayRef, str], value: ExprLike) -> Assign:
    if isinstance(target, str):
        target = VarRef(target)
    return Assign(target, ex(value))


def loop(index_var: str, lower: int, upper: int, body: Sequence[Stmt], step: int = 1) -> For:
    return For(index_var, lower, upper, step, tuple(body))


def if_(cond: ExprLike, then_body: Sequence[Stmt], else_body: Sequence[Stmt] = ()) -> If:
    return If(ex(cond), tuple(then_body), tuple(else_body))


def rotate(*registers: str) -> RotateRegisters:
    return RotateRegisters(tuple(registers))


def decl(name: str, type: IntType = INT32, dims: Tuple[int, ...] = ()) -> VarDecl:
    return VarDecl(name, type, dims)


def program(name: str, decls: Sequence[VarDecl], body: Sequence[Stmt]) -> Program:
    return Program(name, tuple(decls), tuple(body))
