"""Loop-nest façade over a Program.

The paper's unit of compilation is a single loop nest (Section 2.4).
:class:`LoopNest` locates that nest inside a program, exposes the loops
outermost-first, and provides the derived quantities every later stage
needs: index variables, trip counts, the statements of the innermost
body, and the full iteration-space size.

A nest here is *near-perfect*: each loop body may contain straight-line
statements before/after at most one nested loop (scalar replacement
introduces exactly that shape — register loads before the inner loop,
spills after it, Figure 1(c)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import AnalysisError
from repro.ir.stmt import Assign, For, If, RotateRegisters, Stmt
from repro.ir.symbols import Program


@dataclass(frozen=True)
class LoopInfo:
    """One loop of the nest, with its depth (0 = outermost)."""

    loop: For
    depth: int

    @property
    def var(self) -> str:
        return self.loop.var

    @property
    def trip_count(self) -> int:
        return self.loop.trip_count


class LoopNest:
    """A view of the (unique) loop nest inside a program body.

    Raises :class:`AnalysisError` if the program has no loop, more than
    one top-level loop, or a body with two sibling loops at some level —
    all shapes outside the paper's input domain.
    """

    def __init__(self, program: Program):
        self.program = program
        self._loops: List[LoopInfo] = []
        top = [stmt for stmt in program.body if isinstance(stmt, For)]
        if not top:
            raise AnalysisError(f"program {program.name!r} contains no loop nest")
        if len(top) > 1:
            raise AnalysisError(
                f"program {program.name!r} has {len(top)} top-level loops; expected one nest"
            )
        current: Optional[For] = top[0]
        depth = 0
        while current is not None:
            self._loops.append(LoopInfo(current, depth))
            inner = [stmt for stmt in current.body if isinstance(stmt, For)]
            if len(inner) > 1:
                raise AnalysisError(
                    f"loop {current.var!r} contains {len(inner)} sibling loops; "
                    "the nest must be near-perfect"
                )
            current = inner[0] if inner else None
            depth += 1

    # -- structure ----------------------------------------------------------

    @property
    def loops(self) -> Tuple[LoopInfo, ...]:
        """All loops, outermost first."""
        return tuple(self._loops)

    @property
    def depth(self) -> int:
        return len(self._loops)

    @property
    def index_vars(self) -> Tuple[str, ...]:
        return tuple(info.var for info in self._loops)

    @property
    def trip_counts(self) -> Tuple[int, ...]:
        return tuple(info.trip_count for info in self._loops)

    @property
    def outermost(self) -> For:
        return self._loops[0].loop

    @property
    def innermost(self) -> For:
        return self._loops[-1].loop

    def loop_at(self, depth: int) -> For:
        return self._loops[depth].loop

    def loop_named(self, var: str) -> LoopInfo:
        for info in self._loops:
            if info.var == var:
                return info
        raise AnalysisError(f"no loop with index variable {var!r} in the nest")

    def depth_of(self, var: str) -> int:
        return self.loop_named(var).depth

    @property
    def innermost_body(self) -> Tuple[Stmt, ...]:
        """Statements of the innermost loop body."""
        return self.innermost.body

    def iteration_space_size(self) -> int:
        """Total number of innermost-body executions."""
        size = 1
        for info in self._loops:
            size *= info.trip_count
        return size

    def is_perfect(self) -> bool:
        """True if every non-innermost body contains only its nested loop."""
        for info in self._loops[:-1]:
            if len(info.loop.body) != 1:
                return False
        return True

    # -- statement access ---------------------------------------------------

    def body_statements(self) -> Iterator[Stmt]:
        """Every statement inside the nest, pre-order, excluding the loops."""
        for stmt in self.outermost.walk():
            if not isinstance(stmt, For):
                yield stmt

    def assignments(self) -> Tuple[Assign, ...]:
        """All assignment statements anywhere in the nest."""
        return tuple(s for s in self.body_statements() if isinstance(s, Assign))

    def has_control_flow(self) -> bool:
        """True if any If statement appears in the nest."""
        return any(isinstance(s, If) for s in self.body_statements())

    def max_unroll_factors(self) -> Tuple[int, ...]:
        """Full-unroll bound for each loop: its trip count (Umax in the paper)."""
        return self.trip_counts

    def __repr__(self) -> str:
        dims = " x ".join(
            f"{info.var}:{info.trip_count}" for info in self._loops
        )
        return f"LoopNest({self.program.name}: {dims})"
