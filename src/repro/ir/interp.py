"""Reference interpreter for the loop-nest IR.

The interpreter is the semantic oracle for the whole reproduction:
property-based tests run a program before and after each transformation
(unroll-and-jam, scalar replacement, peeling, tiling, data layout) and
check the observable memory state is identical.  The original DEFACTO
system had no such oracle — correctness rested on the transformation
proofs — so this is a strict addition.

Values wrap at their declared bit width (via :meth:`IntType.wrap`), which
matches what a synthesized fixed-width datapath computes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ReproError
from repro.ir.expr import (
    ArrayRef, BinOp, Call, Expr, IntLit, UnOp, VarRef,
    COMPARE_OPS, LOGICAL_OPS,
)
from repro.ir.expr import _c_div, _c_mod  # shared C division semantics
from repro.ir.stmt import Assign, For, If, RotateRegisters, Stmt
from repro.ir.symbols import Program, VarDecl
from repro.ir.types import BOOL, INT32, IntType


class InterpError(ReproError):
    """A run-time fault: out-of-bounds access, division by zero, etc."""

    kind = "interp"


class InterpBudgetExceeded(InterpError):
    """Execution ran past the interpreter's ``max_steps`` budget.

    Distinct from other interpreter faults: the program may be perfectly
    well-formed, just too big for the budget — callers that use the
    interpreter as a semantics oracle (the differential fuzzer) treat
    this as "skip the input", not as a bug.  ``steps`` carries the
    budget that was exhausted.
    """

    kind = "interp_budget"

    def __init__(self, message: str, steps: int = 0):
        self.steps = steps
        super().__init__(message)


@dataclass
class ArrayStorage:
    """Row-major storage for one array variable."""

    decl: VarDecl
    cells: List[int]

    @classmethod
    def zeros(cls, decl: VarDecl) -> "ArrayStorage":
        return cls(decl, [0] * decl.element_count)

    @classmethod
    def from_values(cls, decl: VarDecl, values: Sequence[int]) -> "ArrayStorage":
        if len(values) != decl.element_count:
            raise InterpError(
                f"array {decl.name}: expected {decl.element_count} values, got {len(values)}"
            )
        return cls(decl, [decl.type.wrap(int(v)) for v in values])

    def flat_index(self, indices: Sequence[int]) -> int:
        """Row-major linearization with bounds checking."""
        if len(indices) != len(self.decl.dims):
            raise InterpError(
                f"array {self.decl.name}: {len(self.decl.dims)} subscripts required, "
                f"got {len(indices)}"
            )
        flat = 0
        for index, extent in zip(indices, self.decl.dims):
            if not 0 <= index < extent:
                raise InterpError(
                    f"array {self.decl.name}: index {index} out of bounds [0, {extent})"
                )
            flat = flat * extent + index
        return flat

    def load(self, indices: Sequence[int]) -> int:
        return self.cells[self.flat_index(indices)]

    def store(self, indices: Sequence[int], value: int) -> None:
        self.cells[self.flat_index(indices)] = self.decl.type.wrap(value)


@dataclass
class MachineState:
    """Scalars and arrays during (and after) an execution.

    ``memory_reads``/``memory_writes`` count array accesses executed —
    used by tests to confirm scalar replacement actually removes memory
    traffic, not just that results agree.
    """

    scalars: Dict[str, int] = field(default_factory=dict)
    arrays: Dict[str, ArrayStorage] = field(default_factory=dict)
    memory_reads: int = 0
    memory_writes: int = 0

    def snapshot_arrays(self) -> Dict[str, Tuple[int, ...]]:
        """An immutable copy of all array contents, for equality checks."""
        return {name: tuple(storage.cells) for name, storage in self.arrays.items()}


class Interpreter:
    """Executes a :class:`Program` over concrete inputs.

    Usage::

        result = Interpreter(program).run({"S": s_values, "C": c_values})
        result.arrays["D"].cells

    ``inputs`` maps array names to flat initial contents and scalar names
    to initial values; anything not supplied starts at zero.
    """

    def __init__(self, program: Program, max_steps: int = 50_000_000):
        self.program = program
        self.max_steps = max_steps

    def run(self, inputs: Optional[Mapping[str, Union[int, Sequence[int]]]] = None) -> MachineState:
        state = self._initial_state(inputs or {})
        self._steps = 0
        for stmt in self.program.body:
            self._exec(stmt, state)
        return state

    def _initial_state(self, inputs: Mapping[str, Union[int, Sequence[int]]]) -> MachineState:
        state = MachineState()
        for decl in self.program.decls:
            if decl.is_array:
                if decl.name in inputs:
                    values = inputs[decl.name]
                    if isinstance(values, int):
                        raise InterpError(f"array {decl.name} needs a sequence, got int")
                    state.arrays[decl.name] = ArrayStorage.from_values(decl, values)
                else:
                    state.arrays[decl.name] = ArrayStorage.zeros(decl)
            else:
                raw = inputs.get(decl.name, 0)
                if not isinstance(raw, int):
                    raise InterpError(f"scalar {decl.name} needs an int, got sequence")
                state.scalars[decl.name] = decl.type.wrap(raw)
        unknown = set(inputs) - {d.name for d in self.program.decls}
        if unknown:
            raise InterpError(f"inputs for undeclared variables: {sorted(unknown)}")
        return state

    # -- statements --------------------------------------------------------

    def _exec(self, stmt: Stmt, state: MachineState) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise InterpBudgetExceeded(
                f"execution exceeded {self.max_steps} steps; runaway loop?",
                steps=self.max_steps,
            )
        if isinstance(stmt, Assign):
            value = self._eval(stmt.value, state)
            self._store(stmt.target, value, state)
        elif isinstance(stmt, If):
            branch = stmt.then_body if self._eval(stmt.cond, state) else stmt.else_body
            for inner in branch:
                self._exec(inner, state)
        elif isinstance(stmt, For):
            for index_value in stmt.iteration_values():
                state.scalars[stmt.var] = index_value
                for inner in stmt.body:
                    self._exec(inner, state)
        elif isinstance(stmt, RotateRegisters):
            values = [self._scalar(name, state) for name in stmt.registers]
            rotated = values[1:] + values[:1]
            for name, value in zip(stmt.registers, rotated):
                state.scalars[name] = value
        else:
            raise InterpError(f"unknown statement node: {type(stmt).__name__}")

    def _store(self, target, value: int, state: MachineState) -> None:
        if isinstance(target, VarRef):
            decl = self._scalar_decl(target.name)
            wrapped = decl.type.wrap(value) if decl else INT32.wrap(value)
            state.scalars[target.name] = wrapped
        elif isinstance(target, ArrayRef):
            indices = [self._eval(index, state) for index in target.indices]
            storage = self._array(target.array, state)
            storage.store(indices, value)
            state.memory_writes += 1
        else:
            raise InterpError(f"cannot store to {type(target).__name__}")

    # -- expressions --------------------------------------------------------

    def _eval(self, expr: Expr, state: MachineState) -> int:
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, VarRef):
            return self._scalar(expr.name, state)
        if isinstance(expr, ArrayRef):
            indices = [self._eval(index, state) for index in expr.indices]
            storage = self._array(expr.array, state)
            state.memory_reads += 1
            return storage.load(indices)
        if isinstance(expr, UnOp):
            operand = self._eval(expr.operand, state)
            if expr.op == "-":
                return -operand
            if expr.op == "!":
                return 0 if operand else 1
            if expr.op == "~":
                return ~operand
            raise InterpError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, Call):
            values = [self._eval(a, state) for a in expr.args]
            if expr.name == "abs":
                return abs(values[0])
            if expr.name == "min":
                return min(values)
            if expr.name == "max":
                return max(values)
            raise InterpError(f"unknown intrinsic {expr.name!r}")
        if isinstance(expr, BinOp):
            return self._eval_binop(expr, state)
        raise InterpError(f"unknown expression node: {type(expr).__name__}")

    def _eval_binop(self, expr: BinOp, state: MachineState) -> int:
        # Short-circuit the logical connectives before evaluating the right side.
        if expr.op == "&&":
            return int(bool(self._eval(expr.left, state)) and bool(self._eval(expr.right, state)))
        if expr.op == "||":
            return int(bool(self._eval(expr.left, state)) or bool(self._eval(expr.right, state)))
        left = self._eval(expr.left, state)
        right = self._eval(expr.right, state)
        if expr.op in ("/", "%") and right == 0:
            raise InterpError(f"division by zero evaluating {expr}")
        table = {
            "+": lambda: left + right,
            "-": lambda: left - right,
            "*": lambda: left * right,
            "/": lambda: _c_div(left, right),
            "%": lambda: _c_mod(left, right),
            "<<": lambda: left << (right & 63),
            ">>": lambda: left >> (right & 63),
            "&": lambda: left & right,
            "|": lambda: left | right,
            "^": lambda: left ^ right,
            "<": lambda: int(left < right),
            "<=": lambda: int(left <= right),
            ">": lambda: int(left > right),
            ">=": lambda: int(left >= right),
            "==": lambda: int(left == right),
            "!=": lambda: int(left != right),
        }
        return table[expr.op]()

    # -- lookups ------------------------------------------------------------

    def _scalar(self, name: str, state: MachineState) -> int:
        if name not in state.scalars:
            # Loop index variables and compiler temporaries materialize on
            # first write; a read before any write is a program bug.
            raise InterpError(f"read of uninitialized scalar {name!r}")
        return state.scalars[name]

    def _scalar_decl(self, name: str) -> Optional[VarDecl]:
        for decl in self.program.decls:
            if decl.name == name and not decl.is_array:
                return decl
        return None

    def _array(self, name: str, state: MachineState) -> ArrayStorage:
        try:
            return state.arrays[name]
        except KeyError:
            raise InterpError(f"reference to undeclared array {name!r}") from None


def run_program(
    program: Program, inputs: Optional[Mapping[str, Union[int, Sequence[int]]]] = None
) -> MachineState:
    """One-shot convenience wrapper around :class:`Interpreter`."""
    return Interpreter(program).run(inputs)
