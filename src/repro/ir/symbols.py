"""Variable declarations, symbol tables, and the top-level Program node.

A :class:`Program` is what the frontend produces and every later stage
consumes: a set of declarations plus a statement sequence whose
interesting part is a single loop nest (the paper maps one loop nest at a
time to hardware).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import SemanticError
from repro.ir.expr import ArrayRef, VarRef
from repro.ir.stmt import Assign, Stmt, walk_all
from repro.ir.types import INT32, IntType


@dataclass(frozen=True)
class VarDecl:
    """A scalar or array variable declaration.

    Attributes:
        name: C identifier.
        type: element type (scalars: the variable's own type).
        dims: array dimension extents, empty for scalars.  Constant, per
            the paper's input restrictions.
    """

    name: str
    type: IntType = INT32
    dims: Tuple[int, ...] = ()

    def __post_init__(self):
        for extent in self.dims:
            if extent <= 0:
                raise ValueError(f"array {self.name}: dimension extent must be positive")

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def element_count(self) -> int:
        """Total number of elements (1 for scalars)."""
        count = 1
        for extent in self.dims:
            count *= extent
        return count

    @property
    def size_bits(self) -> int:
        """Total storage footprint in bits."""
        return self.element_count * self.type.width

    def __str__(self) -> str:
        subs = "".join(f"[{d}]" for d in self.dims)
        return f"{self.type} {self.name}{subs};"


@dataclass(frozen=True)
class Program:
    """A compilation unit: declarations plus a statement sequence.

    The frontend guarantees every name referenced in ``body`` is declared
    (or is a loop index variable).  Transformations that introduce
    registers add declarations via :meth:`with_decl`.
    """

    name: str
    decls: Tuple[VarDecl, ...]
    body: Tuple[Stmt, ...]

    def __post_init__(self):
        seen = set()
        for decl in self.decls:
            if decl.name in seen:
                raise SemanticError(f"duplicate declaration of {decl.name!r}")
            seen.add(decl.name)

    @property
    def symbol_table(self) -> Dict[str, VarDecl]:
        return {decl.name: decl for decl in self.decls}

    def decl(self, name: str) -> VarDecl:
        """Look up a declaration, raising :class:`SemanticError` if missing."""
        for candidate in self.decls:
            if candidate.name == name:
                return candidate
        raise SemanticError(f"{name!r} is not declared in program {self.name!r}")

    def has_decl(self, name: str) -> bool:
        return any(decl.name == name for decl in self.decls)

    def with_decl(self, *new_decls: VarDecl) -> "Program":
        """A copy of this program with extra declarations appended."""
        return replace(self, decls=self.decls + tuple(new_decls))

    def with_body(self, body: Tuple[Stmt, ...]) -> "Program":
        """A copy of this program with a replaced statement sequence."""
        return replace(self, body=tuple(body))

    def arrays(self) -> Tuple[VarDecl, ...]:
        """All array declarations, in declaration order."""
        return tuple(decl for decl in self.decls if decl.is_array)

    def scalars(self) -> Tuple[VarDecl, ...]:
        """All scalar declarations, in declaration order."""
        return tuple(decl for decl in self.decls if not decl.is_array)

    def statements(self) -> Iterator[Stmt]:
        """Pre-order traversal of every statement in the program."""
        return walk_all(self.body)

    def written_arrays(self) -> frozenset:
        """Names of arrays that appear as assignment targets anywhere."""
        names = set()
        for stmt in self.statements():
            if isinstance(stmt, Assign) and isinstance(stmt.target, ArrayRef):
                names.add(stmt.target.array)
        return frozenset(names)

    def read_arrays(self) -> frozenset:
        """Names of arrays read anywhere (including in subscripts of writes)."""
        names = set()
        for stmt in self.statements():
            for expr in stmt.expressions():
                for node in expr.walk():
                    if isinstance(node, ArrayRef) and node is not getattr(stmt, "target", None):
                        names.add(node.array)
        return frozenset(names)
