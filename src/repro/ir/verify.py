"""IR invariant checking.

The transformation pipeline rewrites programs wholesale — unroll-and-jam
clones bodies, scalar replacement invents registers, data layout renames
arrays — and a bug in any rewrite can produce a tree that *looks* like a
program but violates the IR's basic well-formedness rules.  This module
makes those rules explicit and checkable after every transform:

* **symbol scoping** — every scalar reference is a declared scalar or an
  in-scope loop index; every array reference names a declared array;
* **reference shape** — arrays are subscripted with exactly their
  declared arity, scalars are never subscripted, assignments never
  target a loop index;
* **loop sanity** — index variables are unique along any nest path, are
  not also declared variables, and iteration spaces are non-empty
  (``step > 0`` is enforced by the node itself);
* **node closure** — only known statement/expression node types appear;
* optionally, **affine accesses** — each subscript is a linear function
  of the enclosing loop indices (the paper's Section 2.4 input
  restriction).  This check is opt-in because the custom data layout
  legitimately introduces ``/`` and ``%`` into subscripts (static
  residue banking), so it only holds *before* layout.

:func:`verify_program` collects :class:`Violation` records;
:func:`check_ir` turns a non-empty list into a typed
:class:`~repro.errors.VerificationError` carrying kernel/stage context,
which the fail-soft DSE records as an infeasible point diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import AnalysisError, VerificationError
from repro.ir.expr import ArrayRef, BinOp, Call, Expr, IntLit, UnOp, VarRef
from repro.ir.stmt import Assign, For, If, RotateRegisters, Stmt
from repro.ir.symbols import Program


@dataclass(frozen=True)
class Violation:
    """One invariant violation: a stable rule slug plus a message."""

    rule: str
    message: str
    #: index variable of the nearest enclosing loop, when inside one.
    loop: Optional[str] = None

    def __str__(self) -> str:
        where = f" (in loop {self.loop!r})" if self.loop else ""
        return f"{self.rule}: {self.message}{where}"


class _Verifier:
    """Single pass over a program, collecting every violation."""

    def __init__(self, program: Program, require_affine: bool):
        self.program = program
        self.symbols = program.symbol_table
        self.require_affine = require_affine
        self.violations: List[Violation] = []

    def run(self) -> List[Violation]:
        for stmt in self.program.body:
            self._stmt(stmt, loop_vars=())
        return self.violations

    def _flag(self, rule: str, message: str, loop_vars: Tuple[str, ...]) -> None:
        self.violations.append(
            Violation(rule, message, loop=loop_vars[-1] if loop_vars else None)
        )

    # -- statements ----------------------------------------------------------

    def _stmt(self, stmt: Stmt, loop_vars: Tuple[str, ...]) -> None:
        if isinstance(stmt, Assign):
            self._assign(stmt, loop_vars)
        elif isinstance(stmt, If):
            self._expr(stmt.cond, loop_vars)
            for inner in stmt.then_body + stmt.else_body:
                self._stmt(inner, loop_vars)
        elif isinstance(stmt, For):
            self._for(stmt, loop_vars)
        elif isinstance(stmt, RotateRegisters):
            self._rotate(stmt, loop_vars)
        else:
            self._flag(
                "unknown-stmt",
                f"unknown statement node {type(stmt).__name__}", loop_vars,
            )

    def _for(self, loop: For, loop_vars: Tuple[str, ...]) -> None:
        if loop.var in loop_vars:
            self._flag(
                "index-shadowing",
                f"loop variable {loop.var!r} shadows an enclosing loop's index",
                loop_vars,
            )
        if loop.var in self.symbols:
            self._flag(
                "index-declared",
                f"loop variable {loop.var!r} is also a declared variable",
                loop_vars,
            )
        if loop.trip_count < 1:
            self._flag(
                "empty-loop",
                f"loop {loop.var!r} has an empty iteration space "
                f"[{loop.lower}, {loop.upper})",
                loop_vars,
            )
        inner = loop_vars + (loop.var,)
        for stmt in loop.body:
            self._stmt(stmt, inner)

    def _assign(self, stmt: Assign, loop_vars: Tuple[str, ...]) -> None:
        target = stmt.target
        if isinstance(target, VarRef):
            if target.name in loop_vars:
                self._flag(
                    "index-assigned",
                    f"assignment to loop index variable {target.name!r}",
                    loop_vars,
                )
            else:
                decl = self.symbols.get(target.name)
                if decl is None:
                    self._flag(
                        "undeclared-var",
                        f"assignment to undeclared variable {target.name!r}",
                        loop_vars,
                    )
                elif decl.is_array:
                    self._flag(
                        "array-as-scalar",
                        f"array {target.name!r} assigned without subscripts",
                        loop_vars,
                    )
        elif isinstance(target, ArrayRef):
            self._array_ref(target, loop_vars)
        else:
            self._flag(
                "unknown-lvalue",
                f"cannot assign to {type(target).__name__}", loop_vars,
            )
        self._expr(stmt.value, loop_vars)

    def _rotate(self, stmt: RotateRegisters, loop_vars: Tuple[str, ...]) -> None:
        for name in stmt.registers:
            decl = self.symbols.get(name)
            if decl is None:
                self._flag(
                    "undeclared-var",
                    f"rotate_registers names undeclared variable {name!r}",
                    loop_vars,
                )
            elif decl.is_array:
                self._flag(
                    "array-as-scalar",
                    f"rotate_registers names array {name!r}; scalars only",
                    loop_vars,
                )

    # -- expressions ---------------------------------------------------------

    def _expr(self, expr: Expr, loop_vars: Tuple[str, ...]) -> None:
        for node in expr.walk():
            if isinstance(node, VarRef):
                self._var_ref(node, loop_vars)
            elif isinstance(node, ArrayRef):
                self._array_ref(node, loop_vars, recurse=False)
            elif not isinstance(node, (IntLit, BinOp, UnOp, Call)):
                self._flag(
                    "unknown-expr",
                    f"unknown expression node {type(node).__name__}",
                    loop_vars,
                )

    def _var_ref(self, ref: VarRef, loop_vars: Tuple[str, ...]) -> None:
        if ref.name in loop_vars:
            return
        decl = self.symbols.get(ref.name)
        if decl is None:
            self._flag(
                "undeclared-var",
                f"use of undeclared variable {ref.name!r}", loop_vars,
            )
        elif decl.is_array:
            self._flag(
                "array-as-scalar",
                f"array {ref.name!r} used without subscripts", loop_vars,
            )

    def _array_ref(
        self, ref: ArrayRef, loop_vars: Tuple[str, ...], recurse: bool = True
    ) -> None:
        decl = self.symbols.get(ref.array)
        if decl is None:
            self._flag(
                "undeclared-array",
                f"use of undeclared array {ref.array!r}", loop_vars,
            )
        elif not decl.is_array:
            self._flag(
                "scalar-subscripted",
                f"scalar {ref.array!r} used with subscripts", loop_vars,
            )
        elif len(ref.indices) != len(decl.dims):
            self._flag(
                "subscript-arity",
                f"array {ref.array!r} has {len(decl.dims)} dimension(s) "
                f"but is referenced with {len(ref.indices)} subscript(s)",
                loop_vars,
            )
        if self.require_affine:
            self._affine(ref, loop_vars)
        if recurse:
            for index in ref.indices:
                self._expr(index, loop_vars)

    def _affine(self, ref: ArrayRef, loop_vars: Tuple[str, ...]) -> None:
        from repro.analysis.affine import linearize
        for position, index in enumerate(ref.indices):
            try:
                linearize(index, loop_vars)
            except AnalysisError as error:
                self._flag(
                    "non-affine-subscript",
                    f"{ref.array}[...] subscript {position} is not affine "
                    f"in the loop indices: {error}",
                    loop_vars,
                )


def verify_program(
    program: Program, *, require_affine: bool = False
) -> List[Violation]:
    """Collect every invariant violation in ``program`` (empty = valid)."""
    return _Verifier(program, require_affine).run()


def check_ir(
    program: Program,
    *,
    require_affine: bool = False,
    stage: Optional[str] = None,
    kernel: Optional[str] = None,
) -> Program:
    """Verify and return ``program``; raise on any violation.

    The raised :class:`~repro.errors.VerificationError` lists every
    violation in its message and carries them structurally on
    ``violations``, plus the ``stage``/``kernel`` context the pipeline
    provides — which is what the DSE layer turns into an
    infeasible-point diagnostic.
    """
    violations = verify_program(program, require_affine=require_affine)
    if violations:
        summary = "; ".join(str(v) for v in violations[:5])
        if len(violations) > 5:
            summary += f"; ... {len(violations) - 5} more"
        raise VerificationError(
            f"IR invariants violated ({len(violations)}): {summary}",
            violations=violations,
            stage=stage,
            kernel=kernel or program.name,
        )
    return program
