"""repro — a reproduction of the DEFACTO design space exploration system.

So, Hall, Diniz: "A Compiler Approach to Fast Hardware Design Space
Exploration in FPGA-based Systems", PLDI 2002.

Quickstart::

    from repro import compile_source, explore, wildstar_pipelined

    program = compile_source(open("fir.c").read(), name="fir")
    result = explore(program, wildstar_pipelined())
    print(result.report())

The packages underneath:

* :mod:`repro.frontend` — C-subset lexer/parser/semantic checker
* :mod:`repro.ir` — loop-nest IR plus a reference interpreter
* :mod:`repro.analysis` — dependence and reuse analyses
* :mod:`repro.transform` — unroll-and-jam, scalar replacement, peeling,
  LICM, normalization, tiling, and the full pipeline
* :mod:`repro.layout` — custom data layout (renaming + memory mapping)
* :mod:`repro.target` — FPGA/memory/board models (WildStar, Virtex)
* :mod:`repro.synthesis` — behavioral synthesis estimation (Monet stand-in)
* :mod:`repro.hdl` — behavioral VHDL backend (SUIF2VHDL stand-in)
* :mod:`repro.dse` — the balance-guided design space exploration
* :mod:`repro.kernels` — the paper's five multimedia kernels
* :mod:`repro.obs` — observability: tracing, metrics, versioned events
* :mod:`repro.service` — the batch exploration engine
* :mod:`repro.server` — the persistent exploration service (`repro serve`)
"""

from repro.dse import (
    DEFAULT_STRATEGY, DesignEvaluation, DesignSpace, ExplorationResult,
    ExploreConfig, SearchOptions, SearchStrategy, StrategySelector,
    explore, get_strategy, register_strategy, select_strategy, strategy_ids,
)
from repro.frontend import compile_source
from repro.obs import MetricsRegistry, ObsConfig, Span, Tracer
from repro.ir import Program, run_program
from repro.kernels import ALL_KERNELS, Kernel, kernel_by_name
from repro.synthesis import Estimate, synthesize
from repro.target import (
    Board, wildstar_nonpipelined, wildstar_pipelined,
)
from repro.transform import (
    CompiledDesign, PipelineOptions, UnrollVector, compile_design,
)
from repro.version import get_version

__version__ = get_version()

__all__ = [
    "ALL_KERNELS", "Board", "CompiledDesign", "DEFAULT_STRATEGY",
    "DesignEvaluation", "DesignSpace", "Estimate", "ExplorationResult",
    "ExploreConfig", "Kernel", "MetricsRegistry", "ObsConfig",
    "PipelineOptions", "Program", "SearchOptions", "SearchStrategy", "Span",
    "StrategySelector", "Tracer", "UnrollVector", "__version__",
    "compile_design", "compile_source", "explore", "get_strategy",
    "kernel_by_name", "register_strategy", "run_program", "select_strategy",
    "strategy_ids", "synthesize", "wildstar_nonpipelined",
    "wildstar_pipelined",
]
