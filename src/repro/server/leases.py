"""Worker leases: the fleet's liveness contract.

A worker that wants shards must first *register*, which grants it a
lease with a fixed TTL, and then keep *renewing* that lease by
heartbeat.  The coordinator never talks to workers — it only watches
the lease table: a worker whose lease expires is presumed dead, and
every shard it held is rehomed to a live worker (see
:mod:`repro.server.fleet`).

This module is deliberately tiny and synchronous: a table of
``worker_id -> Lease`` guarded by the caller's lock (the coordinator
serializes all fleet mutations), driven by an injectable monotonic
clock so chaos tests can expire leases without sleeping.  Journaling
the ``worker_registered`` / ``lease_renewed`` / ``lease_expired``
events is the coordinator's job, not the table's — the table is pure
state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List

#: Default lease TTL; workers heartbeat at TTL/3 so two beats can be
#: lost before the lease lapses.
DEFAULT_LEASE_TTL_S = 10.0


@dataclass
class Lease:
    """One worker's claim to be alive."""

    worker_id: str
    expires_at: float
    registered_at: float
    renewals: int = 0


class LeaseTable:
    """Registry of live workers, keyed by worker id.

    Not thread-safe on its own: the coordinator holds its lock around
    every call.  ``clock`` must be monotonic (wall-clock steps would
    spuriously expire or immortalize leases).
    """

    def __init__(self, ttl_s: float = DEFAULT_LEASE_TTL_S,
                 clock: Callable[[], float] = time.monotonic):
        if ttl_s <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl_s!r}")
        self.ttl_s = float(ttl_s)
        self._clock = clock
        self._leases: Dict[str, Lease] = {}

    def register(self, worker_id: str) -> Lease:
        """Grant (or re-grant) a lease.  Re-registering an id that
        already holds a live lease simply refreshes it — a worker that
        restarted under the same name is still one worker."""
        now = self._clock()
        lease = Lease(
            worker_id=worker_id,
            expires_at=now + self.ttl_s,
            registered_at=now,
        )
        self._leases[worker_id] = lease
        return lease

    def renew(self, worker_id: str) -> bool:
        """Extend a live lease; ``False`` means the lease is unknown or
        already expired (the worker must re-register — HTTP 410)."""
        lease = self._leases.get(worker_id)
        if lease is None or lease.expires_at <= self._clock():
            return False
        lease.expires_at = self._clock() + self.ttl_s
        lease.renewals += 1
        return True

    def alive(self, worker_id: str) -> bool:
        lease = self._leases.get(worker_id)
        return lease is not None and lease.expires_at > self._clock()

    def live_workers(self) -> List[str]:
        """Ids holding unexpired leases, in registration order."""
        now = self._clock()
        return [
            lease.worker_id
            for lease in self._leases.values()
            if lease.expires_at > now
        ]

    def expire_due(self) -> List[str]:
        """Drop every lapsed lease and return their worker ids.

        The coordinator calls this once per tick; each returned id gets
        a ``lease_expired`` journal event and its shards rehomed.
        """
        now = self._clock()
        expired = [
            worker_id
            for worker_id, lease in self._leases.items()
            if lease.expires_at <= now
        ]
        for worker_id in expired:
            del self._leases[worker_id]
        return expired

    def __len__(self) -> int:
        return len(self.live_workers())
