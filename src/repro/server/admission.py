"""Multi-tenant admission: per-tenant quotas and weighted fair queueing.

The single-tenant server admitted on one global number (queue depth vs
``--queue-limit``).  Once several tenants share a coordinator that is
not enough: one chatty tenant can fill the queue and starve everyone
else.  This module adds the two standard controls:

**Quotas** cap each tenant's *active* jobs (queued + running).  A
submission over quota is rejected with 429 and a ``Retry-After``
computed from how fast the tenant's backlog can plausibly drain —
``ceil((active + 1 - quota) / quota)`` ticks, never less than one
second — instead of the constant the single-tenant server used.  Every
rejection increments ``admission.rejected{tenant=...}``, registered at
zero for each configured tenant so dashboards see the series before
the first rejection.

**Weighted fair queueing** decides which queued job runs next.  Each
tenant accrues virtual time as its jobs are claimed (``vtime +=
1/weight``); the queued job belonging to the lowest-vtime tenant wins.
New or idle tenants are floored to the minimum active vtime so they
cannot bank unbounded credit while away.  With a single tenant (or
only the default tenant) every job carries the same vtime stream and
the policy degenerates to FIFO — which is why plugging it into
:meth:`repro.server.store.JobStore.claim_next` changes nothing for
pre-fleet deployments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.obs import current_registry
from repro.service.jobs import DEFAULT_TENANT

#: Active-job quota for tenants without an explicit policy.
DEFAULT_QUOTA = 8
#: WFQ weight for tenants without an explicit policy.
DEFAULT_WEIGHT = 1.0


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's admission knobs."""

    quota: int = DEFAULT_QUOTA
    weight: float = DEFAULT_WEIGHT

    def __post_init__(self):
        if self.quota < 1:
            raise ValueError(f"tenant quota must be >= 1, got {self.quota!r}")
        if self.weight <= 0:
            raise ValueError(
                f"tenant weight must be positive, got {self.weight!r}"
            )


@dataclass(frozen=True)
class Rejection:
    """Why a submission was refused, and when to come back."""

    reason: str
    retry_after_s: int


def retry_after_s(active: int, quota: int) -> int:
    """Seconds until the tenant's backlog plausibly fits under quota.

    Models the scheduler draining roughly one job per tenant per tick:
    ``active + 1`` jobs must fit under ``quota``, so the excess divided
    by the quota (how many "rounds" of drain are needed) is the wait —
    floored at one second so 429 always tells clients to back off.
    """
    excess = active + 1 - quota
    return max(1, math.ceil(excess / max(1, quota)))


class AdmissionController:
    """Quota gate + WFQ claim policy for a multi-tenant store.

    ``policies`` maps tenant name to :class:`TenantPolicy`; unknown
    tenants fall back to ``default_policy``.  The controller is driven
    from the server's single event loop (plus the store's lock around
    :meth:`pick_next`), so it keeps no lock of its own.
    """

    def __init__(self, policies: Optional[Dict[str, TenantPolicy]] = None,
                 default_policy: Optional[TenantPolicy] = None,
                 registry=None):
        self._policies = dict(policies or {})
        self._default = default_policy or TenantPolicy()
        self._registry = registry
        self._vtime: Dict[str, float] = {}
        self._served: Dict[str, int] = {}
        # Register each configured tenant's rejection counter at zero:
        # the series must exist in /metrics before the first 429.
        for tenant in self._policies:
            self.registry.counter("admission.rejected", tenant=tenant)

    @property
    def registry(self):
        return self._registry if self._registry is not None \
            else current_registry()

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self._policies.get(tenant, self._default)

    # -- quota gate ------------------------------------------------------------

    def check(self, tenant: str,
              active_counts: Dict[str, int]) -> Optional[Rejection]:
        """``None`` admits; a :class:`Rejection` maps to HTTP 429.

        ``active_counts`` is the store's per-tenant queued+running
        snapshot (:meth:`repro.server.store.JobStore.active_counts`).
        """
        policy = self.policy_for(tenant)
        active = active_counts.get(tenant, 0)
        if active < policy.quota:
            return None
        self.registry.counter("admission.rejected", tenant=tenant).inc()
        return Rejection(
            reason="tenant_quota",
            retry_after_s=retry_after_s(active, policy.quota),
        )

    # -- weighted fair queueing ------------------------------------------------

    def pick_next(self, queued: Sequence) -> Optional[str]:
        """Choose which queued :class:`~repro.server.store.ServerJob`
        to claim; the store installs this as its ``queue_policy``.

        Within a tenant the oldest job wins (``queued`` arrives oldest
        first); across tenants the lowest virtual time wins, ties
        broken by queue order.  The chosen tenant's vtime advances by
        ``1/weight``, so heavier tenants are picked proportionally more
        often.
        """
        if not queued:
            return None
        # Floor new/idle tenants at the minimum live vtime so a tenant
        # cannot return from idleness with an unbounded head start.
        # Ties (a floored newcomer vs the tenant that set the floor)
        # break toward the tenant served *fewer* times, then queue
        # order — without the served-count tiebreak the queue-order
        # rule would hand a flooring tenant the whole window.
        floor = min(self._vtime.values()) if self._vtime else 0.0
        best_job = None
        best_key = None
        for job in queued:
            tenant = job.spec.tenant
            vtime = max(self._vtime.get(tenant, floor), floor)
            key = (vtime, self._served.get(tenant, 0))
            if best_key is None or key < best_key:
                best_key = key
                best_job = job
        tenant = best_job.spec.tenant
        start = max(self._vtime.get(tenant, floor), floor)
        self._vtime[tenant] = start + 1.0 / self.policy_for(tenant).weight
        self._served[tenant] = self._served.get(tenant, 0) + 1
        return best_job.id


def parse_tenant_policy(text: str) -> "tuple[str, TenantPolicy]":
    """Parse one ``NAME=QUOTA[:WEIGHT]`` CLI argument.

    Examples: ``acme=4`` (quota 4, weight 1), ``acme=4:2.5`` (quota 4,
    weight 2.5).  The default tenant is configurable like any other.
    """
    name, sep, rest = text.partition("=")
    name = name.strip()
    if not sep or not name or not rest.strip():
        raise ValueError(
            f"tenant policy must look like NAME=QUOTA[:WEIGHT], got {text!r}"
        )
    quota_text, sep, weight_text = rest.partition(":")
    try:
        quota = int(quota_text)
        weight = float(weight_text) if sep else DEFAULT_WEIGHT
    except ValueError:
        raise ValueError(
            f"tenant policy must look like NAME=QUOTA[:WEIGHT], got {text!r}"
        ) from None
    return name, TenantPolicy(quota=quota, weight=weight)


__all__ = [
    "DEFAULT_QUOTA",
    "DEFAULT_TENANT",
    "DEFAULT_WEIGHT",
    "AdmissionController",
    "Rejection",
    "TenantPolicy",
    "parse_tenant_policy",
    "retry_after_s",
]
