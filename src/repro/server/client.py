"""A small urllib client for the exploration server's HTTP API.

Used by the ``repro submit`` / ``repro status`` / ``repro result`` CLI
verbs and by the test-suite; kept deliberately thin — JSON in, JSON out,
HTTP failure codes mapped to :class:`~repro.errors.ServerError` (except
the two *protocol* statuses callers branch on: 202 "not done yet" passes
through as a document, and 429 carries ``retry_after`` so a caller can
back off instead of dying).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple

from repro.errors import ServerError

DEFAULT_TIMEOUT_S = 30.0


class QueueFull(ServerError):
    """The server answered 429: admission control rejected the job.

    Transient by definition — the queue drains; ``retry_after`` carries
    the server's suggested backoff in seconds.
    """

    transient = True

    def __init__(self, message: str, retry_after: float = 1.0):
        self.retry_after = retry_after
        super().__init__(message)


class LeaseLost(ServerError):
    """The server answered 410: this worker's lease expired (or was
    never granted).  The fix is always the same — re-register."""

    transient = True


def _request(
    method: str,
    url: str,
    doc: Optional[Dict[str, Any]] = None,
    timeout_s: float = DEFAULT_TIMEOUT_S,
) -> Tuple[int, Dict[str, Any]]:
    """One HTTP exchange; returns ``(status, parsed body)``."""
    body = None
    headers = {"Accept": "application/json"}
    if doc is not None:
        body = json.dumps(doc).encode()
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(
        url, data=body, headers=headers, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as reply:
            return reply.status, _parse(reply.read())
    except urllib.error.HTTPError as error:
        payload = _parse(error.read())
        message = payload.get("error") or f"HTTP {error.code}"
        if error.code == 429:
            retry_after = _retry_after(error.headers.get("Retry-After"))
            raise QueueFull(message, retry_after=retry_after) from None
        if error.code == 410:
            raise LeaseLost(message) from None
        if error.code == 202:
            return error.code, payload
        raise ServerError(f"{method} {url}: {message}") from None
    except (urllib.error.URLError, OSError, TimeoutError) as error:
        reason = getattr(error, "reason", error)
        raise ServerError(f"cannot reach server at {url}: {reason}") from None


def _parse(raw: bytes) -> Dict[str, Any]:
    try:
        doc = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return {}
    return doc if isinstance(doc, dict) else {}


def _retry_after(value: Optional[str]) -> float:
    try:
        return max(0.0, float(value))
    except (TypeError, ValueError):
        return 1.0


def submit_job(
    base_url: str, entry: Any, timeout_s: float = DEFAULT_TIMEOUT_S
) -> Dict[str, Any]:
    """POST one submission; returns the server's admission document
    (``job_id``, ``created``, ``status``).  Raises :class:`QueueFull`
    on 429 and :class:`ServerError` on everything else non-2xx."""
    doc = entry if isinstance(entry, dict) else {"program": str(entry)}
    _, payload = _request("POST", f"{base_url}/jobs", doc, timeout_s)
    return payload


def job_status(
    base_url: str, job_id: str, timeout_s: float = DEFAULT_TIMEOUT_S
) -> Dict[str, Any]:
    """GET the job's status document."""
    _, payload = _request(
        "GET", f"{base_url}/jobs/{job_id}", timeout_s=timeout_s
    )
    return payload


def job_report(
    base_url: str, job_id: str, timeout_s: float = DEFAULT_TIMEOUT_S
) -> Tuple[bool, Dict[str, Any]]:
    """GET the job's report; ``(done, document)`` — ``done=False`` is
    the 202 "still queued/running" reply."""
    status, payload = _request(
        "GET", f"{base_url}/jobs/{job_id}/report", timeout_s=timeout_s
    )
    return status == 200, payload


def server_health(
    base_url: str, timeout_s: float = DEFAULT_TIMEOUT_S
) -> Dict[str, Any]:
    """GET ``/healthz``."""
    _, payload = _request("GET", f"{base_url}/healthz", timeout_s=timeout_s)
    return payload


# -- fleet endpoints ----------------------------------------------------------

def register_worker(
    base_url: str, worker_id: str, timeout_s: float = DEFAULT_TIMEOUT_S
) -> Dict[str, Any]:
    """POST ``/fleet/workers``; returns the lease grant (``ttl_s``)."""
    _, payload = _request(
        "POST", f"{base_url}/fleet/workers", {"worker": worker_id}, timeout_s
    )
    return payload


def fleet_heartbeat(
    base_url: str, worker_id: str, timeout_s: float = DEFAULT_TIMEOUT_S
) -> None:
    """POST ``/fleet/heartbeat``; raises :class:`LeaseLost` on 410."""
    _request(
        "POST", f"{base_url}/fleet/heartbeat", {"worker": worker_id},
        timeout_s,
    )


def claim_shard(
    base_url: str, worker_id: str, timeout_s: float = DEFAULT_TIMEOUT_S
) -> Optional[Dict[str, Any]]:
    """POST ``/fleet/claim``; the shard payload, or ``None`` when the
    coordinator has no work.  Raises :class:`LeaseLost` on 410."""
    _, payload = _request(
        "POST", f"{base_url}/fleet/claim", {"worker": worker_id}, timeout_s
    )
    shard = payload.get("shard")
    return shard if isinstance(shard, dict) else None


def post_shard_result(
    base_url: str, worker_id: str, shard_id: str, result: Dict[str, Any],
    timeout_s: float = DEFAULT_TIMEOUT_S,
) -> bool:
    """POST ``/fleet/result``; ``False`` = the coordinator dropped it as
    a duplicate (someone else finished the rehomed shard first)."""
    _, payload = _request(
        "POST", f"{base_url}/fleet/result",
        {"worker": worker_id, "shard_id": shard_id, "result": result},
        timeout_s,
    )
    return bool(payload.get("accepted"))


def fleet_status(
    base_url: str, timeout_s: float = DEFAULT_TIMEOUT_S
) -> Dict[str, Any]:
    """GET ``/fleet`` — live workers, pending/running shards."""
    _, payload = _request("GET", f"{base_url}/fleet", timeout_s=timeout_s)
    return payload


def server_metrics(
    base_url: str, timeout_s: float = DEFAULT_TIMEOUT_S
) -> str:
    """GET ``/metrics`` (raw Prometheus text, not JSON)."""
    request = urllib.request.Request(
        f"{base_url}/metrics", method="GET"
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as reply:
            return reply.read().decode("utf-8")
    except (urllib.error.URLError, OSError, TimeoutError) as error:
        reason = getattr(error, "reason", error)
        raise ServerError(
            f"cannot reach server at {base_url}: {reason}"
        ) from None
