"""Fleet-scale sharded exploration: coordinator, shards, and workers.

The single-process server (PR 5) walks one design space per job on one
box.  This module goes horizontal without giving up the crash-safety
story: a **coordinator** partitions a job's unroll-factor lattice into
content-addressed **shards**, hands them to registered **workers** over
HTTP, and survives worker death by watching leases
(:mod:`repro.server.leases`) and rehoming orphaned shards.

Determinism contract — the property the chaos suite pins:

* Shards are contiguous chunks of ``DesignSpace.enumerable_points()``
  under the same automatic pinning the single-process explorer applies,
  so the union of shard points *is* the exhaustive lattice.
* Each shard returns every evaluated point (unroll, cycles, space,
  balance, fits); :func:`merge_shard_results` folds them with
  order-independent reductions (min by ``(cycles, space, unroll)``,
  non-dominated union for the Pareto front).  N workers therefore
  produce a result bit-identical to one worker — worker count, claim
  order, and rehoming history cannot leak into the answer.
* Shard ids are hashes of ``(submission hash, shard index, points)``:
  a coordinator restart re-plans the identical shards and can adopt
  ``shard_done`` journal records from the previous life verbatim.

Exactly-once accounting: ``job_started`` is journaled once, by
``JobStore.claim_next``, when the coordinator claims the job and plans
its shards.  Rehoming re-dispatches *shards*, never the job, so a
worker dying mid-shard adds ``lease_expired`` + ``shard_rehomed``
events but no second ``job_started``.  Duplicate shard results (a
presumed-dead worker delivering late) are deduplicated by shard id
before anything is journaled.

Fault sites (see :mod:`repro.faults`): ``heartbeat`` fires inside the
worker's renewal loop (a raise skips beats until the lease lapses),
``worker_kill`` fires at shard-execution entry keyed by shard id (a
``kill`` rule dies mid-shard), ``rehome`` fires in the coordinator
just before a shard is rehomed.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro import faults
from repro.errors import ServiceError, failure_kind
from repro.obs import current_registry
from repro.server.leases import DEFAULT_LEASE_TTL_S, LeaseTable
from repro.server.store import JobStore, ServerJob
from repro.service.jobs import JobSpec
from repro.service.worker import build_options, load_program, resolve_board

#: Default points per shard — small enough that a kernel's lattice
#: (18–42 points on the five paper kernels) spreads across workers,
#: large enough that HTTP round-trips do not dominate.
DEFAULT_SHARD_POINTS = 16


# ---------------------------------------------------------------------------
# Shard planning
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardSpec:
    """One content-addressed chunk of a job's lattice.

    ``mode`` is ``"points"`` for the classic contiguous lattice chunk;
    a ``"walk"`` shard carries no points — it asks one worker to run
    the job's full sequential search (how non-partitionable strategies
    ride the fleet).
    """

    shard_id: str
    job_id: str
    index: int
    total: int
    points: Tuple[Tuple[int, ...], ...]
    mode: str = "points"

    def to_payload(self, spec: JobSpec) -> Dict[str, Any]:
        """The wire shape a worker receives."""
        payload = {
            "shard_id": self.shard_id,
            "job_id": self.job_id,
            "index": self.index,
            "total": self.total,
            "points": [list(point) for point in self.points],
            "spec": spec.to_payload(),
        }
        if self.mode != "points":
            payload["mode"] = self.mode
        return payload


@dataclass
class ShardPlan:
    """A job's full partition."""

    job_id: str
    shards: List[ShardSpec]
    total_points: int
    pinned_depths: Tuple[int, ...]
    design_space_size: int
    mode: str = "points"


def _shard_id(submission_hash: str, index: int,
              points: Tuple[Tuple[int, ...], ...],
              mode: str = "points") -> str:
    doc: Dict[str, Any] = {
        "hash": submission_hash, "index": index,
        "points": [list(p) for p in points],
    }
    # Conditional inclusion: point-mode ids are byte-identical to the
    # pre-walk-shard format, so old journals adopt cleanly.
    if mode != "points":
        doc["mode"] = mode
    encoded = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return f"shard-{hashlib.sha256(encoded.encode()).hexdigest()[:12]}"


def plan_shards(spec: JobSpec, submission_hash: str,
                shard_points: int = DEFAULT_SHARD_POINTS) -> ShardPlan:
    """Partition a job's enumerable lattice into contiguous shards.

    Mirrors the explorer's automatic pinning (loops outside the
    saturation analysis's memory-varying set are pinned to factor 1) so
    the shard union equals exactly the point set a single-process
    exhaustive walk would visit.

    The job's search strategy decides the plan's shape: strategies that
    declare themselves partitionable (the default balance walk, the
    exhaustive sweep) fan out as point shards whose union is the
    lattice; a non-partitionable strategy (its walk is sequential
    state) becomes one ``"walk"``-mode shard that a single worker runs
    end to end.  ``--strategy auto`` is resolved here, on the pinned
    space, with the same selector the explorer uses.
    """
    if shard_points < 1:
        raise ServiceError(f"shard_points must be >= 1, got {shard_points!r}")
    from repro.dse.saturation import analyze_saturation
    from repro.dse.space import DesignSpace
    program, kernel = load_program(spec.program)
    board = resolve_board(spec.board)
    _search, options = build_options(spec, kernel)
    saturation = analyze_saturation(program, board.num_memories)
    varying = set(saturation.memory_varying_depths)
    space = DesignSpace(program, board, options)
    pins = tuple(d for d in range(space.depth) if d not in varying)
    if pins:
        space = DesignSpace(program, board, options, pinned_depths=pins)
    points = [point.factors for point in space.enumerable_points()]

    from repro.dse.selector import select_strategy
    from repro.dse.strategy import DEFAULT_STRATEGY, get_strategy
    requested = dict(spec.search).get("strategy", DEFAULT_STRATEGY)
    if requested == "auto":
        requested = select_strategy(space).strategy
    if not get_strategy(requested).partitionable:
        shard = ShardSpec(
            shard_id=_shard_id(submission_hash, 0, (), mode="walk"),
            job_id=spec.id, index=0, total=1, points=(), mode="walk",
        )
        return ShardPlan(
            job_id=spec.id, shards=[shard], total_points=len(points),
            pinned_depths=pins, design_space_size=space.size(),
            mode="walk",
        )

    shards: List[ShardSpec] = []
    chunks = [
        tuple(points[start:start + shard_points])
        for start in range(0, len(points), shard_points)
    ]
    for index, chunk in enumerate(chunks):
        shards.append(ShardSpec(
            shard_id=_shard_id(submission_hash, index, chunk),
            job_id=spec.id,
            index=index,
            total=len(chunks),
            points=chunk,
        ))
    return ShardPlan(
        job_id=spec.id,
        shards=shards,
        total_points=len(points),
        pinned_depths=pins,
        design_space_size=space.size(),
    )


# ---------------------------------------------------------------------------
# Shard execution (runs on workers)
# ---------------------------------------------------------------------------

def execute_shard(payload: Mapping[str, Any],
                  cache_path: Optional[str] = None) -> Dict[str, Any]:
    """Evaluate one shard's points; returns a primitives-only dict.

    The ``worker_kill`` fault site fires here, keyed by shard id, which
    is how the chaos suite murders a worker deterministically mid-shard
    (``max_hits: 1`` → exactly one death, the retry after rehoming runs
    clean).
    """
    shard_id = payload.get("shard_id", "")
    runtime = payload.get("runtime") or {}
    faults.activate(runtime.get("fault_spec"))
    faults.check("worker_kill", key=shard_id)

    if payload.get("mode") == "walk":
        return _execute_walk_shard(payload, cache_path)

    spec = JobSpec.from_payload(payload["spec"])
    program, kernel = load_program(spec.program)
    board = resolve_board(spec.board)
    _search, options = build_options(spec, kernel)
    from contextlib import ExitStack
    from repro.dse.space import DesignSpace
    from repro.transform.unroll import UnrollVector
    cache = None
    if cache_path:
        from pathlib import Path
        from repro.service.shared_cache import SharedEstimateCache
        cache = SharedEstimateCache(Path(cache_path))
    space = DesignSpace(
        program, board, options,
        estimate_cache=cache, backend=spec.backend,
    )
    started = time.perf_counter()
    evaluated: List[Dict[str, Any]] = []
    memo = None
    with ExitStack() as stack:
        if runtime.get("incremental", True):
            # Point shards share schedule/legality/verify work across
            # their points; with a memo_dir, across shards and runs too.
            from pathlib import Path
            from repro.incremental import use_memo
            from repro.incremental.journal import open_memo
            memo_dir = runtime.get("memo_dir")
            memo = open_memo(Path(memo_dir) if memo_dir else None)
            stack.enter_context(use_memo(memo))
        for raw_point in payload.get("points", ()):
            vector = UnrollVector(tuple(int(f) for f in raw_point))
            evaluation = space.try_evaluate(vector)
            if evaluation is None:
                continue
            evaluated.append({
                "unroll": list(evaluation.unroll.factors),
                "cycles": evaluation.cycles,
                "space": evaluation.space,
                "balance": evaluation.balance,
                "fits": evaluation.estimate.fits(board),
            })
    if cache is not None:
        from repro.errors import CacheLockTimeout
        try:
            cache.save()
        except (CacheLockTimeout, OSError):
            pass  # estimates re-learned later; the shard result stands
    out = {
        "shard_id": shard_id,
        "job_id": payload.get("job_id", spec.id),
        "points": evaluated,
        "infeasible_count": space.points_failed,
        "infeasible_points": [
            diagnostic.as_dict() for diagnostic in space.infeasible_points()
        ],
        "wall_seconds": time.perf_counter() - started,
    }
    if memo is not None:
        out["memo"] = {
            "hits": memo.hits, "misses": memo.misses,
            "invalidations": memo.invalidations,
        }
        memo.flush()
    return out


def _execute_walk_shard(payload: Mapping[str, Any],
                        cache_path: Optional[str]) -> Dict[str, Any]:
    """Run a job's full sequential search as one shard.

    Non-partitionable strategies keep their walk state on one worker;
    the result dict carries the complete exploration outcome so the
    coordinator adopts it directly instead of merging point sets.  The
    shape mirrors :func:`repro.service.worker.execute_job`'s payload
    (minus the per-job observability plumbing).
    """
    shard_id = payload.get("shard_id", "")
    runtime = payload.get("runtime") or {}
    spec = JobSpec.from_payload(payload["spec"])
    program, kernel = load_program(spec.program)
    board = resolve_board(spec.board)
    search_options, pipeline_options = build_options(spec, kernel)
    cache = None
    if cache_path:
        from pathlib import Path
        from repro.service.shared_cache import SharedEstimateCache
        cache = SharedEstimateCache(Path(cache_path))
    from pathlib import Path
    from repro.dse import DEFAULT_STRATEGY, ExploreConfig, explore
    memo_dir = runtime.get("memo_dir")
    started = time.perf_counter()
    result = explore(program, board, config=ExploreConfig(
        search=search_options,
        pipeline=pipeline_options,
        estimate_cache=cache,
        backend=spec.backend,
        fidelity=spec.fidelity,
        incremental=bool(runtime.get("incremental", True)),
        memo_dir=Path(memo_dir) if memo_dir else None,
    ))
    if cache is not None:
        from repro.errors import CacheLockTimeout
        try:
            cache.save()
        except (CacheLockTimeout, OSError):
            pass  # estimates re-learned later; the walk result stands
    out: Dict[str, Any] = {
        "shard_id": shard_id,
        "job_id": payload.get("job_id", spec.id),
        "mode": "walk",
        "selected_unroll": list(result.selected.unroll),
        "cycles": result.selected.cycles,
        "space": result.selected.space,
        "balance": result.selected.balance,
        "baseline_cycles": result.baseline.cycles,
        "baseline_space": result.baseline.space,
        "baseline_degraded": result.baseline_degraded,
        "speedup": result.speedup,
        "points_searched": result.points_searched,
        "design_space_size": result.design_space_size,
        "trace": [str(step) for step in result.search.trace],
        "infeasible_count": len(result.infeasible),
        "infeasible_points": [
            diagnostic.as_dict() for diagnostic in result.infeasible
        ],
        "wall_seconds": time.perf_counter() - started,
    }
    if result.strategy != DEFAULT_STRATEGY:
        out["strategy"] = result.strategy
    if result.strategy_selection is not None:
        out["strategy_selection"] = result.strategy_selection.as_dict()
    if result.memo_stats is not None:
        out["memo"] = result.memo_stats
    switches = result.search.fidelity_switches
    if switches:
        out["fidelity_switches"] = [switch.as_dict() for switch in switches]
    return out


# ---------------------------------------------------------------------------
# Deterministic merge
# ---------------------------------------------------------------------------

def _point_key(point: Mapping[str, Any]) -> Tuple:
    return (point["cycles"], point["space"], tuple(point["unroll"]))


def _pareto_front(points: List[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Non-dominated set over (cycles, space), deterministically ordered."""
    front: List[Mapping[str, Any]] = []
    for candidate in points:
        dominated = any(
            other["cycles"] <= candidate["cycles"]
            and other["space"] <= candidate["space"]
            and (other["cycles"] < candidate["cycles"]
                 or other["space"] < candidate["space"])
            for other in points
        )
        if not dominated:
            front.append(candidate)
    # Dedup identical (cycles, space, unroll) rows and order stably.
    unique = {_point_key(p): p for p in front}
    return [dict(unique[key]) for key in sorted(unique)]


def merge_shard_results(results: List[Mapping[str, Any]]) -> Dict[str, Any]:
    """Fold per-shard point sets into the global result.

    Every reduction is order-independent (min by a total order; set
    union), so the merged document is identical whatever the dispatch
    interleaving was — the fleet's bit-identical-to-one-worker claim.
    """
    points: List[Mapping[str, Any]] = []
    infeasible = 0
    diagnostics: List[Any] = []
    for result in results:
        points.extend(result.get("points", ()))
        infeasible += int(result.get("infeasible_count", 0))
        diagnostics.extend(result.get("infeasible_points", ()))
    if not points:
        from repro.errors import NoFeasiblePoint
        raise NoFeasiblePoint(
            f"fleet merge: every point failed across {len(results)} shards "
            f"({infeasible} failures)"
        )
    feasible = [p for p in points if p.get("fits")]
    pool = feasible or points
    best = min(pool, key=_point_key)
    baseline = None
    for point in points:
        if all(factor == 1 for factor in point["unroll"]):
            baseline = point
            break
    baseline_degraded = baseline is None
    if baseline is None:
        baseline = best
    speedup = baseline["cycles"] / best["cycles"] if best["cycles"] else 0.0
    return {
        "selected_unroll": list(best["unroll"]),
        "cycles": best["cycles"],
        "space": best["space"],
        "balance": best["balance"],
        "baseline_cycles": baseline["cycles"],
        "baseline_space": baseline["space"],
        "baseline_degraded": baseline_degraded,
        "speedup": speedup,
        "pareto_front": _pareto_front(pool),
        "points_searched": len(points),
        "infeasible_count": infeasible,
        "infeasible_points": sorted(
            (dict(d) for d in diagnostics),
            key=lambda d: tuple(d.get("unroll", ())),
        ),
        "shards": len(results),
    }


# ---------------------------------------------------------------------------
# The coordinator
# ---------------------------------------------------------------------------

@dataclass
class _JobState:
    """One claimed job's shard bookkeeping."""

    job: ServerJob
    plan: ShardPlan
    pending: List[str] = field(default_factory=list)      # shard ids
    inflight: Dict[str, str] = field(default_factory=dict)  # shard -> worker
    done: Dict[str, Mapping[str, Any]] = field(default_factory=dict)

    def shard(self, shard_id: str) -> Optional[ShardSpec]:
        for shard in self.plan.shards:
            if shard.shard_id == shard_id:
                return shard
        return None


class FleetCoordinator:
    """Owns leases, shard dispatch, rehoming, and the merged results.

    Single-lock design: every public method takes ``self._lock``, so
    the coordinator can be driven from the asyncio server, from tests,
    and from the lease-sweep tick without ordering hazards.  The store
    journals everything through its own lock (lock order is always
    coordinator → store, never the reverse).
    """

    def __init__(self, store: JobStore,
                 lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
                 shard_points: int = DEFAULT_SHARD_POINTS,
                 clock: Callable[[], float] = time.monotonic,
                 incremental: bool = True,
                 memo_dir: Optional[Any] = None):
        self.store = store
        self.shard_points = shard_points
        #: incremental-evaluation knobs stamped into every shard
        #: payload's runtime map; ``memo_dir`` is coordinator-local, so
        #: a worker on another machine overrides it with its own
        #: ``--memo-dir`` (or degrades to a per-shard in-memory memo).
        self.incremental = bool(incremental)
        self.memo_dir = str(memo_dir) if memo_dir else None
        self.leases = LeaseTable(ttl_s=lease_ttl_s, clock=clock)
        self._lock = threading.Lock()
        self._jobs: Dict[str, _JobState] = {}           # job id -> state
        self._worker_shards: Dict[str, List[str]] = {}  # worker -> shard ids
        #: shard_done records adopted from a previous coordinator life.
        self._adopted: Dict[str, Dict[str, Mapping[str, Any]]] = {}
        #: (shard_id, dead_worker) pairs awaiting rehoming — kept across
        #: ticks so an injected ``rehome`` fault delays, never loses.
        self._orphans: List[Tuple[str, str]] = []
        self.duplicate_results = 0
        self.rehomed_total = 0
        self._adopt_journal()

    # -- journal adoption ------------------------------------------------------

    def _adopt_journal(self) -> None:
        """Collect completed shards journaled by a previous coordinator.

        Shard ids are content-addressed, so a restart re-plans byte-
        identical shards and these results apply verbatim — finished
        work is never re-dispatched.
        """
        for record in self.store.replay_records():
            if record.get("event") != "shard_done":
                continue
            job_id = record.get("job_id")
            shard_id = record.get("shard_id")
            result = record.get("result")
            if not (isinstance(job_id, str) and isinstance(shard_id, str)
                    and isinstance(result, Mapping)):
                continue
            self._adopted.setdefault(job_id, {})[shard_id] = result

    # -- worker lifecycle ------------------------------------------------------

    def register(self, worker_id: str) -> Dict[str, Any]:
        """Grant (or refresh) a worker's lease."""
        if not worker_id or not isinstance(worker_id, str):
            raise ServiceError("worker registration needs a non-empty id")
        with self._lock:
            lease = self.leases.register(worker_id)
            self._worker_shards.setdefault(worker_id, [])
            self.store.append_event({
                "event": "worker_registered", "worker": worker_id,
                "ttl_s": self.leases.ttl_s,
            })
            current_registry().gauge("fleet.workers").set(len(self.leases))
            return {"worker": worker_id, "ttl_s": self.leases.ttl_s,
                    "expires_at": lease.expires_at}

    def heartbeat(self, worker_id: str) -> bool:
        """Renew a lease; ``False`` = lease lost, worker must re-register."""
        with self._lock:
            if not self.leases.renew(worker_id):
                return False
            self.store.append_event({
                "event": "lease_renewed", "worker": worker_id,
            })
            return True

    # -- dispatch --------------------------------------------------------------

    def claim(self, worker_id: str) -> Optional[Dict[str, Any]]:
        """Hand the next shard to a live worker (``None`` = no work).

        Raises :class:`ServiceError` for a worker with no live lease —
        the HTTP layer maps it to 410 so the worker re-registers before
        it can hold work the coordinator would not track.
        """
        with self._lock:
            if not self.leases.alive(worker_id):
                raise ServiceError(f"worker {worker_id!r} holds no live lease")
            if self.store.read_only:
                # Degraded journal: refuse to dispatch *new* shards (a
                # dispatch journals shard_dispatched, and a fresh claim
                # would journal job_started) — but keep accepting shard
                # results in :meth:`complete`, so in-flight work lands.
                return None
            shard, spec = self._next_shard()
            if shard is None:
                return None
            state = self._jobs[shard.job_id]
            state.pending.remove(shard.shard_id)
            state.inflight[shard.shard_id] = worker_id
            self._worker_shards.setdefault(worker_id, []).append(
                shard.shard_id
            )
            self.store.append_event({
                "event": "shard_dispatched", "shard_id": shard.shard_id,
                "job_id": shard.job_id, "worker": worker_id,
                "points": len(shard.points),
            })
            current_registry().counter("fleet.shards_dispatched").inc()
            payload = shard.to_payload(spec)
            runtime: Dict[str, Any] = {}
            if not self.incremental:
                runtime["incremental"] = False
            if self.memo_dir is not None:
                runtime["memo_dir"] = self.memo_dir
            if runtime:
                payload["runtime"] = runtime
            return payload

    def _next_shard(self) -> Tuple[Optional[ShardSpec], Optional[JobSpec]]:
        """The next pending shard, claiming a fresh job if none remain."""
        for state in self._jobs.values():
            if state.pending:
                shard = state.shard(state.pending[0])
                return shard, state.job.spec
        # No pending shards: claim the next job.  ``claim_next`` journals
        # its single ``job_started`` — the exactly-once anchor.
        job = self.store.claim_next()
        if job is None:
            return None, None
        try:
            plan = plan_shards(job.spec, job.hash,
                               shard_points=self.shard_points)
        except Exception as error:  # noqa: BLE001 - plan failure fails the job
            self.store.finish_failed(job, {
                "kind": failure_kind(error), "message": str(error),
            })
            return None, None
        state = _JobState(job=job, plan=plan)
        state.pending = [shard.shard_id for shard in plan.shards]
        self._jobs[job.id] = state
        # Adopt shards a previous coordinator life already finished.
        for shard_id, result in self._adopted.pop(job.id, {}).items():
            if shard_id in state.pending:
                state.pending.remove(shard_id)
                state.done[shard_id] = result
        if not state.pending and not state.inflight:
            self._finish_job(state)
            return self._next_shard()
        if state.pending:
            shard = state.shard(state.pending[0])
            return shard, job.spec
        return None, None

    # -- results ---------------------------------------------------------------

    def complete(self, worker_id: str, shard_id: str,
                 result: Mapping[str, Any]) -> bool:
        """Accept one shard result; ``False`` = duplicate, dropped.

        Late deliveries from presumed-dead workers land here after the
        shard was rehomed and re-run: the first result to arrive wins,
        the duplicate is counted and never journaled (one ``shard_done``
        per shard, like one ``job_started`` per job).
        """
        with self._lock:
            state = self._state_for_shard(shard_id)
            if state is None or shard_id in state.done:
                self.duplicate_results += 1
                current_registry().counter("fleet.duplicate_results").inc()
                return False
            state.inflight.pop(shard_id, None)
            if shard_id in state.pending:
                state.pending.remove(shard_id)
            shards = self._worker_shards.get(worker_id, [])
            if shard_id in shards:
                shards.remove(shard_id)
            state.done[shard_id] = dict(result)
            self.store.append_event({
                "event": "shard_done", "shard_id": shard_id,
                "job_id": state.job.id, "worker": worker_id,
                "result": dict(result),
            })
            current_registry().counter("fleet.shards_done").inc()
            if not state.pending and not state.inflight:
                self._finish_job(state)
            return True

    def _state_for_shard(self, shard_id: str) -> Optional[_JobState]:
        for state in self._jobs.values():
            if state.shard(shard_id) is not None:
                return state
        return None

    def _finish_job(self, state: _JobState) -> None:
        """All shards done: merge and journal the terminal result.

        A walk-mode plan has exactly one shard whose result *is* the
        full exploration outcome — it is adopted verbatim, no merge.
        """
        ordered = [
            state.done[shard.shard_id] for shard in state.plan.shards
        ]
        if state.plan.mode == "walk":
            payload = dict(ordered[0])
            payload.pop("shard_id", None)
            payload["shards"] = len(ordered)
            payload["job_id"] = state.job.id
            payload["program"] = state.job.spec.program
            payload["board"] = state.job.spec.board
            payload["backend"] = state.job.spec.backend
            self.store.finish_ok(state.job, payload)
            del self._jobs[state.job.id]
            return
        try:
            payload = merge_shard_results(ordered)
        except Exception as error:  # noqa: BLE001 - merge failure fails the job
            self.store.finish_failed(state.job, {
                "kind": failure_kind(error), "message": str(error),
            })
            del self._jobs[state.job.id]
            return
        payload["job_id"] = state.job.id
        payload["program"] = state.job.spec.program
        payload["board"] = state.job.spec.board
        payload["backend"] = state.job.spec.backend
        payload["design_space_size"] = state.plan.design_space_size
        self.store.finish_ok(state.job, payload)
        del self._jobs[state.job.id]

    # -- lease sweep & rehoming ------------------------------------------------

    def tick(self) -> List[str]:
        """Expire lapsed leases and rehome their shards; returns the
        expired worker ids (for logs/tests)."""
        with self._lock:
            expired = self.leases.expire_due()
            for worker_id in expired:
                self.store.append_event({
                    "event": "lease_expired", "worker": worker_id,
                })
                current_registry().counter("fleet.leases_expired").inc()
                for shard_id in self._worker_shards.pop(worker_id, []):
                    self._orphans.append((shard_id, worker_id))
            if expired:
                current_registry().gauge("fleet.workers").set(
                    len(self.leases)
                )
            # Rehome every orphan; an injected ``rehome`` fault leaves
            # the rest queued for the next tick instead of losing them.
            pending = self._orphans
            self._orphans = []
            for position, (shard_id, dead_worker) in enumerate(pending):
                try:
                    self._rehome(shard_id, dead_worker)
                except Exception:  # noqa: BLE001 - injected fault: defer
                    self._orphans.extend(pending[position:])
                    break
            return expired

    def _rehome(self, shard_id: str, dead_worker: str) -> None:
        state = self._state_for_shard(shard_id)
        if state is None or shard_id in state.done:
            return
        faults.check("rehome", key=shard_id)
        state.inflight.pop(shard_id, None)
        if shard_id not in state.pending:
            # Front of the queue: an orphaned shard is the oldest work.
            state.pending.insert(0, shard_id)
        self.rehomed_total += 1
        self.store.append_event({
            "event": "shard_rehomed", "shard_id": shard_id,
            "job_id": state.job.id, "from_worker": dead_worker,
        })
        current_registry().counter("fleet.shards_rehomed").inc()

    # -- introspection ---------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """The ``GET /fleet`` document."""
        with self._lock:
            return {
                "workers": sorted(self.leases.live_workers()),
                "lease_ttl_s": self.leases.ttl_s,
                "jobs_inflight": len(self._jobs),
                "shards_pending": sum(
                    len(state.pending) for state in self._jobs.values()
                ),
                "shards_running": sum(
                    len(state.inflight) for state in self._jobs.values()
                ),
                "shards_rehomed": self.rehomed_total,
                "duplicate_results": self.duplicate_results,
            }

    @property
    def idle(self) -> bool:
        """No claimed job has outstanding shards."""
        with self._lock:
            return not self._jobs

    async def run(self, poll_s: float = 0.25,
                  stopping: Optional[Callable[[], bool]] = None) -> None:
        """The coordinator's background loop: sweep leases forever."""
        import asyncio
        while stopping is None or not stopping():
            self.tick()
            await asyncio.sleep(poll_s)


# ---------------------------------------------------------------------------
# The worker loop (runs in worker processes, talks HTTP)
# ---------------------------------------------------------------------------

@dataclass
class WorkerOptions:
    """Knobs for :class:`FleetWorker`."""

    server: str
    worker_id: str
    poll_s: float = 0.5
    cache_path: Optional[str] = None
    fault_spec: Optional[str] = None
    #: exit after this many shards (None = run until idle_exit_s).
    max_shards: Optional[int] = None
    #: exit after this long with no work (None = run forever).
    idle_exit_s: Optional[float] = None
    #: worker-local memo-journal directory; overrides the coordinator's
    #: (coordinator paths are only valid on the coordinator's machine).
    memo_dir: Optional[str] = None


class FleetWorker:
    """Pull-based worker: register, heartbeat, claim, execute, report.

    The heartbeat runs on a daemon thread at TTL/3 so two beats can be
    lost before the lease lapses; the ``heartbeat`` fault site fires
    inside the beat (an injected raise silently skips that beat, which
    is how the chaos suite starves a lease without killing the
    process).  A 410 from any endpoint means the lease is gone — the
    worker re-registers and carries on.
    """

    def __init__(self, options: WorkerOptions):
        self.options = options
        self.shards_done = 0
        self._ttl_s = DEFAULT_LEASE_TTL_S
        self._stop = threading.Event()

    # -- client plumbing -------------------------------------------------------

    def _register(self) -> None:
        from repro.server.client import register_worker
        grant = register_worker(self.options.server, self.options.worker_id)
        self._ttl_s = float(grant.get("ttl_s", DEFAULT_LEASE_TTL_S))

    def _beat_loop(self) -> None:
        from repro.server.client import LeaseLost, fleet_heartbeat
        while not self._stop.wait(self._ttl_s / 3.0):
            try:
                faults.check("heartbeat", key=self.options.worker_id)
                fleet_heartbeat(self.options.server, self.options.worker_id)
            except LeaseLost:
                try:
                    self._register()
                except OSError:
                    pass  # next beat retries
            except Exception:  # noqa: BLE001 - a skipped beat, not a crash
                continue

    # -- the loop --------------------------------------------------------------

    def run(self) -> int:
        """Work until told to stop; returns the number of shards done."""
        from repro.server.client import (
            LeaseLost, ServerError, claim_shard, post_shard_result,
        )
        faults.activate(self.options.fault_spec)
        self._register()   # fail fast here: a bad --server is an error
        beat = threading.Thread(target=self._beat_loop, daemon=True)
        beat.start()
        idle_since = time.monotonic()

        def idled_out() -> bool:
            return (self.options.idle_exit_s is not None
                    and time.monotonic() - idle_since
                    >= self.options.idle_exit_s)

        try:
            while True:
                if (self.options.max_shards is not None
                        and self.shards_done >= self.options.max_shards):
                    return self.shards_done
                try:
                    shard = claim_shard(
                        self.options.server, self.options.worker_id
                    )
                except LeaseLost:
                    try:
                        self._register()
                    except ServerError:
                        pass  # coordinator mid-restart: poll again
                    continue
                except ServerError:
                    # Coordinator unreachable (draining, restarting, or a
                    # network blip): back off like idle time, so a
                    # restarted coordinator finds us waiting and
                    # --idle-exit bounds how long we linger if it never
                    # comes back.
                    if idled_out():
                        return self.shards_done
                    time.sleep(self.options.poll_s)
                    continue
                if shard is None:
                    if idled_out():
                        return self.shards_done
                    time.sleep(self.options.poll_s)
                    continue
                idle_since = time.monotonic()
                if self.options.fault_spec or self.options.memo_dir:
                    # Merge, don't replace: the coordinator's runtime
                    # knobs (incremental switch, scoreboard) must survive
                    # worker-local overrides.
                    shard = dict(shard)
                    runtime = dict(shard.get("runtime") or {})
                    if self.options.fault_spec:
                        runtime["fault_spec"] = self.options.fault_spec
                    if self.options.memo_dir:
                        runtime["memo_dir"] = self.options.memo_dir
                    shard["runtime"] = runtime
                result = execute_shard(shard, cache_path=self.options.cache_path)
                try:
                    post_shard_result(
                        self.options.server, self.options.worker_id,
                        result["shard_id"], result,
                    )
                except LeaseLost:
                    # The shard was rehomed while we computed it; the
                    # coordinator will drop our late duplicate anyway.
                    try:
                        self._register()
                    except ServerError:
                        pass
                except ServerError:
                    # Undeliverable result: the coordinator is gone, and
                    # with it the lease — the shard is re-planned and
                    # re-run on the next coordinator life.  Nothing to do.
                    pass
                self.shards_done += 1
        finally:
            self._stop.set()


__all__ = [
    "DEFAULT_SHARD_POINTS",
    "FleetCoordinator",
    "FleetWorker",
    "ShardPlan",
    "ShardSpec",
    "WorkerOptions",
    "execute_shard",
    "merge_shard_results",
    "plan_shards",
]
