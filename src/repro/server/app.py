"""The exploration server: HTTP intake + durable store + scheduler.

:class:`ExplorationServer` wires the three server pieces together and
owns the process-level concerns: the listening socket, signal handlers,
admission control, and the drain-on-SIGTERM contract.

Endpoint semantics (the full state machine is DESIGN.md §6.5):

=============================  =============================================
``POST /jobs``                 201 new job, 200 dedup hit (same id back),
                               429 + ``Retry-After`` when the queue is at
                               its admission limit, 503 while draining or
                               when the journal append fails
``GET /jobs/<id>``             status document; 404 unknown id
``GET /jobs/<id>/report``      202 while queued/running; 200 with the
                               worker payload (ok) or typed failure doc
``GET /healthz``               always 200 while the process lives;
                               echoes the package version
``GET /readyz``                200 accepting work, 503 draining
``GET /metrics``               Prometheus text exposition of the server
                               registry (merged worker counters included)
=============================  =============================================

Graceful shutdown: the first SIGTERM/SIGINT stops admission (``POST``
returns 503, ``/readyz`` flips), lets in-flight jobs finish, journals a
stop marker, and exits 0.  Queued-but-unstarted jobs stay in the journal
and run on the next boot with the same ``--state-dir`` — the
restart-resume path the smoke test exercises end to end.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import sys
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from repro import faults
from repro.errors import ServerError
from repro.obs import MetricsRegistry, render_prometheus, use_registry
from repro.server.admission import AdmissionController, TenantPolicy, retry_after_s
from repro.server.http import Request, Response, serve_client
from repro.server.leases import DEFAULT_LEASE_TTL_S
from repro.server.scheduler import Scheduler
from repro.server.store import DONE, JobStore, parse_submission
from repro.service.worker import execute_job
from repro.version import get_version

#: Default admission limit: submissions beyond this many queued jobs
#: bounce with 429 until the scheduler catches up.
DEFAULT_QUEUE_LIMIT = 64


class ExplorationServer:
    """One server instance; :meth:`serve` runs it until signalled.

    The HTTP handler, store, and scheduler are also usable directly (no
    socket) — the unit tests drive :meth:`handle` with synthetic
    :class:`Request` objects and run the scheduler on their own loop.
    """

    def __init__(
        self,
        state_dir: Path,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        max_concurrency: Optional[int] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        cache_path: Optional[Path] = None,
        default_timeout_s: Optional[float] = None,
        call_deadline_s: Optional[float] = None,
        cache_max_entries: Optional[int] = None,
        fault_spec: Optional[str] = None,
        worker: Callable[..., Dict[str, Any]] = execute_job,
        executor_factory: Optional[Callable[[int], Any]] = None,
        registry: Optional[MetricsRegistry] = None,
        fleet: bool = False,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        shard_points: Optional[int] = None,
        tenant_policies: Optional[Dict[str, TenantPolicy]] = None,
        journal_segment_bytes: Optional[int] = None,
        incremental: bool = True,
        memo_dir: Optional[Path] = None,
    ):
        self.state_dir = Path(state_dir)
        self.host = host
        self.port = port
        self.queue_limit = max(1, queue_limit)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.version = get_version()
        self.draining = False
        # The server consults the `server` fault site in its own
        # dispatch loop (workers get the spec via the job payload).
        faults.activate(fault_spec)
        self.admission = AdmissionController(
            policies=tenant_policies, registry=self.registry,
        )
        store_kwargs: Dict[str, Any] = {}
        if journal_segment_bytes is not None:
            store_kwargs["max_segment_bytes"] = journal_segment_bytes
        self.store = JobStore(
            self.state_dir, queue_policy=self.admission.pick_next,
            **store_kwargs,
        )
        #: incremental evaluation: on by default, memo journal under the
        #: state dir so every job (and every server life) shares one
        #: warm store.  ``memo_dir=None`` with ``incremental=False``
        #: disables cross-point reuse entirely.
        self.incremental = bool(incremental)
        self.memo_dir = (
            Path(memo_dir) if memo_dir is not None
            else (self.state_dir / "memo" if self.incremental else None)
        )
        self.coordinator = None
        if fleet:
            from repro.server.fleet import (
                DEFAULT_SHARD_POINTS, FleetCoordinator,
            )
            self.coordinator = FleetCoordinator(
                self.store,
                lease_ttl_s=lease_ttl_s,
                shard_points=shard_points or DEFAULT_SHARD_POINTS,
                incremental=self.incremental,
                memo_dir=self.memo_dir,
            )
        self.scheduler = Scheduler(
            self.store,
            self.registry,
            worker=worker,
            workers=workers,
            max_concurrency=max_concurrency,
            cache_path=cache_path,
            default_timeout_s=default_timeout_s,
            call_deadline_s=call_deadline_s,
            cache_max_entries=cache_max_entries,
            fault_spec=fault_spec,
            executor_factory=executor_factory,
            spans_path=self.state_dir / "spans.jsonl",
            incremental=self.incremental,
            memo_dir=self.memo_dir,
        )
        self._bound_port: Optional[int] = None

    # -- routing ---------------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Route one request (the :mod:`repro.server.http` handler)."""
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/jobs" and method == "POST":
            return self._submit(request)
        if path == "/fleet" or path.startswith("/fleet/"):
            return self._fleet_route(request, method, path)
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if method != "GET":
                return Response.error(405, f"{method} not allowed here")
            if rest.endswith("/report"):
                return self._report(rest[: -len("/report")])
            if "/" not in rest:
                return self._status(rest)
            return Response.error(404, f"no route for {path}")
        if method != "GET":
            return Response.error(405, f"{method} not allowed here")
        if path == "/healthz":
            return self._healthz()
        if path == "/readyz":
            return self._readyz()
        if path == "/metrics":
            return self._metrics()
        return Response.error(404, f"no route for {path}")

    def _submit(self, request: Request) -> Response:
        if self.draining:
            return Response.error(503, "server is draining; resubmit to "
                                       "the next instance")
        try:
            entry = request.json()
        except (ValueError, UnicodeDecodeError) as error:
            return Response.error(400, f"request body is not JSON: {error}")
        try:
            spec = parse_submission(entry, base_dir=self.state_dir)
            # Admission gates *new* work only: a duplicate of an
            # already-admitted job consumes no queue slot, and a
            # retrying client must always be able to find its job.
            if self.store.get(spec.id) is None:
                quota = self.admission.policy_for(spec.tenant).quota
                if self.store.queue_depth >= self.queue_limit:
                    self.registry.counter("server.jobs.rejected").inc()
                    self.admission.registry.counter(
                        "admission.rejected", tenant=spec.tenant
                    ).inc()
                    backoff = retry_after_s(self.store.queue_depth, quota)
                    return Response.error(
                        429,
                        f"queue is full ({self.queue_limit} jobs); "
                        f"retry later",
                        **{"Retry-After": str(backoff)},
                    )
                rejection = self.admission.check(
                    spec.tenant, self.store.active_counts()
                )
                if rejection is not None:
                    self.registry.counter("server.jobs.rejected").inc()
                    return Response.error(
                        429,
                        f"tenant {spec.tenant!r} is over its active-job "
                        f"quota ({quota}); retry later",
                        **{"Retry-After": str(rejection.retry_after_s)},
                    )
            job, created = self.store.submit(spec)
        except ServerError as error:
            status = 503 if "journal" in str(error) else 400
            return Response.error(status, str(error))
        except Exception as error:  # noqa: BLE001 - manifest validation
            return Response.error(400, str(error))
        if created:
            self.registry.counter("server.jobs.submitted").inc()
            self.registry.counter(
                "server.jobs.submitted", tenant=spec.tenant
            ).inc()
            self.scheduler.notify()
        else:
            self.registry.counter("server.jobs.deduped").inc()
        self.registry.gauge("server.queue_depth").set(self.store.queue_depth)
        return Response.json(201 if created else 200, {
            "job_id": job.id,
            "status": job.status,
            "created": created,
            "dedup_hits": job.dedup_hits,
        })

    def _status(self, job_id: str) -> Response:
        job = self.store.get(job_id)
        if job is None:
            return Response.error(404, f"unknown job id {job_id!r}")
        return Response.json(200, job.describe())

    def _report(self, job_id: str) -> Response:
        job = self.store.get(job_id)
        if job is None:
            return Response.error(404, f"unknown job id {job_id!r}")
        if job.status != DONE:
            return Response.json(202, {
                "job_id": job.id,
                "status": job.status,
                "detail": "not finished; poll again",
            })
        if job.result == "ok":
            return Response.json(200, {
                "job_id": job.id, "status": "ok", "result": job.payload,
            })
        return Response.json(200, {
            "job_id": job.id, "status": "failed", "failure": job.failure,
        })

    def _healthz(self) -> Response:
        doc = {
            "status": "ok",
            "version": self.version,
            "draining": self.draining,
            "jobs": self.store.counts(),
            "inflight": self.scheduler.inflight_count,
        }
        if self.coordinator is not None:
            doc["fleet"] = self.coordinator.status()
        return Response.json(200, doc)

    def _readyz(self) -> Response:
        """Ready, degraded, or draining — degraded is still 200 (the
        server answers and makes progress), but load balancers and
        humans can see the capacity loss and its reason."""
        if self.draining:
            return Response.json(503, {"ready": False, "reason": "draining"})
        if self.store.read_only:
            # The journal's disk failed (ENOSPC/EIO): reads and
            # in-flight work still serve, new submissions 503.
            return Response.json(200, {
                "ready": True, "status": "degraded",
                "reason": "journal_readonly",
                "detail": self.store.read_only_reason,
            })
        if self.scheduler.pool_failed:
            return Response.json(200, {
                "ready": True, "status": "degraded", "reason": "pool_failed",
            })
        if (
            self.coordinator is not None
            and not self.coordinator.leases.live_workers()
            and self.store.queue_depth > 0
        ):
            return Response.json(200, {
                "ready": True, "status": "degraded", "reason": "no_workers",
            })
        return Response.json(200, {"ready": True, "status": "ok"})

    # -- fleet endpoints -------------------------------------------------------

    def _fleet_route(self, request: Request, method: str,
                     path: str) -> Response:
        if self.coordinator is None:
            return Response.error(404, "fleet mode is off (start with "
                                       "--fleet)")
        if path == "/fleet" and method == "GET":
            return Response.json(200, self.coordinator.status())
        if method != "POST":
            return Response.error(405, f"{method} not allowed here")
        try:
            body = request.json()
        except (ValueError, UnicodeDecodeError) as error:
            return Response.error(400, f"request body is not JSON: {error}")
        if not isinstance(body, dict):
            return Response.error(400, "fleet requests take a JSON object")
        worker_id = body.get("worker")
        if not isinstance(worker_id, str) or not worker_id:
            return Response.error(400, "fleet requests need a 'worker' id")
        if path == "/fleet/workers":
            if self.draining:
                return Response.error(503, "server is draining")
            return Response.json(201, self.coordinator.register(worker_id))
        if path == "/fleet/heartbeat":
            if not self.coordinator.heartbeat(worker_id):
                return Response.error(
                    410, f"worker {worker_id!r} holds no live lease; "
                         f"re-register",
                )
            return Response.json(200, {"ok": True})
        if path == "/fleet/claim":
            if self.draining:
                return Response.json(200, {"shard": None})
            try:
                shard = self.coordinator.claim(worker_id)
            except Exception as error:  # noqa: BLE001 - lease gone
                return Response.error(410, str(error))
            return Response.json(200, {"shard": shard})
        if path == "/fleet/result":
            shard_id = body.get("shard_id")
            result = body.get("result")
            if not isinstance(shard_id, str) or not isinstance(result, dict):
                return Response.error(
                    400, "fleet results need 'shard_id' and 'result'",
                )
            accepted = self.coordinator.complete(worker_id, shard_id, result)
            return Response.json(200, {"ok": True, "accepted": accepted})
        return Response.error(404, f"no route for {path}")

    def _metrics(self) -> Response:
        self.registry.gauge("server.queue_depth").set(self.store.queue_depth)
        return Response.text(200, render_prometheus(self.registry.snapshot()))

    # -- lifecycle -------------------------------------------------------------

    def begin_shutdown(self) -> None:
        """Stop admission and ask the scheduler to drain (idempotent)."""
        self.draining = True
        self.scheduler.begin_drain()

    @property
    def bound_port(self) -> Optional[int]:
        return self._bound_port

    async def run_async(
        self, port_file: Optional[Path] = None, banner=None
    ) -> Dict[str, int]:
        """Listen, schedule, drain on signal; returns the drain summary."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            # RuntimeError/ValueError: not the main thread (embedded or
            # test use) — the embedder drives begin_shutdown itself.
            with contextlib.suppress(
                NotImplementedError, RuntimeError, ValueError
            ):
                loop.add_signal_handler(signum, self.begin_shutdown)
        server = await asyncio.start_server(
            lambda r, w: serve_client(r, w, self.handle),
            host=self.host, port=self.port,
        )
        self._bound_port = server.sockets[0].getsockname()[1]
        if port_file is not None:
            Path(port_file).write_text(f"{self._bound_port}\n")
        if banner is not None:
            banner(self)
        with use_registry(self.registry):
            try:
                if self.coordinator is not None:
                    # Fleet mode: the coordinator owns claim_next; the
                    # lease sweep runs until drain.  Unfinished shards
                    # are durable (shard_done journal records) and are
                    # adopted by the next coordinator life.
                    await self.coordinator.run(
                        stopping=lambda: self.draining
                    )
                else:
                    await self.scheduler.run()   # returns when drained
            finally:
                server.close()
                with contextlib.suppress(Exception):
                    await server.wait_closed()
        counts = self.store.counts()
        self.store.close(reason="drain")
        return counts

    def serve(self, port_file: Optional[Path] = None, stream=None) -> int:
        """Blocking entry point for the CLI; returns the exit code."""
        out = stream if stream is not None else sys.stdout

        def banner(server: "ExplorationServer") -> None:
            resumed = (
                self.store.resumed_queued + self.store.resumed_running
            )
            print(
                f"repro server {self.version} listening on "
                f"http://{self.host}:{server.bound_port} "
                f"(state: {self.state_dir}, resumed {resumed} queued, "
                f"adopted {self.store.resumed_done} done)",
                file=out, flush=True,
            )

        counts = asyncio.run(self.run_async(port_file=port_file,
                                            banner=banner))
        print(
            "drained: "
            + json.dumps(counts, sort_keys=True)
            + f" (journal: {self.store.path})",
            file=out, flush=True,
        )
        return 0
