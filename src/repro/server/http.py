"""A minimal asyncio HTTP/1.1 frontend for the exploration server.

The standard library's ``http.server`` is thread-per-request and blocks;
the exploration server lives on one asyncio loop next to its scheduler,
so the HTTP layer is hand-rolled on ``asyncio.start_server``: read a
request line, headers, and an optional ``Content-Length`` body, dispatch
to the application, write one response, close.  ``Connection: close``
per request keeps the protocol surface tiny — the clients are a CLI, a
smoke script, and a Prometheus scraper, none of which need keep-alive.

The layer knows nothing about jobs.  It parses requests into
(:class:`Request`) and renders (:class:`Response`) — routing and
semantics live in :mod:`repro.server.app`, which hands ``serve_client``
a single ``handler(request) -> Response`` callable.  Malformed requests
(oversized bodies, bad JSON, missing routes) are mapped to 4xx responses
here so the application only ever sees well-formed input.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

#: Submissions are small JSON documents; anything bigger is abuse.
MAX_BODY_BYTES = 1 << 20
#: Request line + headers must arrive within this window.
READ_TIMEOUT_S = 10.0

_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    408: "Request Timeout", 409: "Conflict", 410: "Gone",
    413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body as JSON; raises ``ValueError`` on garbage."""
        if not self.body:
            raise ValueError("empty request body")
        return json.loads(self.body.decode("utf-8"))


@dataclass
class Response:
    """One response to render; helpers build the common shapes."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(cls, status: int, doc: Any, **headers: str) -> "Response":
        body = (json.dumps(doc, indent=2) + "\n").encode()
        return cls(status, body, "application/json", dict(headers))

    @classmethod
    def text(cls, status: int, text: str, **headers: str) -> "Response":
        return cls(
            status, text.encode(), "text/plain; version=0.0.4",
            dict(headers),
        )

    @classmethod
    def error(cls, status: int, message: str, **headers: str) -> "Response":
        return cls.json(status, {"error": message}, **headers)

    def render(self) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            "Connection: close",
        ]
        lines.extend(f"{k}: {v}" for k, v in self.headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode()
        return head + self.body


Handler = Callable[[Request], Response]


async def read_request(
    reader: asyncio.StreamReader,
) -> Tuple[Optional[Request], Optional[Response]]:
    """Parse one request; returns ``(request, None)`` or ``(None, error
    response)`` — exactly one side is set.  ``(None, None)`` means the
    peer closed before sending anything (not an error)."""
    try:
        line = await asyncio.wait_for(reader.readline(), READ_TIMEOUT_S)
    except asyncio.TimeoutError:
        return None, Response.error(408, "timed out reading request")
    if not line.strip():
        return None, None
    parts = line.decode("latin-1").split()
    if len(parts) != 3:
        return None, Response.error(400, "malformed request line")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    while True:
        try:
            raw = await asyncio.wait_for(reader.readline(), READ_TIMEOUT_S)
        except asyncio.TimeoutError:
            return None, Response.error(408, "timed out reading headers")
        text = raw.decode("latin-1").strip()
        if not text:
            break
        name, _, value = text.partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        return None, Response.error(400, "bad Content-Length")
    if length > MAX_BODY_BYTES:
        return None, Response.error(
            413, f"request body exceeds {MAX_BODY_BYTES} bytes"
        )
    if length:
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), READ_TIMEOUT_S
            )
        except (asyncio.TimeoutError, asyncio.IncompleteReadError):
            return None, Response.error(400, "truncated request body")
    path = target.split("?", 1)[0]
    return Request(method.upper(), path, headers, body), None


async def serve_client(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    handler: Handler,
) -> None:
    """One connection, one request, one response."""
    try:
        request, error = await read_request(reader)
        if request is None and error is None:
            return
        if error is None:
            try:
                error_or_ok = handler(request)
            except Exception as exc:  # noqa: BLE001 - boundary
                error_or_ok = Response.error(500, f"internal error: {exc}")
            response = error_or_ok
        else:
            response = error
        writer.write(response.render())
        await writer.drain()
    except (ConnectionError, OSError):
        pass  # peer vanished mid-write; nothing to salvage
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
