"""The asyncio scheduler that drains the server's job queue.

One coroutine (:meth:`Scheduler.run`) owns the dispatch loop: whenever a
worker slot is free and admission has not been stopped, it claims the
oldest queued job from the :class:`~repro.server.store.JobStore` and
spawns a task that drives that job to a terminal state.  Execution
itself reuses the batch engine's worker function
(:func:`repro.service.worker.execute_job`) on a ``concurrent.futures``
process pool, so a server job and a batch job run byte-identical code —
same estimation guard, same shared-cache discipline, same typed failure
taxonomy (:class:`~repro.service.runner.JobFailure` is imported, not
reimplemented).

Robustness, layer by layer:

* **Per-estimator-call deadlines** ride the job payload's ``runtime``
  map into the worker's :class:`~repro.service.guard.EstimationGuard`,
  exactly as in batch mode.
* **Per-job timeouts** are enforced from the event loop with
  ``asyncio.wait_for`` over the pool future; a timed-out future that
  cannot be cancelled means a stuck worker process, so the pool is
  marked dirty and recycled — the batch runner's fresh-pool-per-wave
  reclaim, adapted to a long-lived service.
* **Retries**: transient failures (crash, timeout, deadline, foreign
  exceptions) retry up to the job's ``max_attempts`` without giving up
  the slot; permanent failures terminate immediately.
* **Degraded mode**: when a process pool cannot be created (or
  ``workers=0`` asks for it), jobs run in-process on a dedicated
  single worker thread — same worker function, no timeout preemption,
  and serialized on purpose: the worker installs the process-wide
  ambient tracer/registry while it runs, so in-process jobs must not
  overlap.  The ``server.pool_unavailable`` counter records the
  degradation.

Fault site ``server`` is consulted once per dispatch (keyed by the job
id), which is where the chaos suite injects ``kill`` to murder the
scheduler mid-drain and prove the journal brings everything back.

Observability: worker metrics snapshots merge into the server's ambient
registry the moment a job finishes (the live numbers ``GET /metrics``
serves), and worker spans append to ``<state-dir>/spans.jsonl``.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional

from repro import faults
from repro.obs import MetricsRegistry
from repro.server.store import JobStore, ServerJob
from repro.service.runner import JobFailure
from repro.service.worker import execute_job

#: How long the dispatch loop dozes when there is nothing to do (s).
_IDLE_POLL_S = 0.05

#: Latency buckets for whole jobs (seconds) — wider than estimator-call
#: buckets because a job spans a whole exploration.
JOB_SECONDS_BUCKETS = (0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0, 1800.0)


class Scheduler:
    """Drains the store's queue through a bounded worker pool.

    Args:
        store: the durable queue + archive.
        registry: the server's metrics registry (merged worker numbers
            land here; ``/metrics`` renders it).
        worker: the job-execution callable; module-level (picklable)
            when a process pool is used.  Injectable for tests.
        workers: process-pool size; ``0`` forces degraded in-process
            (thread) execution — no preemption, but no pickling either,
            which is what the unit tests want for stub workers.
        max_concurrency: jobs in flight at once (defaults to
            ``max(1, workers)``).
        cache_path: shared estimate cache file handed to every worker.
        default_timeout_s / call_deadline_s / cache_max_entries /
            fault_spec: per-job runtime knobs, as on the batch runner.
        executor_factory: builds the pool from a worker count —
            injectable so tests can substitute a thread pool.
    """

    def __init__(
        self,
        store: JobStore,
        registry: MetricsRegistry,
        worker: Callable[..., Dict[str, Any]] = execute_job,
        workers: int = 2,
        max_concurrency: Optional[int] = None,
        cache_path: Optional[Path] = None,
        default_timeout_s: Optional[float] = None,
        call_deadline_s: Optional[float] = None,
        cache_max_entries: Optional[int] = None,
        fault_spec: Optional[str] = None,
        executor_factory: Optional[Callable[[int], Any]] = None,
        spans_path: Optional[Path] = None,
        incremental: bool = True,
        memo_dir: Optional[Path] = None,
    ):
        self.store = store
        self.registry = registry
        self.worker = worker
        self.workers = max(0, int(workers))
        self.max_concurrency = max(
            1, max_concurrency if max_concurrency is not None else self.workers
        )
        self.cache_path = str(cache_path) if cache_path else None
        self.default_timeout_s = default_timeout_s
        self.call_deadline_s = call_deadline_s
        self.cache_max_entries = cache_max_entries
        self.fault_spec = fault_spec
        self.incremental = bool(incremental)
        self.memo_dir = str(memo_dir) if memo_dir else None
        self.executor_factory = executor_factory or (
            lambda count: ProcessPoolExecutor(max_workers=count)
        )
        self.spans_path = Path(spans_path) if spans_path else None
        self.draining = False
        #: flipped when a pool could not be built and the scheduler fell
        #: back to in-process serial execution — ``/readyz`` reports it
        #: as a degraded (but still ready) status.
        self.pool_failed = False
        self._executor: Optional[Any] = None
        self._serial: Optional[Any] = None
        self._executor_dead = False
        self._inflight: "set[asyncio.Task]" = set()
        self._wake: Optional[asyncio.Event] = None

    # -- loop interface --------------------------------------------------------

    def notify(self) -> None:
        """Wake the dispatch loop (new submission, drain request)."""
        if self._wake is not None:
            self._wake.set()

    def begin_drain(self) -> None:
        """Stop claiming queued jobs; :meth:`run` returns once the
        in-flight ones finish.  Queued jobs stay journaled."""
        self.draining = True
        self.notify()

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    async def run(self) -> None:
        """The dispatch loop; returns after a drain completes."""
        self._wake = asyncio.Event()
        try:
            while True:
                if self.draining:
                    if self._inflight:
                        await asyncio.wait(set(self._inflight))
                        continue
                    return
                job = None
                if (len(self._inflight) < self.max_concurrency
                        and not self.store.read_only):
                    # A read-only store (failed disk) stops *new* claims:
                    # each claim journals job_started, and starting work
                    # whose result cannot be journaled widens the replay
                    # window for nothing.  In-flight jobs finish.
                    job = self.store.claim_next()
                if job is None:
                    await self._doze()
                    continue
                faults.check("server", key=job.id)
                task = asyncio.create_task(self._drive(job))
                self._inflight.add(task)
                task.add_done_callback(self._task_done)
        finally:
            self._shutdown_executor(wait=True)
            self._wake = None

    async def _doze(self) -> None:
        self._wake.clear()
        # Re-check state at least every poll tick even without a notify
        # (belt-and-braces against a lost wakeup).
        try:
            await asyncio.wait_for(self._wake.wait(), _IDLE_POLL_S)
        except asyncio.TimeoutError:
            pass

    def _task_done(self, task: asyncio.Task) -> None:
        self._inflight.discard(task)
        if not task.cancelled() and task.exception() is not None:
            # _drive never raises by design; a bug here must be visible,
            # not silently swallowed by the task machinery.
            self.registry.counter("server.scheduler.errors").inc()
        self.notify()

    # -- one job ---------------------------------------------------------------

    async def _drive(self, job: ServerJob) -> None:
        """Run one claimed job to a terminal state (never raises)."""
        started = time.monotonic()
        while True:
            try:
                payload = await self._execute(job)
            except asyncio.CancelledError:
                raise
            except BaseException as error:  # noqa: BLE001 - typed below
                failure = self._classify(error)
                if failure.transient and job.attempts < job.spec.max_attempts:
                    self.registry.counter("server.jobs.retried").inc()
                    self.store.note_retry(job)
                    continue
                self.store.finish_failed(job, failure.as_dict())
                self.registry.counter(
                    "server.jobs.failed", kind=failure.kind
                ).inc()
                break
            self._absorb_obs(payload)
            self.store.finish_ok(job, payload)
            self._note_strategy(job, payload)
            self.registry.counter("server.jobs.completed").inc()
            break
        self.registry.histogram(
            "server.job_seconds", boundaries=JOB_SECONDS_BUCKETS
        ).observe(time.monotonic() - started)
        self.registry.gauge("server.queue_depth").set(self.store.queue_depth)

    def _note_strategy(self, job: ServerJob, payload: Any) -> None:
        """Fold one finished job into the store's durable scoreboard —
        the batch runner's win criterion (a real speedup without a
        degraded baseline), journaled so the tally survives restarts."""
        if not isinstance(payload, Mapping):
            return
        from repro.dse import DEFAULT_STRATEGY
        selection = payload.get("strategy_selection")
        if isinstance(selection, Mapping):
            self.store.record_strategy_selected(
                job.id, selection.get("strategy"),
                reason=selection.get("reason", ""),
                features=selection.get("features"),
            )
        strategy = payload.get("strategy") or DEFAULT_STRATEGY
        speedup = payload.get("speedup")
        won = (
            isinstance(speedup, (int, float)) and speedup >= 1.0
            and not payload.get("baseline_degraded")
        )
        self.store.record_strategy_outcome(
            job.id, strategy, won, speedup=speedup,
            points_searched=payload.get("points_searched"),
        )
        self.registry.counter(
            "dse.strategy.outcome", strategy=strategy, won=str(won).lower()
        ).inc()

    def _classify(self, error: BaseException) -> JobFailure:
        if isinstance(error, _JobTimeout):
            return JobFailure.timeout(error.timeout_s)
        if isinstance(error, BrokenProcessPool):
            return JobFailure.crash()
        return JobFailure.from_exception(error)

    async def _execute(self, job: ServerJob) -> Dict[str, Any]:
        """One attempt on the pool (or degraded thread), under timeout."""
        executor = self._ensure_executor()
        if executor is None:
            executor = self._ensure_serial()
        payload = self._payload(job.spec)
        pool_future = executor.submit(
            self.worker, payload, self.cache_path
        )
        future = asyncio.wrap_future(pool_future)
        timeout_s = (
            job.spec.timeout_s
            if job.spec.timeout_s is not None else self.default_timeout_s
        )
        try:
            if timeout_s is None:
                return await future
            return await asyncio.wait_for(asyncio.shield(future), timeout_s)
        except asyncio.TimeoutError:
            if not pool_future.cancel():
                # Already running: the worker is stuck and cannot be
                # reclaimed through the executor API.  Recycle the pool.
                self._executor_dead = True
            _swallow(future)
            raise _JobTimeout(timeout_s or 0.0) from None
        except BrokenProcessPool:
            self._executor_dead = True
            raise

    def _payload(self, spec) -> Dict[str, Any]:
        """Spec payload + the server's runtime knobs (mirrors the batch
        runner's contract so ``execute_job`` cannot tell who called)."""
        payload = spec.to_payload()
        runtime: Dict[str, Any] = {}
        deadline = spec.call_deadline_s or self.call_deadline_s
        if deadline is not None:
            runtime["call_deadline_s"] = deadline
        if self.cache_max_entries is not None:
            runtime["cache_max_entries"] = self.cache_max_entries
        if self.fault_spec is not None:
            runtime["fault_spec"] = self.fault_spec
        if not self.incremental:
            runtime["incremental"] = False
        if self.memo_dir is not None:
            runtime["memo_dir"] = self.memo_dir
        # Ship the durable win-rate tallies so a worker resolving
        # ``--strategy auto`` consults everything every previous server
        # life learned, not just this boot's outcomes.
        scoreboard = self.store.scoreboard_snapshot()
        if scoreboard:
            runtime["scoreboard"] = scoreboard
        if runtime:
            payload["runtime"] = runtime
        return payload

    # -- pool management -------------------------------------------------------

    def _ensure_executor(self) -> Optional[Any]:
        """The live pool, recycled after crashes; ``None`` = degraded."""
        if self.workers == 0:
            return None
        if self._executor_dead and self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._executor_dead = False
        if self._executor is None:
            try:
                self._executor = self.executor_factory(self.workers)
            except Exception:  # noqa: BLE001 - degrade, don't die
                self.registry.counter("server.pool_unavailable").inc()
                self.workers = 0
                self.pool_failed = True
                return None
        return self._executor

    def _ensure_serial(self) -> Any:
        """The degraded-mode executor: one thread, on purpose — the
        worker installs the process-wide ambient tracer and registry
        while it runs, so in-process jobs must never overlap (two
        interleaved restores would leak one job's tracer globally)."""
        if self._serial is None:
            self._serial = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve-degraded"
            )
        return self._serial

    def _shutdown_executor(self, wait: bool) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=wait and not self._executor_dead,
                                    cancel_futures=True)
            self._executor = None
        if self._serial is not None:
            # Never wait here: a timed-out in-process worker may be
            # stuck on this thread, and drain must not hang behind it.
            self._serial.shutdown(wait=False, cancel_futures=True)
            self._serial = None

    # -- observations ----------------------------------------------------------

    def _absorb_obs(self, payload: Dict[str, Any]) -> None:
        """Fold a worker's shipped observations into the server's."""
        if not isinstance(payload, dict):
            return
        obs = payload.pop("obs", None)
        if not isinstance(obs, Mapping):
            return
        metrics = obs.get("metrics")
        if isinstance(metrics, Mapping):
            self.registry.merge(metrics)
        spans = obs.get("spans")
        if spans and self.spans_path is not None:
            try:
                self.spans_path.parent.mkdir(parents=True, exist_ok=True)
                with open(self.spans_path, "a") as stream:
                    for span in spans:
                        stream.write(json.dumps(span) + "\n")
            except (OSError, TypeError, ValueError):
                self.registry.counter("obs.spans.dropped").inc(len(spans))


class _JobTimeout(Exception):
    """Internal marker: one attempt overran its wall-clock budget."""

    def __init__(self, timeout_s: float):
        self.timeout_s = timeout_s
        super().__init__(f"timed out after {timeout_s:.1f}s")


def _swallow(future: asyncio.Future) -> None:
    """Detach from an abandoned future without leaking 'exception was
    never retrieved' warnings when it eventually fails."""
    def _done(f: asyncio.Future) -> None:
        if not f.cancelled():
            f.exception()
    future.add_done_callback(_done)
