"""The server's durable job store: submissions that survive restarts.

The exploration server accepts jobs over HTTP and must not forfeit them
when the process dies — deploys restart, boxes reboot, chaos tests kill.
The store is the PR-2 ledger idea applied to a long-lived service: an
append-only, fsync'd JSONL journal (``jobs.jsonl`` under the server's
``--state-dir``) recording every submission, attempt start, and terminal
result.  Opening the store replays the journal: finished jobs are
adopted verbatim (their reports stay servable), jobs that were *running*
when the process died are re-enqueued at their recorded attempt, and
queued jobs simply stay queued — the restart-resume contract the smoke
test pins down with estimator-call counts.

Idempotent submission: a job's identity is the hash of its
result-determining fields (program, board, search and pipeline options —
the same field set as :func:`repro.service.ledger.spec_hash`, minus the
caller-chosen id).  Submitting an identical JobSpec twice returns the
existing job — same id, no second execution — which is what makes the
server safe to sit behind retrying clients: a client that times out and
resubmits cannot double-charge the estimator.

Journal event vocabulary (every record stamps ``schema_version`` like
the ledger and telemetry streams):

=================  ==========================================================
``server_start``   one per boot; records the package version
``job_submitted``  full spec payload + submission hash (the durable intake)
``job_started``    one attempt begins (``attempt`` counts from 1)
``job_done``       terminal: ``status`` ok/failed, payload or typed failure
``server_stop``    graceful shutdown; queued jobs listed for the next boot
=================  ==========================================================

Durability discipline: ``job_submitted`` **must** reach disk before the
client hears 201 — an append failure raises
:class:`~repro.errors.ServerError` (the HTTP layer maps it to 503), so
the server never acknowledges work it could lose.  ``job_started`` and
``job_done`` appends degrade to counted drops instead (losing one only
costs a re-run on the *next* restart), matching the ledger's crash-window
analysis.

Since PR 8 the journal sits on :mod:`repro.durable.journal`: every
record is CRC32-framed (still one plain-JSON line — the checksum is a
``crc32`` field, so pre-checksum journals replay unchanged and every
existing reader keeps working), the journal rotates into numbered
segments, and rotation triggers snapshot compaction once enough closed
segments accumulate.  Replay distinguishes a torn tail (damage on the
final line of the final segment — the process died mid-append, skipped
as before) from mid-file corruption (the disk lied): corrupt records
are counted on :attr:`JobStore.corrupt_records` and the
``journal.corrupt_records`` metric, moved to the ``jobs.quarantine``
sidecar, and replay continues.  A failed append with ENOSPC/EIO flips
the store into **read-only degradation**: new submissions are refused
(503 via the required-append contract), in-flight work finishes on
in-memory state, and ``/readyz`` reports ``journal_readonly``.
"""

from __future__ import annotations

import errno
import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.durable.journal import (
    DEFAULT_SEGMENT_BYTES,
    SNAPSHOT_EVENT,
    DurableJournal,
    JournalScan,
    quarantine_records,
    scan_journal,
)
from repro.errors import ServerError
from repro.obs import current_registry
from repro.obs.events import SCHEMA_VERSION
from repro.service.jobs import DEFAULT_TENANT, JobSpec, parse_manifest
from repro.version import get_version

JOURNAL_NAME = "jobs.jsonl"

#: Segment-file prefix (``jobs.jsonl`` is segment zero, rotation
#: continues into ``jobs.0001.jsonl``…).
JOURNAL_PREFIX = "jobs"

#: Rotations auto-compact once this many closed segments accumulate.
DEFAULT_COMPACT_SEGMENTS = 4

#: The errnos that flip the store read-only: the medium is out from
#: under us, and every further append would fail the same way.  A
#: transient EINTR or a bad file descriptor is a bug, not a disk state,
#: and stays on the counted-drop path.
_READONLY_ERRNOS = (errno.ENOSPC, errno.EIO, errno.EROFS, errno.EDQUOT)

#: Job lifecycle states (terminal states carry an ok/failed status too).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"

#: Events replay folds into live state (jobs, or the strategy
#: scoreboard for ``strategy_outcome``).
_REPLAY_FOLDED = (
    "job_submitted", "job_started", "job_done", "strategy_outcome",
)

#: Events replay recognizes but deliberately ignores: process markers,
#: the fleet vocabulary (the coordinator replays those itself via
#: :meth:`JobStore.replay_records`), and informational strategy
#: decisions (the scoreboard folds outcomes, not selections).
_REPLAY_IGNORED = frozenset({
    "server_start", "server_stop",
    "worker_registered", "lease_renewed", "lease_expired",
    "shard_dispatched", "shard_rehomed", "shard_done",
    "strategy_selected",
})


def submission_hash(spec: JobSpec) -> str:
    """Hash of the fields that determine a submission's *result*.

    Unlike :func:`repro.service.ledger.spec_hash` the caller-chosen id
    is excluded: two clients submitting the same exploration under
    different names are asking the same question, and the server should
    answer it once.  Robustness knobs (timeout, attempts, deadline) are
    excluded for the same reason they are excluded from the ledger hash.
    """
    doc = {
        "program": spec.program,
        "board": spec.board,
        "search": dict(spec.search),
        "pipeline": dict(spec.pipeline),
    }
    # Estimation settings determine the result, so they are part of a
    # submission's identity — but only when non-default, which keeps
    # job ids from pre-backend clients (and their dedup hits) stable.
    if spec.backend != "analytic":
        doc["backend"] = spec.backend
    if spec.fidelity != "single":
        doc["fidelity"] = spec.fidelity
    # A named tenant owns its own job ids (tenant A's submission must
    # not dedup against tenant B's quota-free copy), but the default
    # tenant stays out of the hash so pre-tenant ids are unchanged.
    if spec.tenant != DEFAULT_TENANT:
        doc["tenant"] = spec.tenant
    encoded = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode()).hexdigest()


def job_id_for(spec: JobSpec) -> str:
    """The server-assigned id: stable, collision-resistant, and equal
    for dedup-identical submissions by construction."""
    return f"job-{submission_hash(spec)[:12]}"


def parse_submission(entry: Any, base_dir: Optional[Path] = None) -> JobSpec:
    """Validate one submitted job object into a :class:`JobSpec`.

    Accepts exactly the manifest job shape (``program``, ``board``,
    ``search``, ``pipeline``, ``timeout_s``, ``max_attempts``,
    ``call_deadline_s``) or a bare program string, reusing the manifest
    validator so the HTTP surface and the batch CLI reject identically.
    The spec's id is replaced with the server-assigned dedup id; a
    client-sent id is accepted but only echoed back as ``client_id``
    metadata, never used for identity.
    """
    import dataclasses
    if isinstance(entry, str):
        entry = {"program": entry}
    if not isinstance(entry, Mapping):
        raise ServerError("a job submission must be an object or a "
                          "program string")
    manifest = parse_manifest(
        {"jobs": [dict(entry)]}, source="<submit>", base_dir=base_dir,
    )
    spec = manifest.jobs[0]
    return dataclasses.replace(spec, id=job_id_for(spec))


@dataclass
class ServerJob:
    """One submission's full lifecycle, as the store tracks it."""

    spec: JobSpec
    hash: str
    status: str = QUEUED               # queued | running | done
    result: Optional[str] = None       # ok | failed (once done)
    attempts: int = 0
    submitted_ts: float = 0.0
    started_ts: Optional[float] = None
    finished_ts: Optional[float] = None
    payload: Optional[Dict[str, Any]] = None
    failure: Optional[Dict[str, Any]] = None
    #: duplicate submissions absorbed by dedup (observability only)
    dedup_hits: int = 0
    #: adopted from the journal by a restart, not run by this process
    resumed: bool = False

    @property
    def id(self) -> str:
        return self.spec.id

    def describe(self) -> Dict[str, Any]:
        """The ``GET /jobs/<id>`` status document."""
        doc: Dict[str, Any] = {
            "job_id": self.id,
            "status": self.status,
            "attempts": self.attempts,
            "submitted_ts": self.submitted_ts,
            "dedup_hits": self.dedup_hits,
            "program": self.spec.program,
            "board": self.spec.board,
        }
        if self.status == DONE:
            doc["result"] = self.result
        if self.started_ts is not None:
            doc["started_ts"] = self.started_ts
        if self.finished_ts is not None:
            doc["finished_ts"] = self.finished_ts
        if self.failure is not None:
            doc["failure"] = self.failure
        if self.resumed:
            doc["resumed"] = True
        return doc


class JobStore:
    """The journal-backed queue + result archive behind the server.

    Thread-safe: the asyncio server runs everything on one loop, but the
    dedup-under-concurrency tests (and any embedding that drives the
    store from threads) hammer :meth:`submit` concurrently, so every
    mutation holds one lock.
    """

    def __init__(self, state_dir: Path, clock=time.time, queue_policy=None,
                 max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 max_segment_age_s: Optional[float] = None,
                 compact_segments: int = DEFAULT_COMPACT_SEGMENTS,
                 passive: bool = False):
        self.state_dir = Path(state_dir)
        #: segment zero — kept for compatibility with every reader that
        #: knows the journal by its pre-rotation name.
        self.path = self.state_dir / JOURNAL_NAME
        self.jobs: Dict[str, ServerJob] = {}
        self.dropped_writes = 0
        self._queue: List[str] = []       # job ids, FIFO
        self._clock = clock
        #: optional claim policy: given the queued jobs (oldest first),
        #: return the id to claim next.  ``None`` = FIFO.  The admission
        #: controller plugs weighted fair queueing in here.
        self._queue_policy = queue_policy
        self._lock = threading.Lock()
        self.resumed_queued = 0
        self.resumed_running = 0
        self.resumed_done = 0
        #: journal lines whose event name this build does not know —
        #: skipped and counted (forward compatibility: a newer build's
        #: lease/shard events must not abort an older build's resume).
        self.skipped_events = 0
        #: mid-file checksum/parse failures found on replay — quarantined
        #: to ``jobs.quarantine``, never silently skipped.
        self.corrupt_records = 0
        #: the last replay ended on a torn final line (crash mid-append).
        self.torn_tail = False
        #: ENOSPC/EIO on append flipped the store read-only; new
        #: submissions are refused, in-flight work finishes in memory.
        self.read_only = False
        self.read_only_reason: Optional[str] = None
        self.compact_segments = max(1, int(compact_segments))
        #: passive stores (fsck, offline tooling) replay and can compact
        #: but never journal lifecycle markers of their own.
        self.passive = passive
        #: events carried inside a replayed snapshot that replay does not
        #: fold into job state (``shard_done`` of unfinished jobs, future
        #: vocabulary) — surfaced by :meth:`replay_records`.
        self._snapshot_events: List[Dict[str, Any]] = []
        #: per-strategy win/trial tallies, folded from journaled
        #: ``strategy_outcome`` events on every boot — what makes
        #: ``--strategy auto`` remember across restarts.
        from repro.dse.selector import StrategyScoreboard
        self.scoreboard = StrategyScoreboard()
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self._replay()
        self._journal = DurableJournal(
            self.state_dir, JOURNAL_PREFIX, clock=clock,
            max_segment_bytes=max_segment_bytes,
            max_segment_age_s=max_segment_age_s,
        )
        if not passive:
            self._journal.open()
            self._append({"event": "server_start", "version": get_version()},
                         required=False)

    # -- replay ----------------------------------------------------------------

    def _replay(self) -> None:
        """Fold the journal's segments into live state (fresh dirs no-op).

        Damage taxonomy (the satellite-1 fix): only the *final* line of
        the *final* segment may be a torn write — skipped, as the
        crash-window analysis always allowed.  Any earlier unparseable
        or checksum-failed line is corruption: counted, quarantined to
        the sidecar, and replayed *past*, never silently skipped.  A
        ``journal_snapshot`` record resets state to its checkpoint and
        replay continues with the events that followed it.
        """
        scan = scan_journal(self.state_dir, JOURNAL_PREFIX)
        if not scan.segments:
            return
        self._note_damage(scan)
        order: List[str] = []
        for record in scan.records:
            event = record.get("event")
            if event == SNAPSHOT_EVENT:
                order = self._fold_snapshot(record)
                continue
            if event not in _REPLAY_FOLDED and event not in _REPLAY_IGNORED:
                # A future producer's event type: skip it, count it,
                # keep resuming — never abort on vocabulary we predate.
                self.skipped_events += 1
                continue
            if event == "strategy_outcome":
                strategy = record.get("strategy")
                if isinstance(strategy, str) and strategy:
                    self.scoreboard.record(strategy, bool(record.get("won")))
                continue
            if event == "job_submitted":
                job = self._job_from_record(record)
                if job is not None and job.id not in self.jobs:
                    self.jobs[job.id] = job
                    order.append(job.id)
            elif event == "job_started":
                job = self.jobs.get(record.get("job_id"))
                if job is not None and job.status != DONE:
                    attempt = record.get("attempt", 1)
                    job.attempts = max(
                        job.attempts,
                        attempt if isinstance(attempt, int) else 1,
                    )
                    job.status = RUNNING
                    job.started_ts = record.get("ts")
            elif event == "job_done":
                job = self.jobs.get(record.get("job_id"))
                if job is not None:
                    job.status = DONE
                    job.result = record.get("status", "failed")
                    job.attempts = record.get("attempts", job.attempts)
                    job.payload = record.get("payload")
                    job.failure = record.get("failure")
                    job.finished_ts = record.get("ts")
        for job_id in order:
            job = self.jobs[job_id]
            if job.status == DONE:
                job.resumed = True
                self.resumed_done += 1
            elif job.status == RUNNING:
                # in flight when the last process died: run it again
                job.status = QUEUED
                self.resumed_running += 1
                self._queue.append(job_id)
            else:
                self.resumed_queued += 1
                self._queue.append(job_id)

    def _note_damage(self, scan: JournalScan) -> None:
        """Count and quarantine a scan's damage (idempotent: the sidecar
        dedups, and the counter is the journal's current damage, so
        re-reading the same unrepaired journal does not inflate it)."""
        if scan.corrupt:
            quarantine_records(
                self.state_dir, JOURNAL_PREFIX, scan.corrupt,
                clock=self._clock,
            )
        new = len(scan.corrupt) - self.corrupt_records
        if new > 0:
            current_registry().counter("journal.corrupt_records").inc(new)
        self.corrupt_records = max(self.corrupt_records, len(scan.corrupt))
        self.torn_tail = scan.torn_tail is not None

    # -- snapshot fold / build -------------------------------------------------

    def _fold_snapshot(self, record: Mapping[str, Any]) -> List[str]:
        """Reset to a compaction checkpoint; returns the new job order."""
        state = record.get("state")
        if not isinstance(state, Mapping):
            return list(self.jobs)
        self.jobs.clear()
        self._queue.clear()
        from repro.dse.selector import StrategyScoreboard
        board = state.get("scoreboard")
        self.scoreboard = StrategyScoreboard.from_dict(
            board if isinstance(board, Mapping) else {}
        )
        self._snapshot_events = [
            dict(event) for event in state.get("events", ())
            if isinstance(event, Mapping)
        ]
        order: List[str] = []
        for doc in state.get("jobs", ()):
            if not isinstance(doc, Mapping):
                continue
            job = self._job_from_record(doc)
            if job is None or job.id in self.jobs:
                continue
            job.status = doc.get("status", QUEUED)
            job.result = doc.get("result")
            attempts = doc.get("attempts", 0)
            job.attempts = attempts if isinstance(attempts, int) else 0
            job.started_ts = doc.get("started_ts")
            job.finished_ts = doc.get("finished_ts")
            job.payload = doc.get("payload")
            job.failure = doc.get("failure")
            self.jobs[job.id] = job
            order.append(job.id)
        return order

    def _job_snapshot(self, job: ServerJob) -> Dict[str, Any]:
        """One job's checkpoint document (replayable by
        :meth:`_fold_snapshot` via the ``job_submitted`` field shape)."""
        doc: Dict[str, Any] = {
            "job_id": job.id,
            "hash": job.hash,
            "spec": _spec_record(job.spec),
            "status": job.status,
            "attempts": job.attempts,
            "ts": job.submitted_ts,
        }
        if job.result is not None:
            doc["result"] = job.result
        if job.started_ts is not None:
            doc["started_ts"] = job.started_ts
        if job.finished_ts is not None:
            doc["finished_ts"] = job.finished_ts
        if job.payload is not None:
            doc["payload"] = job.payload
        if job.failure is not None:
            doc["failure"] = job.failure
        return doc

    def compact(self) -> Path:
        """Fold the journal into one snapshot checkpoint (atomic).

        Completed jobs, expired leases, dispatch history, and done
        shards of finished jobs fold into the checkpoint; ``shard_done``
        records of *unfinished* jobs and events whose vocabulary this
        build predates are carried through verbatim — compaction must
        never destroy information a newer build (or the fleet
        coordinator) still needs.
        """
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> Path:
        scan = scan_journal(self.state_dir, JOURNAL_PREFIX)
        candidates: List[Dict[str, Any]] = []
        for record in scan.records:
            if record.get("event") == SNAPSHOT_EVENT:
                state = record.get("state")
                if isinstance(state, Mapping):
                    candidates.extend(
                        dict(event) for event in state.get("events", ())
                        if isinstance(event, Mapping)
                    )
                continue
            candidates.append(record)
        retained: List[Dict[str, Any]] = []
        for record in candidates:
            event = record.get("event")
            if event == "shard_done":
                job = self.jobs.get(record.get("job_id"))
                if job is not None and job.status != DONE:
                    retained.append(record)
                continue
            if event in _REPLAY_FOLDED or event in _REPLAY_IGNORED:
                continue
            retained.append(record)  # unknown vocabulary: never destroy
        state = {
            "jobs": [self._job_snapshot(job) for job in self.jobs.values()],
            "events": retained,
            "scoreboard": self.scoreboard.as_dict(),
        }
        path = self._journal.compact(state, schema_version=SCHEMA_VERSION)
        self._snapshot_events = retained
        return path

    def _job_from_record(self, record: Mapping[str, Any]) -> Optional[ServerJob]:
        payload = record.get("spec")
        if not isinstance(payload, Mapping):
            return None
        try:
            spec = JobSpec.from_payload(payload)
            spec = _with_knobs(spec, payload)
        except (KeyError, TypeError):
            return None
        return ServerJob(
            spec=spec,
            hash=record.get("hash") or submission_hash(spec),
            submitted_ts=record.get("ts", 0.0),
        )

    # -- intake ----------------------------------------------------------------

    def submit(self, spec: JobSpec) -> Tuple[ServerJob, bool]:
        """Admit one validated spec; returns ``(job, created)``.

        ``created=False`` means dedup hit: the spec's hash matched an
        existing job (queued, running, or already done) and that job is
        returned untouched.  The journal append for a *new* job must
        succeed — see the module docstring's durability discipline.
        """
        with self._lock:
            existing = self.jobs.get(spec.id)
            if existing is not None:
                existing.dedup_hits += 1
                return existing, False
            if self.read_only:
                # Dedup hits above still answer — reads are fine — but a
                # *new* job would need a journal append the disk cannot
                # give us.  Refuse before touching the medium again.
                raise ServerError(
                    f"cannot journal submission to {self.path}: store is "
                    f"read-only ({self.read_only_reason})"
                )
            job = ServerJob(
                spec=spec,
                hash=submission_hash(spec),
                submitted_ts=self._clock(),
            )
            self._append({
                "event": "job_submitted",
                "job_id": job.id,
                "hash": job.hash,
                "spec": _spec_record(spec),
            }, required=True)
            self.jobs[job.id] = job
            self._queue.append(job.id)
            return job, True

    # -- scheduling ------------------------------------------------------------

    def claim_next(self) -> Optional[ServerJob]:
        """Pop the next queued job and mark its next attempt started.

        "Next" is FIFO unless a queue policy was installed, in which
        case the policy picks among the queued jobs (weighted fair
        queueing across tenants); a policy that errors or answers with
        an id not in the queue falls back to FIFO rather than stalling
        the dispatch loop.
        """
        with self._lock:
            if not self._queue:
                return None
            chosen = self._queue[0]
            if self._queue_policy is not None:
                try:
                    picked = self._queue_policy(
                        [self.jobs[job_id] for job_id in self._queue]
                    )
                except Exception:  # noqa: BLE001 - policy must not stall
                    picked = None
                if picked in self._queue:
                    chosen = picked
            self._queue.remove(chosen)
            job = self.jobs[chosen]
            job.status = RUNNING
            job.attempts += 1
            job.started_ts = self._clock()
            self._append({
                "event": "job_started", "job_id": job.id,
                "attempt": job.attempts,
            }, required=False)
            return job

    def note_retry(self, job: ServerJob) -> None:
        """Journal the start of a retry attempt (the job keeps running)."""
        with self._lock:
            job.attempts += 1
            self._append({
                "event": "job_started", "job_id": job.id,
                "attempt": job.attempts,
            }, required=False)

    def finish_ok(self, job: ServerJob, payload: Dict[str, Any]) -> None:
        with self._lock:
            job.status = DONE
            job.result = "ok"
            job.payload = payload
            job.finished_ts = self._clock()
            self._append({
                "event": "job_done", "job_id": job.id, "status": "ok",
                "attempts": job.attempts, "payload": payload,
            }, required=False)

    def finish_failed(self, job: ServerJob, failure: Dict[str, Any]) -> None:
        with self._lock:
            job.status = DONE
            job.result = "failed"
            job.failure = failure
            job.finished_ts = self._clock()
            self._append({
                "event": "job_done", "job_id": job.id, "status": "failed",
                "attempts": job.attempts, "failure": failure,
            }, required=False)

    # -- strategy scoreboard ---------------------------------------------------

    def record_strategy_outcome(
        self,
        job_id: str,
        strategy: str,
        won: bool,
        speedup: Optional[float] = None,
        points_searched: Optional[int] = None,
    ) -> None:
        """Fold one finished job into the win-rate ledger and journal
        the typed ``strategy_outcome`` event (v1 vocabulary shared with
        the batch ledger).  The fold happens even when the append drops:
        the running process keeps learning, and only a restart inside
        the drop window forgets this one outcome."""
        with self._lock:
            self.scoreboard.record(strategy, won)
            self._append({
                "event": "strategy_outcome", "job_id": job_id,
                "strategy": strategy, "won": won, "speedup": speedup,
                "points_searched": points_searched,
                "trials": self.scoreboard.trials(strategy),
                "win_rate": self.scoreboard.win_rate(strategy),
            }, required=False)

    def record_strategy_selected(
        self, job_id: str, strategy: Optional[str],
        reason: str = "", features: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Journal one ``auto`` selection decision (informational)."""
        with self._lock:
            self._append({
                "event": "strategy_selected", "job_id": job_id,
                "strategy": strategy, "reason": reason,
                "features": dict(features) if features else None,
            }, required=False)

    def scoreboard_snapshot(self) -> Dict[str, Dict[str, Any]]:
        """The current win-rate tallies (primitives; safe to ship to
        workers in a job payload's runtime map)."""
        with self._lock:
            return self.scoreboard.as_dict()

    # -- queries ---------------------------------------------------------------

    def get(self, job_id: str) -> Optional[ServerJob]:
        with self._lock:
            return self.jobs.get(job_id)

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def counts(self) -> Dict[str, int]:
        """Lifecycle totals for ``/readyz`` and the drain summary."""
        with self._lock:
            queued = len(self._queue)
            running = sum(
                1 for job in self.jobs.values() if job.status == RUNNING
            )
            done = sum(1 for job in self.jobs.values() if job.status == DONE)
        return {"queued": queued, "running": running, "done": done}

    def active_counts(self) -> Dict[str, int]:
        """Per-tenant queued+running totals — the admission controller's
        quota denominator."""
        with self._lock:
            totals: Dict[str, int] = {}
            for job in self.jobs.values():
                if job.status in (QUEUED, RUNNING):
                    tenant = job.spec.tenant
                    totals[tenant] = totals.get(tenant, 0) + 1
            return totals

    # -- fleet journal access --------------------------------------------------

    def append_event(self, record: Dict[str, Any], required: bool = False) -> None:
        """Journal one caller-shaped event (the fleet coordinator's
        lease/shard vocabulary) through the same fsync'd stream.

        The record must carry an ``event`` name; ``ts`` and
        ``schema_version`` are stamped here like every other append.
        """
        with self._lock:
            self._append(dict(record), required=required)

    def replay_records(self) -> List[Dict[str, Any]]:
        """Re-read the journal and return every verified record.

        The fleet coordinator uses this on restart to adopt completed
        shards (``shard_done``) without re-dispatching them.  Records a
        snapshot carried through compaction are spliced in after the
        snapshot record, so consumers see the same event stream whether
        or not a compaction happened in between.  Damage follows the
        replay taxonomy: a torn tail is skipped, mid-file corruption is
        counted and quarantined (the sidecar dedups, so repeated reads
        of the same unrepaired journal stay idempotent).
        """
        with self._lock:
            scan = scan_journal(self.state_dir, JOURNAL_PREFIX)
            self._note_damage(scan)
        records: List[Dict[str, Any]] = []
        for record in scan.records:
            records.append(record)
            if record.get("event") == SNAPSHOT_EVENT:
                state = record.get("state")
                if isinstance(state, Mapping):
                    records.extend(
                        dict(event) for event in state.get("events", ())
                        if isinstance(event, Mapping)
                    )
        return records

    # -- lifecycle -------------------------------------------------------------

    def close(self, reason: str = "shutdown") -> None:
        """Journal the stop marker and close the journal (idempotent)."""
        with self._lock:
            if self._journal.closed:
                return
            if not self.passive:
                self._append({
                    "event": "server_stop", "reason": reason,
                    "queued": len(self._queue),
                }, required=False)
            self._journal.close()

    # -- journal append --------------------------------------------------------

    def _append(self, record: Dict[str, Any], required: bool) -> None:
        """One framed, fsync'd journal line.

        ``required=True`` (submissions) raises :class:`ServerError` on
        failure — the caller must not acknowledge undurable work;
        ``required=False`` degrades to a counted drop, like the ledger.
        ENOSPC/EIO additionally flips the store read-only: the medium
        failed, and hammering it once per request only turns one disk
        problem into a 503 storm.  Rotation triggered by this append
        auto-compacts once enough closed segments accumulate.
        """
        record = {
            "ts": self._clock(),
            "schema_version": SCHEMA_VERSION,
            **record,
        }
        try:
            rotated = self._journal.append(record)
        except (OSError, TypeError, ValueError) as error:
            if isinstance(error, OSError) and error.errno in _READONLY_ERRNOS:
                self._enter_read_only(error)
            if required:
                raise ServerError(
                    f"cannot journal submission to {self.path}: {error}"
                ) from None
            self.dropped_writes += 1
            current_registry().counter("server.store.dropped").inc()
            return
        if rotated and self._journal.closed_segment_count() >= \
                self.compact_segments:
            try:
                self._compact_locked()
            except OSError as error:
                if error.errno in _READONLY_ERRNOS:
                    self._enter_read_only(error)

    def _enter_read_only(self, error: OSError) -> None:
        if self.read_only:
            return
        self.read_only = True
        self.read_only_reason = (
            f"journal append failed: {error.strerror or error}"
        )
        current_registry().counter("journal.readonly_entered").inc()


def _spec_record(spec: JobSpec) -> Dict[str, Any]:
    """The journaled submission payload (robustness knobs included, so a
    restart re-runs the job under the same timeout discipline)."""
    record = spec.to_payload()
    record.pop("runtime", None)
    if spec.timeout_s is not None:
        record["timeout_s"] = spec.timeout_s
    record["max_attempts"] = spec.max_attempts
    return record


def _with_knobs(spec: JobSpec, payload: Mapping[str, Any]) -> JobSpec:
    """Restore the knobs ``JobSpec.from_payload`` does not carry."""
    import dataclasses
    changes: Dict[str, Any] = {}
    timeout_s = payload.get("timeout_s")
    if isinstance(timeout_s, (int, float)):
        changes["timeout_s"] = float(timeout_s)
    max_attempts = payload.get("max_attempts")
    if isinstance(max_attempts, int) and max_attempts >= 1:
        changes["max_attempts"] = max_attempts
    return dataclasses.replace(spec, **changes) if changes else spec
