"""repro.server — the persistent exploration service.

A long-running, stdlib-only HTTP server over the batch engine: durable
job intake (:mod:`repro.server.store`), an asyncio dispatch loop over
the process pool (:mod:`repro.server.scheduler`), a minimal HTTP/1.1
frontend (:mod:`repro.server.http`), the wired application
(:mod:`repro.server.app`), and a urllib client
(:mod:`repro.server.client`) behind the ``repro submit`` / ``status`` /
``result`` CLI verbs.

Fleet mode (``serve --fleet``) layers horizontal scale on top: a shard
coordinator with worker leases and crash rehoming
(:mod:`repro.server.fleet`, :mod:`repro.server.leases`) plus
multi-tenant admission (:mod:`repro.server.admission`).  Attach workers
with ``python -m repro worker --server http://…``.

Start one with ``python -m repro serve --state-dir runs/server`` — see
the README's "Running as a service" / "Scaling out" walkthroughs and
DESIGN.md §6.5/§6.7 for the state machine and failure model.
"""

from repro.server.admission import (
    AdmissionController,
    Rejection,
    TenantPolicy,
    parse_tenant_policy,
)
from repro.server.app import DEFAULT_QUEUE_LIMIT, ExplorationServer
from repro.server.client import (
    LeaseLost,
    QueueFull,
    claim_shard,
    fleet_heartbeat,
    fleet_status,
    job_report,
    job_status,
    post_shard_result,
    register_worker,
    server_health,
    server_metrics,
    submit_job,
)
from repro.server.fleet import (
    FleetCoordinator,
    FleetWorker,
    WorkerOptions,
    execute_shard,
    merge_shard_results,
    plan_shards,
)
from repro.server.leases import DEFAULT_LEASE_TTL_S, Lease, LeaseTable
from repro.server.scheduler import Scheduler
from repro.server.store import (
    JobStore,
    ServerJob,
    job_id_for,
    parse_submission,
    submission_hash,
)

__all__ = [
    "AdmissionController",
    "DEFAULT_LEASE_TTL_S",
    "DEFAULT_QUEUE_LIMIT",
    "ExplorationServer",
    "FleetCoordinator",
    "FleetWorker",
    "JobStore",
    "Lease",
    "LeaseLost",
    "LeaseTable",
    "QueueFull",
    "Rejection",
    "Scheduler",
    "ServerJob",
    "TenantPolicy",
    "WorkerOptions",
    "claim_shard",
    "execute_shard",
    "fleet_heartbeat",
    "fleet_status",
    "job_id_for",
    "job_report",
    "job_status",
    "merge_shard_results",
    "parse_submission",
    "parse_tenant_policy",
    "plan_shards",
    "post_shard_result",
    "register_worker",
    "server_health",
    "server_metrics",
    "submission_hash",
    "submit_job",
]
