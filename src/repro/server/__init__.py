"""repro.server — the persistent exploration service.

A long-running, stdlib-only HTTP server over the batch engine: durable
job intake (:mod:`repro.server.store`), an asyncio dispatch loop over
the process pool (:mod:`repro.server.scheduler`), a minimal HTTP/1.1
frontend (:mod:`repro.server.http`), the wired application
(:mod:`repro.server.app`), and a urllib client
(:mod:`repro.server.client`) behind the ``repro submit`` / ``status`` /
``result`` CLI verbs.

Start one with ``python -m repro serve --state-dir runs/server`` — see
the README's "Running as a service" walkthrough and DESIGN.md §6.5 for
the state machine and failure model.
"""

from repro.server.app import DEFAULT_QUEUE_LIMIT, ExplorationServer
from repro.server.client import (
    QueueFull,
    job_report,
    job_status,
    server_health,
    server_metrics,
    submit_job,
)
from repro.server.scheduler import Scheduler
from repro.server.store import (
    JobStore,
    ServerJob,
    job_id_for,
    parse_submission,
    submission_hash,
)

__all__ = [
    "DEFAULT_QUEUE_LIMIT",
    "ExplorationServer",
    "QueueFull",
    "job_report",
    "job_status",
    "server_health",
    "server_metrics",
    "submit_job",
    "Scheduler",
    "JobStore",
    "ServerJob",
    "job_id_for",
    "parse_submission",
    "submission_hash",
]
