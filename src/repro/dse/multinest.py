"""Multi-nest applications: several loop nests sharing one FPGA.

Section 3's third optimization criterion exists because "the smaller
design ... frees up space for other uses of the FPGA logic, such as to
map other loop nests."  This module follows through: given a program
whose body is a *sequence* of loop nests, it explores each nest
independently and then fits the selections into the shared device.

Allocation policy (greedy, documented rather than clever):

1. explore every nest with the full device as its capacity;
2. if the summed selections fit — done;
3. otherwise repeatedly re-explore the nest with the largest selected
   design under a proportionally reduced capacity until everything fits
   (falling back to each nest's baseline design, which always exists).

The result carries per-nest selections plus whole-application cycles
(nests execute sequentially) and space (designs coexist).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.dse.explorer import ExplorationResult, ExploreConfig, explore
from repro.errors import SearchError
from repro.ir.stmt import For
from repro.ir.symbols import Program
from repro.synthesis.operators import OperatorLibrary
from repro.target.board import Board
from repro.target.fpga import FPGAModel
from repro.transform.pipeline import PipelineOptions


@dataclass
class MultiNestResult:
    """Per-nest explorations plus application-level totals."""

    program_name: str
    board_name: str
    nests: List[ExplorationResult]

    @property
    def total_cycles(self) -> int:
        """Nests run back to back on the shared datapath."""
        return sum(result.selected.cycles for result in self.nests)

    @property
    def total_space(self) -> int:
        """Designs coexist on the device."""
        return sum(result.selected.space for result in self.nests)

    @property
    def baseline_cycles(self) -> int:
        return sum(result.baseline.cycles for result in self.nests)

    @property
    def speedup(self) -> float:
        if self.total_cycles == 0:
            return float("inf")
        return self.baseline_cycles / self.total_cycles

    def fits(self, board: Board) -> bool:
        return board.fpga.fits(self.total_space)

    def report(self) -> str:
        lines = [f"application {self.program_name} on {self.board_name}"]
        for index, result in enumerate(self.nests):
            lines.append(
                f"  nest {index} ({result.program_name}): "
                f"U={result.selected.unroll} "
                f"{result.selected.cycles} cycles, {result.selected.space} slices"
            )
        lines.append(
            f"  total: {self.total_cycles} cycles, {self.total_space} slices, "
            f"speedup {self.speedup:.2f}x over baselines"
        )
        return "\n".join(lines)


def split_nests(program: Program) -> List[Program]:
    """One sub-program per top-level loop nest.

    Every nest's sub-program keeps the full declaration list (nests may
    share arrays — the first nest's output feeding the second's input is
    the normal case).  Non-loop top-level statements are rejected: their
    placement relative to the nests is ambiguous for hardware mapping.
    """
    nests: List[Program] = []
    for position, stmt in enumerate(program.body):
        if not isinstance(stmt, For):
            raise SearchError(
                "multi-nest exploration needs a body of top-level loops; "
                f"statement {position} is {type(stmt).__name__}"
            )
        nests.append(Program(f"{program.name}_nest{position}", program.decls, (stmt,)))
    if not nests:
        raise SearchError(f"program {program.name!r} has no loop nests")
    return nests


def explore_application(
    program: Program,
    board: Board,
    pipeline_options: Optional[PipelineOptions] = None,
    library: Optional[OperatorLibrary] = None,
    max_rounds: int = 8,
) -> MultiNestResult:
    """Explore every nest of a multi-nest program under a shared device."""
    nests = split_nests(program)
    capacities = [board.fpga.capacity_slices] * len(nests)
    results: List[Optional[ExplorationResult]] = [None] * len(nests)

    def run(index: int) -> ExplorationResult:
        shrunk = replace(
            board,
            fpga=FPGAModel(
                name=board.fpga.name,
                capacity_slices=max(capacities[index], 1),
                luts_per_slice=board.fpga.luts_per_slice,
                ff_per_slice=board.fpga.ff_per_slice,
            ),
        )
        return explore(
            nests[index], shrunk,
            config=ExploreConfig(pipeline=pipeline_options, library=library),
        )

    for index in range(len(nests)):
        results[index] = run(index)

    for _round in range(max_rounds):
        total = sum(result.selected.space for result in results)
        if total <= board.fpga.capacity_slices:
            break
        # shrink the largest consumer's budget toward its fair share
        largest = max(range(len(nests)), key=lambda i: results[i].selected.space)
        overshoot = total - board.fpga.capacity_slices
        new_capacity = max(
            results[largest].selected.space - overshoot,
            results[largest].baseline.space,
        )
        if new_capacity >= capacities[largest]:
            break  # cannot shrink further
        capacities[largest] = new_capacity
        results[largest] = run(largest)

    return MultiNestResult(
        program_name=program.name,
        board_name=board.name,
        nests=[result for result in results if result is not None],
    )
