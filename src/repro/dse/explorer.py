"""Top-level exploration API.

``explore(program, board)`` runs the whole paper pipeline for one loop
nest: saturation analysis, balance-guided search (Figure 2), baseline
evaluation, and the bookkeeping behind the paper's headline numbers
(speedup over the no-unrolling baseline, fraction of the design space
searched).
"""

from __future__ import annotations

import warnings
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.dse.failures import PointDiagnostic
from repro.dse.saturation import SaturationInfo, analyze_saturation
from repro.dse.search import BalanceGuidedSearch, SearchOptions, SearchResult, TraceStep
from repro.dse.selector import SelectionDecision, select_strategy
from repro.dse.space import DesignEvaluation, DesignSpace
from repro.dse.strategy import DEFAULT_STRATEGY, get_strategy
from repro.errors import SearchError
from repro.estimate.backends import get_backend
from repro.estimate.differential import DifferentialReport, validate_run
from repro.estimate.multifidelity import ConfirmationResult, confirm_selection
from repro.ir.symbols import Program
from repro.obs import ObsConfig, Tracer, current_tracer, use_registry, use_tracer
from repro.synthesis.operators import OperatorLibrary
from repro.target.board import Board
from repro.transform.pipeline import PipelineOptions
from repro.transform.unroll import UnrollVector


@dataclass
class ExplorationResult:
    """Everything the paper reports about one kernel's exploration."""

    program_name: str
    board_name: str
    selected: DesignEvaluation
    baseline: DesignEvaluation
    search: SearchResult
    design_space_size: int
    points_searched: int
    #: diagnostics for design points that failed and were skipped
    #: (fail-soft search); empty on a clean run.
    infeasible: Tuple[PointDiagnostic, ...] = ()
    #: the no-unrolling baseline itself failed, so ``baseline`` is the
    #: selected design standing in (speedup degenerates to 1.0).
    baseline_degraded: bool = False
    #: id of the estimation backend the walk navigated on.
    backend: str = "analytic"
    #: ``--fidelity=multi`` only: the authoritative re-estimates of the
    #: selected and baseline designs.
    confirmation: Optional[ConfirmationResult] = None
    #: ``--fidelity=multi`` only: cross-backend rank agreement and
    #: Observation 1-3 checks over sampled visited points.
    differential: Optional[DifferentialReport] = None
    #: id of the search strategy that drove the walk.
    strategy: str = DEFAULT_STRATEGY
    #: ``--strategy auto`` only: what the selector picked and why.
    strategy_selection: Optional[SelectionDecision] = None
    #: incremental-evaluation stats for this run (hits/misses/
    #: invalidations and memo sizes); ``None`` with ``--no-incremental``.
    memo_stats: Optional[dict] = None

    @property
    def speedup(self) -> float:
        """Cycle-count speedup of the selected design over the baseline
        (the Table 2 metric)."""
        if self.selected.cycles == 0:
            return float("inf")
        return self.baseline.cycles / self.selected.cycles

    @property
    def fraction_searched(self) -> float:
        """Points synthesized over the full design space size (the
        "0.3 % of the design space" metric)."""
        return self.points_searched / self.design_space_size

    @property
    def saturation(self) -> SaturationInfo:
        return self.search.saturation

    def report(self) -> str:
        lines = [
            f"kernel {self.program_name} on {self.board_name}",
        ]
        if self.strategy != DEFAULT_STRATEGY:
            lines.append(f"  strategy: {self.strategy}")
        if self.strategy_selection is not None:
            lines.append(f"    auto: {self.strategy_selection.reason}")
        lines.extend([
            f"  saturation: R={self.saturation.read_sets} "
            f"W={self.saturation.write_sets} Psat={self.saturation.psat}",
            f"  initial point: U={self.search.initial}",
        ])
        for step in self.search.trace:
            lines.append(f"    {step}")
        lines.append(
            f"  selected U={self.selected.unroll}: "
            f"{self.selected.estimate.summary()}"
        )
        if self.baseline_degraded:
            lines.append(
                "  baseline: infeasible (using selected design as reference)"
            )
        else:
            lines.append(
                f"  baseline: {self.baseline.estimate.summary()}"
            )
        if self.infeasible:
            lines.append(f"  infeasible points: {len(self.infeasible)}")
            for diagnostic in self.infeasible:
                lines.append(f"    {diagnostic}")
        lines.append(
            f"  speedup {self.speedup:.2f}x, searched {self.points_searched} "
            f"of {self.design_space_size} points "
            f"({100 * self.fraction_searched:.2f}%)"
        )
        for switch in self.search.fidelity_switches:
            lines.append(
                f"  fidelity switch at U={list(switch.unroll)}: "
                f"{switch.from_backend} -> {switch.to_backend}, "
                f"cycles {switch.cycles_before} -> {switch.cycles_after} "
                f"({switch.reason})"
            )
        if self.confirmation is not None:
            confirmation = self.confirmation
            lines.append(
                f"  fidelity: multi "
                f"(navigate={confirmation.navigation_backend}, "
                f"confirm={confirmation.backend})"
            )
            lines.append(
                f"  navigation selected ({confirmation.navigation_backend}): "
                f"{confirmation.navigation_selected.summary()}"
            )
            if confirmation.selected is not None:
                lines.append(
                    f"  confirmed selected ({confirmation.backend}): "
                    f"{confirmation.selected.summary()}"
                )
            if confirmation.selected_cycle_error is not None:
                lines.append(
                    f"  navigation cycle error: "
                    f"{100 * confirmation.selected_cycle_error:.2f}%"
                )
            if confirmation.baseline is not None:
                lines.append(
                    f"  confirmed baseline ({confirmation.backend}): "
                    f"{confirmation.baseline.summary()}"
                )
            if confirmation.confirmed_speedup is not None:
                lines.append(
                    f"  confirmed speedup "
                    f"{confirmation.confirmed_speedup:.2f}x"
                )
            if confirmation.error:
                lines.append(
                    f"  confirmation failed: {confirmation.error}"
                )
        if self.differential is not None:
            for line in self.differential.table().render().splitlines():
                lines.append(f"  {line}")
            for violation in self.differential.violations:
                lines.append(f"  monotonicity violation: {violation}")
            for failure in self.differential.failures:
                lines.append(f"  differential estimate failed: {failure}")
        return "\n".join(lines)


@dataclass
class ExploreConfig:
    """The single configuration object :func:`explore` accepts.

    Bundles every exploration knob that used to travel as its own
    keyword argument, plus the observability configuration:

    Attributes:
        search: Figure-2 tunables (balance tolerance, iteration cap).
        pipeline: code-generation knobs (outer-loop reuse, layout...).
        library: operator latency/area calibration.
        pinned_depths: loops to exclude from unrolling entirely; when
            omitted, loops that add no memory parallelism are pinned
            automatically (the paper fixes MM's innermost loop this way).
        estimate_cache: pluggable evaluation backend — a
            :class:`repro.synthesis.EstimateCache` (or compatible
            object with a ``synthesize(program, board, plan, library)``
            method) that serves estimates instead of direct synthesis.
            The batch service passes a process-shared cache here.
        obs: how to observe the run (:class:`repro.obs.ObsConfig`).
            ``None`` leaves the ambient tracer/registry alone — spans
            still flow to whatever an enclosing orchestrator installed.
        backend: which estimation backend the walk navigates on — a
            registered id (``analytic``/``placeroute``/``interp``), an
            :class:`repro.estimate.EstimatorBackend` instance, or
            ``None`` for the analytic default.
        fidelity: ``"single"`` (default) estimates everything on
            ``backend``; ``"multi"`` additionally re-estimates the
            selected and baseline designs on ``confirm_backend`` and
            runs the differential validator over sampled visited points.
        confirm_backend: the authoritative backend for ``"multi"``
            confirmation; ``None`` defaults to ``interp``.
        differential_samples: how many visited points the validator
            re-estimates per run.
        differential_seed: seed for the validator's point sampling.
    """

    search: Optional[SearchOptions] = None
    pipeline: Optional[PipelineOptions] = None
    library: Optional[OperatorLibrary] = None
    pinned_depths: Optional[Tuple[int, ...]] = None
    estimate_cache: Optional[Any] = None
    obs: Optional[ObsConfig] = None
    backend: Optional[Any] = None
    fidelity: str = "single"
    confirm_backend: Optional[Any] = None
    differential_samples: int = 6
    differential_seed: int = 0
    #: ``--strategy auto`` only: recorded per-strategy win rates
    #: (:class:`repro.dse.selector.StrategyScoreboard`) the selector may
    #: consult; ``None`` selects from space features alone.
    scoreboard: Optional[Any] = None
    #: incremental evaluation (cross-point reuse via
    #: :mod:`repro.incremental`) — on by default; ``--no-incremental``
    #: turns it off and every point runs from scratch.
    incremental: bool = True
    #: an existing :class:`repro.incremental.MemoStore` to reuse (the
    #: batch worker and fleet shard paths share one per process);
    #: ``None`` constructs a fresh store per call.
    memo: Optional[Any] = None
    #: directory for the persistent memo journal (convention:
    #: ``<run-dir or state-dir>/memo``); only consulted when ``memo``
    #: is ``None``.  ``None`` keeps the memo ephemeral.
    memo_dir: Optional[Any] = None


#: Legacy keyword names in their historical positional order, mapped to
#: the :class:`ExploreConfig` fields that replaced them.
_LEGACY_EXPLORE_PARAMS = (
    ("search_options", "search"),
    ("pipeline_options", "pipeline"),
    ("library", "library"),
    ("pinned_depths", "pinned_depths"),
    ("estimate_cache", "estimate_cache"),
)


def _coerce_legacy_explore(
    config: Optional[ExploreConfig],
    args: Tuple[Any, ...],
    kwargs: dict,
) -> ExploreConfig:
    """Fold a pre-redesign ``explore()`` call shape into a config,
    warning (not breaking) per the deprecation policy."""
    if config is not None:
        raise TypeError(
            "explore() takes either config=ExploreConfig(...) or the "
            "deprecated individual options, not both"
        )
    if len(args) > len(_LEGACY_EXPLORE_PARAMS):
        raise TypeError(
            f"explore() takes at most {2 + len(_LEGACY_EXPLORE_PARAMS)} "
            f"positional arguments"
        )
    legacy_names = [name for name, _ in _LEGACY_EXPLORE_PARAMS]
    merged = dict(zip(legacy_names, args))
    for key, value in kwargs.items():
        if key not in legacy_names:
            raise TypeError(
                f"explore() got an unexpected keyword argument {key!r}"
            )
        if key in merged:
            raise TypeError(f"explore() got multiple values for {key!r}")
        merged[key] = value
    warnings.warn(
        "passing explore() options individually "
        f"({sorted(merged)}) is deprecated; pass "
        "explore(program, board, config=ExploreConfig(...)) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return ExploreConfig(**{
        field_name: merged[legacy]
        for legacy, field_name in _LEGACY_EXPLORE_PARAMS
        if legacy in merged
    })


def explore(
    program: Program,
    board: Board,
    *legacy_args: Any,
    config: Optional[ExploreConfig] = None,
    **legacy_kwargs: Any,
) -> ExplorationResult:
    """Run the full DEFACTO design space exploration for one loop nest.

    Args:
        program: a compiled C-subset program containing one loop nest.
        board: the synthesis target (e.g. ``wildstar_pipelined()``).
        config: every exploration knob, bundled — see
            :class:`ExploreConfig`.

    The pre-redesign call shape (``search_options=``,
    ``pipeline_options=``, ``library=``, ``pinned_depths=``,
    ``estimate_cache=``, individually or positionally) still works but
    raises :class:`DeprecationWarning`.

    Returns an :class:`ExplorationResult`; ``result.selected`` carries
    the chosen design (transformed program, layout plan, estimate).
    When ``config.obs`` is enabled, the run's spans and metrics are
    collected on ``config.obs.tracer`` / ``config.obs.metrics``
    (materialized in place if the caller left them ``None``), and spans
    are additionally appended to ``config.obs.spans_path`` if set.
    """
    if legacy_args or legacy_kwargs:
        config = _coerce_legacy_explore(config, legacy_args, legacy_kwargs)
    config = config or ExploreConfig()
    obs = config.obs
    with ExitStack() as stack:
        if obs is not None:
            stack.enter_context(use_tracer(obs.active_tracer()))
            if obs.enabled:
                stack.enter_context(use_registry(obs.metrics))
        memo = None
        if config.incremental:
            from repro.incremental.memo import use_memo
            memo = config.memo
            if memo is None:
                from repro.incremental.journal import open_memo
                memo = open_memo(config.memo_dir)
            stack.enter_context(use_memo(memo))
        with current_tracer().span(
            "dse.explore", kernel=program.name, board=board.name
        ) as span:
            result = _explore(program, board, config)
            span.set_attribute("backend", result.backend)
            span.set_attribute("strategy", result.strategy)
            span.set_attribute("fidelity", config.fidelity)
            span.set_attribute("points_searched", result.points_searched)
            span.set_attribute("design_space_size", result.design_space_size)
            span.set_attribute("speedup", result.speedup)
            span.set_attribute("baseline_degraded", result.baseline_degraded)
            span.set_attribute("incremental", config.incremental)
        if memo is not None:
            # Flush before reading the counters: a failed or damaged
            # journal write counts invalidations, and those belong in
            # this run's stats.
            memo.flush()
            result.memo_stats = {
                "hits": memo.hits,
                "misses": memo.misses,
                "invalidations": memo.invalidations,
                "entries": memo.counts(),
            }
    if (
        obs is not None
        and obs.enabled
        and obs.spans_path is not None
        and isinstance(obs.tracer, Tracer)
    ):
        obs.tracer.write_jsonl(obs.spans_path, mode="a")
    return result


def _explore(
    program: Program, board: Board, config: ExploreConfig
) -> ExplorationResult:
    if config.fidelity not in ("single", "multi"):
        raise SearchError(
            f"unknown fidelity {config.fidelity!r}; use 'single' or 'multi'"
        )
    backend = get_backend(config.backend)
    search_options = config.search or SearchOptions()
    # A first space to discover the saturation structure, possibly
    # re-created with automatic pins.
    space = DesignSpace(
        program, board, config.pipeline, config.library, config.pinned_depths,
        estimate_cache=config.estimate_cache, backend=backend,
    )
    if config.pinned_depths is None:
        saturation = analyze_saturation(program, board.num_memories)
        varying = set(saturation.memory_varying_depths)
        auto_pins = tuple(
            depth for depth in range(space.depth) if depth not in varying
        )
        if auto_pins:
            space = DesignSpace(
                program, board, config.pipeline, config.library, auto_pins,
                estimate_cache=config.estimate_cache, backend=backend,
            )

    requested = getattr(search_options, "strategy", None) or DEFAULT_STRATEGY
    selection = None
    if requested == "auto":
        selection = select_strategy(space, config.scoreboard)
        strategy = get_strategy(selection.strategy)
    else:
        strategy = get_strategy(requested)

    confirmer = None
    if config.fidelity == "multi":
        confirmer = get_backend(config.confirm_backend or "interp")

    result = strategy.run(space, search_options, confirm_backend=confirmer)
    # Fail-soft baseline: a baseline that cannot be evaluated (typically
    # under injected faults — the unrolled points were fine) degrades to
    # the selected design as its own reference instead of aborting the
    # whole exploration.
    baseline = space.try_evaluate(space.baseline_vector())
    baseline_degraded = baseline is None
    if baseline is None:
        baseline = result.selected

    confirmation = None
    differential = None
    if config.fidelity == "multi":
        confirmation = confirm_selection(
            result.selected, baseline, board, confirmer, backend,
            library=space.library, estimate_cache=config.estimate_cache,
        )
        differential = validate_run(
            space.evaluated(), board, [backend, confirmer],
            library=space.library, estimate_cache=config.estimate_cache,
            samples=config.differential_samples,
            seed=config.differential_seed, kernel=program.name,
        )

    return ExplorationResult(
        program_name=program.name,
        board_name=board.name,
        selected=result.selected,
        baseline=baseline,
        search=result,
        design_space_size=space.size(),
        points_searched=space.points_evaluated,
        infeasible=tuple(space.infeasible_points()),
        baseline_degraded=baseline_degraded,
        backend=backend.id,
        confirmation=confirmation,
        differential=differential,
        strategy=result.strategy,
        strategy_selection=selection,
    )
