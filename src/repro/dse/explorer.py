"""Top-level exploration API.

``explore(program, board)`` runs the whole paper pipeline for one loop
nest: saturation analysis, balance-guided search (Figure 2), baseline
evaluation, and the bookkeeping behind the paper's headline numbers
(speedup over the no-unrolling baseline, fraction of the design space
searched).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.dse.failures import PointDiagnostic
from repro.dse.saturation import SaturationInfo
from repro.dse.search import BalanceGuidedSearch, SearchOptions, SearchResult, TraceStep
from repro.dse.space import DesignEvaluation, DesignSpace
from repro.ir.symbols import Program
from repro.synthesis.operators import OperatorLibrary
from repro.target.board import Board
from repro.transform.pipeline import PipelineOptions
from repro.transform.unroll import UnrollVector


@dataclass
class ExplorationResult:
    """Everything the paper reports about one kernel's exploration."""

    program_name: str
    board_name: str
    selected: DesignEvaluation
    baseline: DesignEvaluation
    search: SearchResult
    design_space_size: int
    points_searched: int
    #: diagnostics for design points that failed and were skipped
    #: (fail-soft search); empty on a clean run.
    infeasible: Tuple[PointDiagnostic, ...] = ()
    #: the no-unrolling baseline itself failed, so ``baseline`` is the
    #: selected design standing in (speedup degenerates to 1.0).
    baseline_degraded: bool = False

    @property
    def speedup(self) -> float:
        """Cycle-count speedup of the selected design over the baseline
        (the Table 2 metric)."""
        if self.selected.cycles == 0:
            return float("inf")
        return self.baseline.cycles / self.selected.cycles

    @property
    def fraction_searched(self) -> float:
        """Points synthesized over the full design space size (the
        "0.3 % of the design space" metric)."""
        return self.points_searched / self.design_space_size

    @property
    def saturation(self) -> SaturationInfo:
        return self.search.saturation

    def report(self) -> str:
        lines = [
            f"kernel {self.program_name} on {self.board_name}",
            f"  saturation: R={self.saturation.read_sets} "
            f"W={self.saturation.write_sets} Psat={self.saturation.psat}",
            f"  initial point: U={self.search.initial}",
        ]
        for step in self.search.trace:
            lines.append(f"    {step}")
        lines.append(
            f"  selected U={self.selected.unroll}: "
            f"{self.selected.estimate.summary()}"
        )
        if self.baseline_degraded:
            lines.append(
                "  baseline: infeasible (using selected design as reference)"
            )
        else:
            lines.append(
                f"  baseline: {self.baseline.estimate.summary()}"
            )
        if self.infeasible:
            lines.append(f"  infeasible points: {len(self.infeasible)}")
            for diagnostic in self.infeasible:
                lines.append(f"    {diagnostic}")
        lines.append(
            f"  speedup {self.speedup:.2f}x, searched {self.points_searched} "
            f"of {self.design_space_size} points "
            f"({100 * self.fraction_searched:.2f}%)"
        )
        return "\n".join(lines)


def explore(
    program: Program,
    board: Board,
    search_options: Optional[SearchOptions] = None,
    pipeline_options: Optional[PipelineOptions] = None,
    library: Optional[OperatorLibrary] = None,
    pinned_depths: Optional[Tuple[int, ...]] = None,
    estimate_cache: Optional["EstimateCache"] = None,
) -> ExplorationResult:
    """Run the full DEFACTO design space exploration for one loop nest.

    Args:
        program: a compiled C-subset program containing one loop nest.
        board: the synthesis target (e.g. ``wildstar_pipelined()``).
        search_options: Figure-2 tunables (balance tolerance, iteration cap).
        pipeline_options: code-generation knobs (outer-loop reuse, layout...).
        library: operator latency/area calibration.
        pinned_depths: loops to exclude from unrolling entirely; when
            omitted, loops that add no memory parallelism are pinned
            automatically (the paper fixes MM's innermost loop this way).
        estimate_cache: pluggable evaluation backend — a
            :class:`repro.synthesis.EstimateCache` (or compatible
            object with a ``synthesize(program, board, plan, library)``
            method) that serves estimates instead of direct synthesis.
            The batch service passes a process-shared cache here.

    Returns an :class:`ExplorationResult`; ``result.selected`` carries
    the chosen design (transformed program, layout plan, estimate).
    """
    # A first space to discover the saturation structure, possibly
    # re-created with automatic pins.
    space = DesignSpace(
        program, board, pipeline_options, library, pinned_depths,
        estimate_cache=estimate_cache,
    )
    searcher = BalanceGuidedSearch(space, search_options)
    if pinned_depths is None:
        varying = set(searcher.saturation.memory_varying_depths)
        auto_pins = tuple(
            depth for depth in range(space.depth) if depth not in varying
        )
        if auto_pins:
            space = DesignSpace(
                program, board, pipeline_options, library, auto_pins,
                estimate_cache=estimate_cache,
            )
            searcher = BalanceGuidedSearch(space, search_options)

    result = searcher.run()
    # Fail-soft baseline: a baseline that cannot be evaluated (typically
    # under injected faults — the unrolled points were fine) degrades to
    # the selected design as its own reference instead of aborting the
    # whole exploration.
    baseline = space.try_evaluate(space.baseline_vector())
    baseline_degraded = baseline is None
    if baseline is None:
        baseline = result.selected
    return ExplorationResult(
        program_name=program.name,
        board_name=board.name,
        selected=result.selected,
        baseline=baseline,
        search=result,
        design_space_size=space.size(),
        points_searched=space.points_evaluated,
        infeasible=tuple(space.infeasible_points()),
        baseline_degraded=baseline_degraded,
    )
