"""First-class search strategies: one protocol, many DSE algorithms.

The paper contributes a single balance-guided bisection walk (Figure 2),
but no one DSE algorithm wins everywhere.  This module makes the search
algorithm a pluggable, attributable choice — the same move
:mod:`repro.estimate.backends` made for the estimator:

* :class:`SearchStrategy` is the protocol: a stateful
  propose → evaluate → accept/terminate driver over
  :meth:`~repro.dse.space.DesignSpace.try_evaluate`.  Every strategy
  returns the same :class:`~repro.dse.search.SearchResult` (trace
  steps, failure diagnostics, fraction-searched), so reports, spans
  (``dse.search{strategy=}``), and the fail-soft point-failure budget
  work identically for every algorithm.
* The registry (:func:`get_strategy`, :func:`strategy_ids`) mirrors the
  backend registry: ids resolve to fresh instances; unknown ids fail
  naming the valid set.
* A strategy declares whether its space **partitions**
  (``partitionable``): the fleet coordinator shards partitionable
  strategies into point-range sweeps and runs the rest as a single
  unsharded walk.
* Mid-walk **fidelity switching** closes ROADMAP item 5's remaining
  hook: a strategy running under multi-fidelity exploration holds a
  confirmation backend and may call :meth:`SearchStrategy.confirm` to
  re-estimate a point on the authoritative model (e.g. when the balance
  gradient flattens).  Switches are recorded as
  :class:`~repro.dse.search.FidelitySwitch` records on the result — not
  as trace steps — so the navigation trace stays byte-identical.

Seven strategies ship: the paper's ``balance`` walk (the default),
the re-homed comparison baselines (``linear``, ``random``, ``hill``),
plus ``exhaustive`` (small spaces), ``greedy`` (coordinate ascent from
the no-unrolling baseline), and ``genetic`` (seeded evolutionary
search).  ``auto`` is not a strategy but a selector policy — see
:mod:`repro.dse.selector`.
"""

from __future__ import annotations

import inspect
import random
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Type, Union

from repro.dse.failures import POINT_FAILURES, is_point_failure
from repro.dse.saturation import analyze_saturation
from repro.dse.search import (
    BalanceGuidedSearch, FidelitySwitch, SearchOptions, SearchResult,
    TraceStep,
)
from repro.dse.space import DesignEvaluation, DesignSpace
from repro.errors import (
    NoFeasiblePoint, PointFailureBudgetExceeded, SearchError,
)
from repro.obs import current_registry, current_tracer
from repro.transform.unroll import UnrollVector

#: the strategy every pre-protocol call site implicitly used.
DEFAULT_STRATEGY = "balance"


class SearchStrategy:
    """The search-algorithm interface the explorer drives.

    Subclasses set ``id`` (registry name), ``name``/``description``
    (human catalog), ``partitionable`` (whether the fleet may shard the
    walk into point ranges), and implement :meth:`_search` using the
    shared machinery:

    * :meth:`probe` — evaluate one point fail-soft, charging the
      ``max_point_failures`` budget exactly like the Figure-2 walk;
    * :meth:`record` — append a narrative :class:`TraceStep`;
    * :meth:`confirm` — request a mid-walk fidelity switch;
    * :meth:`finish` — assemble the :class:`SearchResult`, degrading a
      missing selection to the best feasible evaluated point.

    The public :meth:`run` wraps ``_search`` in the ``dse.search`` span
    (now carrying ``strategy=``) and the ``dse.search_iterations``
    histogram, so every algorithm is observable through the same lens.
    """

    id: str = "abstract"
    name: str = "abstract"
    description: str = ""
    #: may the fleet split this strategy's work into point-range shards?
    partitionable: bool = False

    # -- driver ---------------------------------------------------------------

    def run(
        self,
        space: DesignSpace,
        options: Optional[SearchOptions] = None,
        *,
        confirm_backend=None,
    ) -> SearchResult:
        """Run the strategy over ``space`` under a ``dse.search`` span.

        ``confirm_backend`` (multi-fidelity mode) arms :meth:`confirm`;
        without it, confirmation requests are no-ops.
        """
        self.space = space
        self.options = options or SearchOptions()
        self.confirm_backend = confirm_backend
        self.saturation = analyze_saturation(
            space.program, space.board.num_memories
        )
        self._point_failures = 0
        self._trace: List[TraceStep] = []
        self._switches: List[FidelitySwitch] = []
        with current_tracer().span(
            "dse.search", kernel=space.program.name, strategy=self.id
        ) as span:
            result = self._search()
            # The driver owns the switch ledger: a strategy may confirm
            # after assembling its result, so re-stamp the full list.
            result.fidelity_switches = tuple(self._switches)
            span.set_attribute("iterations", len(result.trace))
            span.set_attribute("points_searched", result.points_searched)
            span.set_attribute("infeasible", len(result.infeasible))
            span.set_attribute(
                "selected", list(result.selected.unroll.factors)
            )
            current_registry().histogram(
                "dse.search_iterations",
                boundaries=(1, 2, 4, 8, 16, 32, 64),
            ).observe(len(result.trace))
            return result

    def _search(self) -> SearchResult:
        raise NotImplementedError

    # -- shared fail-soft machinery -------------------------------------------

    def probe(self, unroll: UnrollVector) -> Optional[DesignEvaluation]:
        """Evaluate one point; ``None`` marks it infeasible.

        Same budget semantics as the Figure-2 walk: every infeasible
        point spends one unit of ``max_point_failures``; past the budget
        the nest is hopeless and the search aborts with a typed
        :class:`~repro.errors.PointFailureBudgetExceeded`.  Transient
        errors propagate — retry machinery owns those.
        """
        evaluation = self.space.try_evaluate(unroll)
        if evaluation is None:
            self._point_failures += 1
            budget = self.options.max_point_failures
            if budget is not None and self._point_failures > budget:
                raise PointFailureBudgetExceeded(
                    f"search of {self.space.program.name} exceeded the "
                    f"point-failure budget ({budget}): "
                    f"{self._failure_summary()}"
                )
        return evaluation

    def record(self, evaluation: DesignEvaluation, verdict: str) -> None:
        self._trace.append(TraceStep(
            evaluation.unroll, evaluation.balance, evaluation.cycles,
            evaluation.space, verdict,
        ))

    def confirm(self, evaluation: DesignEvaluation, reason: str):
        """Request a mid-walk fidelity switch for one evaluated point.

        Re-estimates the already-compiled design on the confirmation
        backend and records a :class:`FidelitySwitch`.  The navigation
        estimate is deliberately left in place — the switch record (not
        a mutated trace) is the artifact — but the confirmed
        :class:`~repro.synthesis.estimator.Estimate` is returned so a
        strategy may steer on it.  Fail-soft: a confirmation backend
        that cannot estimate the design records the failure and returns
        ``None``; it never aborts the walk.  No-op (``None``) outside
        multi-fidelity mode.
        """
        if self.confirm_backend is None:
            return None
        from repro.estimate.backends import get_backend
        confirmer = get_backend(self.confirm_backend)
        try:
            estimate = self.space.reestimate(evaluation, confirmer)
        except POINT_FAILURES as error:
            if not is_point_failure(error):
                raise
            self._switches.append(FidelitySwitch(
                unroll=evaluation.unroll.factors,
                from_backend=self.space.backend.id,
                to_backend=confirmer.id,
                reason=f"{reason} (confirmation failed: {error})",
                cycles_before=evaluation.cycles,
                cycles_after=evaluation.cycles,
            ))
            return None
        self._switches.append(FidelitySwitch(
            unroll=evaluation.unroll.factors,
            from_backend=self.space.backend.id,
            to_backend=confirmer.id,
            reason=reason,
            cycles_before=evaluation.cycles,
            cycles_after=estimate.cycles,
        ))
        current_registry().counter(
            "dse.fidelity_switches", strategy=self.id
        ).inc()
        return estimate

    def finish(
        self,
        selected: Optional[DesignEvaluation],
        initial: UnrollVector,
    ) -> SearchResult:
        """Assemble the result; degrade a missing selection fail-soft.

        ``selected=None`` (the strategy's walk never landed on a usable
        endpoint) degrades to the best feasible already-evaluated point,
        mirroring the Figure-2 final selection; with nothing evaluated
        at all the nest is hopeless and :class:`NoFeasiblePoint` names
        the recorded failures.
        """
        if selected is None:
            capacity = self.space.board.fpga.capacity_slices
            evaluated = self.space.evaluated()
            fits = [e for e in evaluated if e.space <= capacity]
            pool = fits or evaluated
            if not pool:
                raise NoFeasiblePoint(
                    f"no feasible design point for "
                    f"{self.space.program.name}: {self._failure_summary()}"
                )
            selected = min(pool, key=lambda e: (e.cycles, e.space))
        return SearchResult(
            selected=selected,
            trace=self._trace,
            saturation=self.saturation,
            initial=initial,
            infeasible=tuple(self.space.infeasible_points()),
            strategy=self.id,
            fidelity_switches=tuple(self._switches),
        )

    def _failure_summary(self) -> str:
        diagnostics = self.space.infeasible_points()
        if not diagnostics:
            return "no failures recorded"
        kinds: Dict[str, int] = {}
        for diagnostic in diagnostics:
            kinds[diagnostic.kind] = kinds.get(diagnostic.kind, 0) + 1
        histogram = ", ".join(
            f"{kind} x{count}" for kind, count in sorted(kinds.items())
        )
        return (
            f"{len(diagnostics)} point(s) failed ({histogram}); "
            f"last: {diagnostics[-1].message}"
        )

    # -- catalog --------------------------------------------------------------

    @classmethod
    def default_knobs(cls) -> Dict[str, Any]:
        """Constructor tunables and their defaults, for ``repro strategies``."""
        knobs: Dict[str, Any] = {}
        for name, parameter in inspect.signature(cls.__init__).parameters.items():
            if name == "self" or parameter.default is inspect.Parameter.empty:
                continue
            knobs[name] = parameter.default
        return knobs

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.id!r})"

    # -- lattice helpers ------------------------------------------------------

    def _divisors(self, depth: int) -> List[int]:
        trips = self.space.nest.trip_counts
        if depth in self.space.pinned_depths:
            return [1]
        return [d for d in range(1, trips[depth] + 1)
                if trips[depth] % d == 0]


# -- registry -----------------------------------------------------------------

_STRATEGIES: Dict[str, Callable[[], "SearchStrategy"]] = {}


def register_strategy(cls: Type[SearchStrategy]) -> Type[SearchStrategy]:
    """Register (or replace) a strategy class under its ``id``.

    Usable as a decorator; the registry stores the class as its own
    zero-argument factory, so :func:`get_strategy` hands out fresh
    instances with default knobs.
    """
    _STRATEGIES[cls.id] = cls
    return cls


def strategy_ids() -> Tuple[str, ...]:
    """Registered strategy ids, sorted."""
    return tuple(sorted(_STRATEGIES))


def get_strategy(
    spec: Union[str, SearchStrategy, None]
) -> SearchStrategy:
    """Resolve a strategy id (or pass an instance through).

    ``None`` means the historical default — the paper's balance-guided
    walk.  ``"auto"`` is a selector policy, not a strategy; resolve it
    with :func:`repro.dse.selector.select_strategy` before calling.
    """
    if spec is None:
        spec = DEFAULT_STRATEGY
    if isinstance(spec, SearchStrategy):
        return spec
    factory = _STRATEGIES.get(spec)
    if factory is None:
        raise SearchError(
            f"unknown search strategy {spec!r}; "
            f"registered: {', '.join(strategy_ids())} (or 'auto')"
        )
    return factory()


# -- the default: the paper's walk -------------------------------------------


@register_strategy
class BalanceGuidedStrategy(SearchStrategy):
    """The paper's Figure-2 balance-guided bisection (the default).

    Delegates the walk to :class:`BalanceGuidedSearch` (whose standalone
    API is unchanged) and, under multi-fidelity exploration, requests a
    fidelity switch on the selection once the balance gradient flattens
    — the point where the cheap model has stopped changing the verdict
    and the authoritative number is worth its cost.
    """

    id = "balance"
    name = "balance-guided (paper)"
    description = "Figure-2 bisection on the balance metric"
    partitionable = True

    #: |Δbalance| between the last two steps below this means the
    #: gradient has flattened and confirmation is warranted.
    GRADIENT_EPSILON = 0.02

    def _search(self) -> SearchResult:
        searcher = BalanceGuidedSearch(self.space, self.options)
        result = searcher._run()
        self._trace = result.trace
        self.saturation = result.saturation
        if self._gradient_flat(result.trace):
            self.confirm(result.selected, "balance gradient flattened")
        result.strategy = self.id
        result.fidelity_switches = tuple(self._switches)
        return result

    def _gradient_flat(self, trace: List[TraceStep]) -> bool:
        if self.confirm_backend is None or len(trace) < 2:
            return False
        return abs(trace[-1].balance - trace[-2].balance) < self.GRADIENT_EPSILON


# -- re-homed comparison baselines -------------------------------------------


@register_strategy
class LinearScanStrategy(SearchStrategy):
    """Walk products upward by doubling; stop when cycles go stale.

    The hand-tuner's loop: start at the saturation point, keep doubling
    the laggard loop, stop after ``stale_limit`` non-improving steps or
    when the device fills up.
    """

    id = "linear"
    name = "linear scan"
    description = "double unroll products until performance goes stale"

    def __init__(self, stale_limit: int = 2):
        self.stale_limit = stale_limit

    def _search(self) -> SearchResult:
        searcher = BalanceGuidedSearch(self.space, self.options)
        current = searcher.initial_vector()
        initial = current
        best: Optional[DesignEvaluation] = None
        evaluation = self.probe(current)
        if evaluation is not None:
            best = evaluation
            self.record(evaluation, "initial")
        stale = 0
        while stale < self.stale_limit:
            grown = searcher.increase(current)
            if grown == current:
                break
            current = grown
            evaluation = self.probe(current)
            if evaluation is None:
                continue
            if not evaluation.estimate.fits(self.space.board):
                self.record(evaluation, "exceeds capacity")
                break
            if best is None or evaluation.cycles < best.cycles:
                best = evaluation
                stale = 0
                self.record(evaluation, "improved")
            else:
                stale += 1
                self.record(evaluation, "no improvement")
        return self.finish(best, initial)


@register_strategy
class RandomStrategy(SearchStrategy):
    """Uniform random sampling of realizable points (the no-insight
    baseline); falls back to the no-unrolling baseline when every sample
    fails."""

    id = "random"
    name = "random sampling"
    description = "sample N random realizable points, keep the best"

    def __init__(self, samples: int = 8, seed: int = 0):
        self.samples = samples
        self.seed = seed

    def _search(self) -> SearchResult:
        rng = random.Random(self.seed)
        points = list(self.space.enumerable_points())
        rng.shuffle(points)
        initial = self.space.baseline_vector()
        best: Optional[DesignEvaluation] = None
        for vector in points[: self.samples]:
            evaluation = self.probe(vector)
            if evaluation is None:
                continue
            fits = evaluation.estimate.fits(self.space.board)
            self.record(evaluation, "fits" if fits else "exceeds capacity")
            if fits and (
                best is None
                or (evaluation.cycles, evaluation.space)
                < (best.cycles, best.space)
            ):
                best = evaluation
        if best is None:
            fallback = self.probe(initial)
            if fallback is not None:
                self.record(fallback, "baseline fallback")
        return self.finish(best, initial)


@register_strategy
class HillClimbStrategy(SearchStrategy):
    """Steepest descent on cycles over divisor-lattice neighbors.

    Neighbors change one loop's factor to the adjacent divisor (up or
    down).  Starts from the saturation point like the paper's search so
    the comparison isolates the *stepping* policy.
    """

    id = "hill"
    name = "hill climbing"
    description = "steepest descent on cycles over divisor neighbors"

    def __init__(self, max_steps: int = 24):
        self.max_steps = max_steps

    def _search(self) -> SearchResult:
        searcher = BalanceGuidedSearch(self.space, self.options)
        initial = searcher.initial_vector()
        current = self.probe(initial)
        if current is not None:
            self.record(current, "initial")
        for _ in range(self.max_steps):
            if current is None:
                break
            improving: List[DesignEvaluation] = []
            for vector in self._neighbors(current.unroll):
                evaluation = self.probe(vector)
                if evaluation is None:
                    continue
                if (evaluation.estimate.fits(self.space.board)
                        and evaluation.cycles < current.cycles):
                    improving.append(evaluation)
            if not improving:
                self.record(current, "local minimum")
                break
            current = min(improving, key=lambda e: (e.cycles, e.space))
            self.record(current, "improved")
        return self.finish(current, initial)

    def _neighbors(self, vector: UnrollVector) -> List[UnrollVector]:
        found: List[UnrollVector] = []
        for depth in range(self.space.depth):
            if depth in self.space.pinned_depths:
                continue
            divisors = self._divisors(depth)
            index = divisors.index(vector[depth])
            for step in (-1, 1):
                if 0 <= index + step < len(divisors):
                    candidate = vector.with_factor(
                        depth, divisors[index + step]
                    )
                    if self.space.is_valid(candidate):
                        found.append(candidate)
        return found


# -- new strategies -----------------------------------------------------------


@register_strategy
class ExhaustiveStrategy(SearchStrategy):
    """Evaluate every realizable point — exact on small lattices.

    The certification oracle promoted to a strategy: on spaces the
    selector deems small enough, paying for every point beats any
    heuristic.  Partitionable by construction — the fleet's point-range
    shards *are* this strategy.
    """

    id = "exhaustive"
    name = "exhaustive sweep"
    description = "evaluate every realizable point (small lattices)"
    partitionable = True

    def _search(self) -> SearchResult:
        initial = self.space.baseline_vector()
        best: Optional[DesignEvaluation] = None
        for vector in self.space.enumerable_points():
            evaluation = self.probe(vector)
            if evaluation is None:
                continue
            fits = evaluation.estimate.fits(self.space.board)
            self.record(evaluation, "fits" if fits else "exceeds capacity")
            if fits and (
                best is None
                or (evaluation.cycles, evaluation.space)
                < (best.cycles, best.space)
            ):
                best = evaluation
        return self.finish(best, initial)


@register_strategy
class GreedyAscentStrategy(SearchStrategy):
    """Greedy coordinate ascent from the no-unrolling baseline.

    Each step tries raising every loop's factor to its next divisor and
    commits the single best improving move — a cheaper, blinder cousin
    of hill climbing that never looks downward and never starts from
    the saturation analysis.
    """

    id = "greedy"
    name = "greedy ascent"
    description = "raise one loop's factor at a time while cycles improve"

    def __init__(self, max_steps: int = 32):
        self.max_steps = max_steps

    def _search(self) -> SearchResult:
        initial = self.space.baseline_vector()
        current = self.probe(initial)
        if current is not None:
            self.record(current, "initial")
        for _ in range(self.max_steps):
            if current is None:
                break
            improving: List[DesignEvaluation] = []
            for depth in range(self.space.depth):
                divisors = self._divisors(depth)
                index = divisors.index(current.unroll[depth])
                if index + 1 >= len(divisors):
                    continue
                candidate = current.unroll.with_factor(
                    depth, divisors[index + 1]
                )
                if not self.space.is_valid(candidate):
                    continue
                evaluation = self.probe(candidate)
                if evaluation is None:
                    continue
                if (evaluation.estimate.fits(self.space.board)
                        and evaluation.cycles < current.cycles):
                    improving.append(evaluation)
            if not improving:
                self.record(current, "no improving ascent")
                break
            current = min(improving, key=lambda e: (e.cycles, e.space))
            self.record(current, "improved")
        return self.finish(current, initial)


@register_strategy
class GeneticStrategy(SearchStrategy):
    """Seeded evolutionary search over the divisor lattice.

    Deterministic under a fixed seed: the population is seeded with the
    baseline and the fully-unrolled corner plus random lattice points,
    evolved by uniform crossover and adjacent-divisor mutation, fitness
    ordered by (fits, cycles, space).
    """

    id = "genetic"
    name = "seeded genetic"
    description = "evolutionary search: crossover + divisor mutation"

    def __init__(
        self,
        population: int = 8,
        generations: int = 4,
        mutation: float = 0.25,
        seed: int = 0,
    ):
        self.population = population
        self.generations = generations
        self.mutation = mutation
        self.seed = seed

    def _search(self) -> SearchResult:
        rng = random.Random(self.seed)
        axes = [self._divisors(depth) for depth in range(self.space.depth)]
        initial = self.space.baseline_vector()
        recorded: Set[Tuple[int, ...]] = set()
        best: Optional[DesignEvaluation] = None

        def assess(vector: UnrollVector) -> Optional[DesignEvaluation]:
            nonlocal best
            evaluation = self.probe(vector)
            if evaluation is None:
                return None
            fits = evaluation.estimate.fits(self.space.board)
            if vector.factors not in recorded:
                recorded.add(vector.factors)
                self.record(evaluation, "fits" if fits else "exceeds capacity")
            if fits and (
                best is None
                or (evaluation.cycles, evaluation.space)
                < (best.cycles, best.space)
            ):
                best = evaluation
            return evaluation

        def mutate(genes: List[int]) -> List[int]:
            for depth, divisors in enumerate(axes):
                if len(divisors) > 1 and rng.random() < self.mutation:
                    index = divisors.index(genes[depth])
                    step = rng.choice((-1, 1))
                    genes[depth] = divisors[
                        max(0, min(len(divisors) - 1, index + step))
                    ]
            return genes

        population = [initial, self.space.max_vector()]
        while len(population) < self.population:
            population.append(UnrollVector(
                tuple(rng.choice(divisors) for divisors in axes)
            ))

        for _ in range(self.generations):
            scored = []
            for vector in population:
                evaluation = assess(vector)
                if evaluation is not None:
                    scored.append((evaluation, vector))
            if not scored:
                break
            scored.sort(key=lambda pair: (
                not pair[0].estimate.fits(self.space.board),
                pair[0].cycles, pair[0].space,
            ))
            parents = [v for _, v in scored[: max(2, len(scored) // 2)]]
            children = [parents[0]]  # elitism
            while len(children) < self.population:
                mother = rng.choice(parents)
                father = rng.choice(parents)
                genes = [
                    mother[depth] if rng.random() < 0.5 else father[depth]
                    for depth in range(self.space.depth)
                ]
                children.append(UnrollVector(tuple(mutate(genes))))
            population = children
        return self.finish(best, initial)


__all__ = [
    "BalanceGuidedStrategy",
    "DEFAULT_STRATEGY",
    "ExhaustiveStrategy",
    "GeneticStrategy",
    "GreedyAscentStrategy",
    "HillClimbStrategy",
    "LinearScanStrategy",
    "RandomStrategy",
    "SearchStrategy",
    "get_strategy",
    "register_strategy",
    "strategy_ids",
]
