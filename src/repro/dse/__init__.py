"""Design space exploration — the paper's core contribution.

``explore()`` is the one-call API; the pieces (saturation analysis, the
Figure-2 balance-guided search, the design space with its exhaustive
oracle) are exposed for benchmarks and ablations.
"""

from repro.dse.explorer import ExplorationResult, ExploreConfig, explore
from repro.dse.failures import POINT_FAILURES, PointDiagnostic, is_point_failure
from repro.dse.saturation import (
    SaturationInfo, analyze_saturation, compute_psat, saturation_vectors,
)
from repro.dse.search import (
    BalanceGuidedSearch, SearchOptions, SearchResult, TraceStep,
)
from repro.dse.space import (
    DesignEvaluation, DesignSpace, ExhaustiveResult,
)
from repro.dse.multinest import (
    MultiNestResult, explore_application, split_nests,
)
from repro.dse.strategies import (
    ALL_STRATEGIES, BalanceStrategy, HillClimbStrategy, LinearScanStrategy,
    RandomStrategy, StrategyResult,
)

__all__ = [
    "ALL_STRATEGIES", "BalanceGuidedSearch", "BalanceStrategy",
    "DesignEvaluation", "DesignSpace", "ExhaustiveResult",
    "ExplorationResult", "ExploreConfig", "HillClimbStrategy",
    "LinearScanStrategy",
    "MultiNestResult", "POINT_FAILURES", "PointDiagnostic", "RandomStrategy",
    "SaturationInfo", "SearchOptions", "SearchResult", "StrategyResult",
    "TraceStep", "analyze_saturation", "compute_psat", "explore",
    "explore_application", "is_point_failure", "saturation_vectors",
    "split_nests",
]
