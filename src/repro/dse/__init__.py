"""Design space exploration — the paper's core contribution.

``explore()`` is the one-call API; the pieces (saturation analysis, the
Figure-2 balance-guided search, the design space with its exhaustive
oracle, the pluggable :class:`SearchStrategy` protocol and its learned
selector) are exposed for benchmarks and ablations.
"""

from repro.dse.explorer import ExplorationResult, ExploreConfig, explore
from repro.dse.failures import POINT_FAILURES, PointDiagnostic, is_point_failure
from repro.dse.saturation import (
    SaturationInfo, analyze_saturation, compute_psat, saturation_vectors,
)
from repro.dse.search import (
    BalanceGuidedSearch, FidelitySwitch, SearchOptions, SearchResult,
    TraceStep,
)
from repro.dse.selector import (
    SelectionDecision, SpaceFeatures, StrategyScoreboard, StrategySelector,
    extract_features, select_strategy,
)
from repro.dse.space import (
    DesignEvaluation, DesignSpace, ExhaustiveResult,
)
from repro.dse.strategy import (
    DEFAULT_STRATEGY, BalanceGuidedStrategy, ExhaustiveStrategy,
    GeneticStrategy, GreedyAscentStrategy, HillClimbStrategy,
    LinearScanStrategy, RandomStrategy, SearchStrategy, get_strategy,
    register_strategy, strategy_ids,
)
from repro.dse.multinest import (
    MultiNestResult, explore_application, split_nests,
)

__all__ = [
    "BalanceGuidedSearch", "BalanceGuidedStrategy", "DEFAULT_STRATEGY",
    "DesignEvaluation", "DesignSpace", "ExhaustiveResult",
    "ExhaustiveStrategy", "ExplorationResult", "ExploreConfig",
    "FidelitySwitch", "GeneticStrategy", "GreedyAscentStrategy",
    "HillClimbStrategy", "LinearScanStrategy",
    "MultiNestResult", "POINT_FAILURES", "PointDiagnostic", "RandomStrategy",
    "SaturationInfo", "SearchOptions", "SearchResult", "SearchStrategy",
    "SelectionDecision", "SpaceFeatures", "StrategyScoreboard",
    "StrategySelector", "TraceStep", "analyze_saturation", "compute_psat",
    "explore", "explore_application", "extract_features", "get_strategy",
    "is_point_failure", "register_strategy", "saturation_vectors",
    "select_strategy", "split_nests", "strategy_ids",
]
