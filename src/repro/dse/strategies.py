"""Deprecated: the pre-protocol strategy classes, now thin shims.

The comparison strategies that used to live here are first-class
:class:`~repro.dse.strategy.SearchStrategy` implementations in
:mod:`repro.dse.strategy`, returning the same
:class:`~repro.dse.search.SearchResult` as the paper's walk (the
parallel ``StrategyResult`` type is gone).  These shims keep old
imports working for one release: constructing any of them emits a
:class:`DeprecationWarning` naming the replacement, and ``run()``
returns the unified ``SearchResult`` — callers that read the removed
``points_synthesized`` field should read ``points_searched`` instead.
"""

from __future__ import annotations

import warnings

from repro.dse import strategy as _strategy

_MIGRATION = (
    "repro.dse.strategies.{old} is deprecated and will be removed in the "
    "next release; use repro.dse.get_strategy({id!r}) instead.  All "
    "strategies now return repro.dse.SearchResult (StrategyResult is "
    "gone; read points_searched instead of points_synthesized)."
)


def _warn(old: str, strategy_id: str) -> None:
    warnings.warn(
        _MIGRATION.format(old=old, id=strategy_id),
        DeprecationWarning,
        stacklevel=3,
    )


class BalanceStrategy(_strategy.BalanceGuidedStrategy):
    """Deprecated alias for ``get_strategy('balance')``."""

    def __init__(self):
        _warn("BalanceStrategy", "balance")
        super().__init__()


class LinearScanStrategy(_strategy.LinearScanStrategy):
    """Deprecated alias for ``get_strategy('linear')``."""

    def __init__(self, stale_limit: int = 2):
        _warn("LinearScanStrategy", "linear")
        super().__init__(stale_limit=stale_limit)


class RandomStrategy(_strategy.RandomStrategy):
    """Deprecated alias for ``get_strategy('random')``."""

    def __init__(self, samples: int = 8, seed: int = 0):
        _warn("RandomStrategy", "random")
        super().__init__(samples=samples, seed=seed)


class HillClimbStrategy(_strategy.HillClimbStrategy):
    """Deprecated alias for ``get_strategy('hill')``."""

    def __init__(self, max_steps: int = 24):
        _warn("HillClimbStrategy", "hill")
        super().__init__(max_steps=max_steps)


ALL_STRATEGIES = (
    BalanceStrategy, LinearScanStrategy, RandomStrategy, HillClimbStrategy,
)
