"""Alternative search strategies, for comparison with the paper's.

The paper argues its balance-guided bisection "effectively prune[s]
large regions of the search space".  To quantify that against credible
baselines, this module implements three strategies a practitioner might
use instead, all over the same :class:`~repro.dse.space.DesignSpace`
(so synthesis-call counts are directly comparable):

* :class:`LinearScanStrategy` — walk Psat-multiple products upward until
  performance stops improving (hand-tuner behavior);
* :class:`RandomStrategy` — sample N random realizable points (the
  no-insight baseline);
* :class:`HillClimbStrategy` — steepest-descent on cycles over the
  divisor lattice's neighbors.

Each returns a :class:`StrategyResult` with the chosen design and the
number of points it synthesized.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.dse.search import BalanceGuidedSearch, SearchOptions
from repro.dse.space import DesignEvaluation, DesignSpace
from repro.errors import TransformError
from repro.transform.unroll import UnrollVector


@dataclass
class StrategyResult:
    name: str
    selected: DesignEvaluation
    points_synthesized: int

    def __str__(self) -> str:
        return (
            f"{self.name}: U={self.selected.unroll} "
            f"{self.selected.cycles} cycles / {self.selected.space} slices "
            f"({self.points_synthesized} points)"
        )


def _feasible_best(
    evaluations: List[DesignEvaluation], space: DesignSpace
) -> DesignEvaluation:
    board = space.board
    feasible = [e for e in evaluations if e.estimate.fits(board)]
    pool = feasible or evaluations
    return min(pool, key=lambda e: (e.cycles, e.space))


class BalanceStrategy:
    """The paper's Figure-2 search, wrapped in the strategy interface."""

    name = "balance-guided (paper)"

    def run(self, space: DesignSpace) -> StrategyResult:
        before = space.points_evaluated
        result = BalanceGuidedSearch(space, SearchOptions()).run()
        return StrategyResult(
            self.name, result.selected, space.points_evaluated - before
        )


class LinearScanStrategy:
    """Walk products upward by doubling; stop when cycles stop improving
    or the device fills up."""

    name = "linear scan"

    def run(self, space: DesignSpace) -> StrategyResult:
        before = space.points_evaluated
        searcher = BalanceGuidedSearch(space, SearchOptions())
        current = searcher.initial_vector()
        best = space.evaluate(current)
        stale = 0
        while stale < 2:
            grown = searcher.increase(current)
            if grown == current:
                break
            try:
                evaluation = space.evaluate(grown)
            except TransformError:
                break
            current = grown
            if not evaluation.estimate.fits(space.board):
                break
            if evaluation.cycles < best.cycles:
                best = evaluation
                stale = 0
            else:
                stale += 1
        return StrategyResult(self.name, best, space.points_evaluated - before)


class RandomStrategy:
    """Uniform random sampling of realizable points."""

    name = "random sampling"

    def __init__(self, samples: int = 8, seed: int = 0):
        self.samples = samples
        self.seed = seed

    def run(self, space: DesignSpace) -> StrategyResult:
        before = space.points_evaluated
        rng = random.Random(self.seed)
        points = list(space.enumerable_points())
        rng.shuffle(points)
        evaluations: List[DesignEvaluation] = []
        for vector in points[: self.samples]:
            try:
                evaluations.append(space.evaluate(vector))
            except TransformError:
                continue
        if not evaluations:
            evaluations.append(space.evaluate(space.baseline_vector()))
        best = _feasible_best(evaluations, space)
        return StrategyResult(self.name, best, space.points_evaluated - before)


class HillClimbStrategy:
    """Steepest descent on cycles over divisor-lattice neighbors.

    Neighbors of U change one loop's factor to the adjacent divisor (up
    or down).  Starts from the saturation point like the paper's search
    so the comparison isolates the *stepping* policy.
    """

    name = "hill climbing"

    def __init__(self, max_steps: int = 24):
        self.max_steps = max_steps

    def run(self, space: DesignSpace) -> StrategyResult:
        before = space.points_evaluated
        searcher = BalanceGuidedSearch(space, SearchOptions())
        current = space.evaluate(searcher.initial_vector())
        for _ in range(self.max_steps):
            neighbors = self._neighbors(current.unroll, space)
            candidates: List[DesignEvaluation] = []
            for vector in neighbors:
                try:
                    candidates.append(space.evaluate(vector))
                except TransformError:
                    continue
            improving = [
                c for c in candidates
                if c.estimate.fits(space.board) and c.cycles < current.cycles
            ]
            if not improving:
                break
            current = min(improving, key=lambda e: (e.cycles, e.space))
        return StrategyResult(self.name, current, space.points_evaluated - before)

    def _neighbors(
        self, vector: UnrollVector, space: DesignSpace
    ) -> List[UnrollVector]:
        trips = space.nest.trip_counts
        found: List[UnrollVector] = []
        for depth in range(space.depth):
            if depth in space.pinned_depths:
                continue
            divisors = [d for d in range(1, trips[depth] + 1)
                        if trips[depth] % d == 0]
            index = divisors.index(vector[depth])
            for step in (-1, 1):
                if 0 <= index + step < len(divisors):
                    candidate = vector.with_factor(depth, divisors[index + step])
                    if space.is_valid(candidate):
                        found.append(candidate)
        return found


ALL_STRATEGIES = (
    BalanceStrategy, LinearScanStrategy, RandomStrategy, HillClimbStrategy,
)
