"""Learned strategy selection: cheap space features + recorded win rates.

``--strategy auto`` resolves here.  Selection has two inputs:

* **Space features** (:func:`extract_features`) — dimensionality,
  realizable-lattice size, total space size, trip counts, how many
  loops carry no dependence.  All are computable without evaluating a
  single point, so selection costs microseconds.
* **Win rates** (:class:`StrategyScoreboard`) — per-strategy outcomes
  recorded by the batch runner into the run ledger as typed
  ``strategy_outcome`` events.  A strategy "wins" a run when it found a
  real speedup without degrading the baseline.  The scoreboard only
  overrides the feature rule once the rule's own pick has demonstrably
  lost enough times — learned correction, not learned chaos.

The feature rule itself is deliberately simple and deterministic: a
lattice small enough to sweep exactly (≤ :data:`EXHAUSTIVE_LATTICE_LIMIT`
realizable points) gets the ``exhaustive`` strategy — paying for every
point beats any heuristic there — and everything larger navigates with
the paper's ``balance`` walk.  Every selection increments
``dse.strategy.selected{strategy=}`` so fleet-wide strategy mix is one
/metrics scrape away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.analysis.dependence import DependenceGraph
from repro.dse.space import DesignSpace
from repro.dse.strategy import DEFAULT_STRATEGY, strategy_ids
from repro.obs import current_registry

#: lattices at or below this many realizable points are swept exactly.
EXHAUSTIVE_LATTICE_LIMIT = 32

#: how many recorded outcomes a strategy needs before its win rate is
#: trusted enough to influence selection.
MIN_TRIALS = 3


@dataclass(frozen=True)
class SpaceFeatures:
    """What selection is allowed to look at: facts free to compute."""

    depth: int
    lattice_points: int
    space_size: int
    trip_counts: Tuple[int, ...]
    parallel_loops: int
    pinned_depths: Tuple[int, ...]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "depth": self.depth,
            "lattice_points": self.lattice_points,
            "space_size": self.space_size,
            "trip_counts": list(self.trip_counts),
            "parallel_loops": self.parallel_loops,
            "pinned_depths": list(self.pinned_depths),
        }


def extract_features(space: DesignSpace) -> SpaceFeatures:
    """Compute the selection features for one design space."""
    graph = DependenceGraph.build(space.nest)
    parallel = sum(
        1 for depth in range(space.depth) if graph.loop_is_parallel(depth)
    )
    return SpaceFeatures(
        depth=space.depth,
        lattice_points=len(list(space.enumerable_points())),
        space_size=space.size(),
        trip_counts=tuple(space.nest.trip_counts),
        parallel_loops=parallel,
        pinned_depths=tuple(space.pinned_depths),
    )


@dataclass(frozen=True)
class SelectionDecision:
    """One ``auto`` resolution: what was picked and why."""

    strategy: str
    reason: str
    features: SpaceFeatures

    def as_dict(self) -> Dict[str, Any]:
        return {
            "strategy": self.strategy,
            "reason": self.reason,
            "features": self.features.as_dict(),
        }


class StrategyScoreboard:
    """Per-strategy win/trial tallies, foldable from ledger records."""

    def __init__(self) -> None:
        self._wins: Dict[str, int] = {}
        self._trials: Dict[str, int] = {}

    def record(self, strategy: str, won: bool) -> None:
        self._trials[strategy] = self._trials.get(strategy, 0) + 1
        if won:
            self._wins[strategy] = self._wins.get(strategy, 0) + 1

    def trials(self, strategy: str) -> int:
        return self._trials.get(strategy, 0)

    def win_rate(self, strategy: str) -> Optional[float]:
        trials = self._trials.get(strategy, 0)
        if trials == 0:
            return None
        return self._wins.get(strategy, 0) / trials

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        record: Dict[str, Dict[str, Any]] = {}
        for strategy in sorted(self._trials):
            trials = self._trials[strategy]
            wins = self._wins.get(strategy, 0)
            record[strategy] = {
                "trials": trials,
                "wins": wins,
                "win_rate": round(wins / trials, 4),
            }
        return record

    @classmethod
    def from_dict(
        cls, record: Mapping[str, Mapping[str, Any]]
    ) -> "StrategyScoreboard":
        board = cls()
        for strategy, entry in record.items():
            board._trials[strategy] = int(entry.get("trials", 0))
            board._wins[strategy] = int(entry.get("wins", 0))
        return board


class StrategySelector:
    """Pick a strategy from features, corrected by recorded win rates."""

    def __init__(
        self,
        scoreboard: Optional[StrategyScoreboard] = None,
        exhaustive_limit: int = EXHAUSTIVE_LATTICE_LIMIT,
    ):
        self.scoreboard = scoreboard
        self.exhaustive_limit = exhaustive_limit

    def select(self, space: DesignSpace) -> SelectionDecision:
        features = extract_features(space)
        if features.lattice_points <= self.exhaustive_limit:
            primary = "exhaustive"
            reason = (
                f"lattice has {features.lattice_points} <= "
                f"{self.exhaustive_limit} realizable points: "
                f"exact sweep is affordable"
            )
        else:
            primary = DEFAULT_STRATEGY
            reason = (
                f"lattice has {features.lattice_points} > "
                f"{self.exhaustive_limit} realizable points: "
                f"navigate with the paper's walk"
            )
        override = self._learned_override(primary)
        if override is not None:
            primary, reason = override
        current_registry().counter(
            "dse.strategy.selected", strategy=primary
        ).inc()
        return SelectionDecision(
            strategy=primary, reason=reason, features=features
        )

    def _learned_override(
        self, primary: str
    ) -> Optional[Tuple[str, str]]:
        """Only correct the feature rule once its pick has lost enough.

        The primary needs :data:`MIN_TRIALS` recorded outcomes before
        its win rate means anything; an alternative only displaces it
        with at least as many trials and a strictly better rate.
        """
        board = self.scoreboard
        if board is None or board.trials(primary) < MIN_TRIALS:
            return None
        primary_rate = board.win_rate(primary) or 0.0
        best: Optional[str] = None
        best_rate = primary_rate
        for strategy in strategy_ids():
            if strategy == primary or board.trials(strategy) < MIN_TRIALS:
                continue
            rate = board.win_rate(strategy) or 0.0
            if rate > best_rate:
                best, best_rate = strategy, rate
        if best is None:
            return None
        return best, (
            f"recorded win rates override the feature rule: "
            f"{best} at {best_rate:.0%} over {board.trials(best)} runs "
            f"beats {primary} at {primary_rate:.0%} over "
            f"{board.trials(primary)} runs"
        )


def select_strategy(
    space: DesignSpace,
    scoreboard: Optional[StrategyScoreboard] = None,
) -> SelectionDecision:
    """One-call ``auto`` resolution over a built design space."""
    return StrategySelector(scoreboard).select(space)


__all__ = [
    "EXHAUSTIVE_LATTICE_LIMIT",
    "MIN_TRIALS",
    "SelectionDecision",
    "SpaceFeatures",
    "StrategyScoreboard",
    "StrategySelector",
    "extract_features",
    "select_strategy",
]
