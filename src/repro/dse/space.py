"""The design space: evaluation, caching, and the exhaustive oracle.

A design point is an unroll factor vector.  ``DesignSpace`` compiles and
estimates points on demand with memoization — the paper's headline
metric is how *few* points the guided search touches, so the space
tracks exactly which points were synthesized.

Two size notions appear in the paper:

* ``size()`` — "all possible unroll factors for each loop", the product
  of trip counts; the 0.3 % search-fraction figure is relative to this;
* ``enumerable_points()`` — the divisor-constrained subset the pipeline
  can realize (factors must divide trip counts); the exhaustive oracle
  walks these to certify the guided search's selection quality.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.dse.failures import POINT_FAILURES, PointDiagnostic, is_point_failure
from repro.incremental.delta import delta_for
from repro.incremental.hashing import context_fingerprint, point_key, program_hash
from repro.incremental.memo import current_memo
from repro.obs import current_registry, current_tracer
from repro.ir.nest import LoopNest
from repro.ir.symbols import Program
from repro.synthesis.estimator import Estimate, synthesize
from repro.synthesis.operators import OperatorLibrary, default_library
from repro.target.board import Board
from repro.transform.pipeline import CompiledDesign, PipelineOptions, compile_design
from repro.transform.unroll import UnrollVector


class DesignEvaluation:
    """One synthesized design point.

    ``design`` may be *deferred*: a point served from the incremental
    memo has its estimate without ever compiling, and the compiled form
    is only materialized if something actually needs it (confirmation
    re-estimation, differential validation, report printing).  The
    pipeline is deterministic, so the deferred compile yields exactly
    the design a from-scratch evaluation would have produced.
    """

    def __init__(self, unroll: UnrollVector, design: Optional[CompiledDesign],
                 estimate: Estimate):
        self.unroll = unroll
        self.estimate = estimate
        self._design = design
        self._compile = None

    @classmethod
    def deferred(cls, unroll: UnrollVector, estimate: Estimate,
                 compile_thunk) -> "DesignEvaluation":
        evaluation = cls(unroll, None, estimate)
        evaluation._compile = compile_thunk
        return evaluation

    @property
    def design(self) -> CompiledDesign:
        if self._design is None and self._compile is not None:
            self._design = self._compile()
            self._compile = None
        return self._design

    @property
    def design_materialized(self) -> bool:
        """True when the compiled form exists (False only for memo-served
        points nobody has re-compiled yet)."""
        return self._design is not None

    @property
    def cycles(self) -> int:
        return self.estimate.cycles

    @property
    def space(self) -> int:
        return self.estimate.space

    @property
    def balance(self) -> float:
        return self.estimate.balance

    def __str__(self) -> str:
        return f"U={self.unroll}: {self.estimate.summary()}"


class DesignSpace:
    """Evaluate design points for one program on one board, memoized."""

    def __init__(
        self,
        program: Program,
        board: Board,
        options: Optional[PipelineOptions] = None,
        library: Optional[OperatorLibrary] = None,
        pinned_depths: Optional[Tuple[int, ...]] = None,
        estimate_cache: Optional["EstimateCache"] = None,
        backend=None,
    ):
        from repro.estimate.backends import get_backend
        self.program = program
        self.board = board
        self.options = options or PipelineOptions()
        self.library = library or default_library(board.clock_ns)
        self.nest = LoopNest(program)
        #: depths forced to factor 1 (loops that add no memory parallelism).
        self.pinned_depths = tuple(pinned_depths or ())
        #: optional persistent cache (repro.synthesis.EstimateCache); the
        #: in-memory memoization below always applies on top.
        self.estimate_cache = estimate_cache
        #: which estimation model answers (repro.estimate.EstimatorBackend);
        #: ``None`` resolves to the analytic default.
        self.backend = get_backend(backend)
        self._cache: Dict[Tuple[int, ...], DesignEvaluation] = {}
        #: per-point failure diagnostics, keyed like the success cache.
        #: Failures are *not* memoized (an injected or flaky backend can
        #: recover, and re-raising a deterministic error is cheap); a
        #: point that later succeeds drops its stale diagnostic.
        self._infeasible: Dict[Tuple[int, ...], PointDiagnostic] = {}
        #: lazy context fingerprint for incremental point-memo keys.
        self._memo_context: Optional[str] = None

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, unroll: UnrollVector) -> DesignEvaluation:
        """Compile + synthesize one point (cached).

        Raises the underlying typed error on failure; permanent
        single-point failures are additionally recorded as
        :class:`PointDiagnostic` records (see :meth:`infeasible_points`)
        so fail-soft callers can report them.
        """
        key = unroll.factors
        if key not in self._cache:
            started = time.monotonic()
            with current_tracer().span(
                "dse.point",
                kernel=self.program.name,
                unroll=list(key),
                backend=self.backend.id,
            ) as span:
                try:
                    evaluation = self._evaluate_point(unroll, span)
                except POINT_FAILURES as error:
                    if not is_point_failure(error):
                        raise
                    diagnostic = PointDiagnostic.from_error(
                        unroll, error, kernel=self.program.name
                    )
                    self._infeasible[key] = diagnostic
                    span.set_attribute("outcome", "infeasible")
                    current_registry().counter(
                        "dse.point_failures", kind=diagnostic.kind
                    ).inc()
                    raise
                finally:
                    current_registry().histogram("dse.point_seconds").observe(
                        time.monotonic() - started
                    )
                estimate = evaluation.estimate
                span.set_attribute("outcome", "ok")
                span.set_attribute("cycles", estimate.cycles)
                span.set_attribute("space", estimate.space)
                span.set_attribute("balance", estimate.balance)
            self._cache[key] = evaluation
            self._infeasible.pop(key, None)
        return self._cache[key]

    def _evaluate_point(self, unroll: UnrollVector, span) -> DesignEvaluation:
        """One point's compile + estimate, via the ambient memo when
        incremental evaluation is on.

        A point-memo hit skips the entire pipeline: the stored estimate
        decodes to exactly what recomputation would produce (the key
        covers the source program, factors, board, library, options,
        and backend), and the compiled design is deferred.  A miss runs
        from scratch inside a ``begin_point`` scope so region/verify
        reuse and the structural delta land on the span.
        """
        memo = current_memo()
        if memo is None:
            span.set_attribute("incremental", "off")
            design, estimate = self._compute(unroll)
            return DesignEvaluation(unroll, design, estimate)
        pkey = point_key(
            program_hash(self.program), unroll.factors, self._context()
        )
        with memo.begin_point() as stats:
            entry = memo.point_get(pkey)
            estimate = self._decode_point(memo, entry)
            if estimate is not None:
                span.set_attribute("incremental", "hit")
                evaluation = DesignEvaluation.deferred(
                    unroll, estimate,
                    lambda: compile_design(
                        self.program, unroll, self.board.num_memories,
                        self.options,
                    ),
                )
            else:
                from repro.synthesis.cache import _encode
                design, estimate = self._compute(unroll)
                memo.point_put(pkey, _encode(estimate))
                evaluation = DesignEvaluation(unroll, design, estimate)
                span.set_attribute("incremental", "miss")
                delta = delta_for(memo)
                for name, value in delta.as_attrs().items():
                    span.set_attribute(name, value)
            span.set_attribute(
                "incremental.reused_regions", stats.reused_regions
            )
            span.set_attribute("incremental.verify_skips", stats.verify_skips)
        return evaluation

    def _compute(self, unroll: UnrollVector):
        """The from-scratch path: full pipeline + backend estimate."""
        design = compile_design(
            self.program, unroll, self.board.num_memories, self.options
        )
        if self.estimate_cache is not None:
            estimate = self.estimate_cache.synthesize(
                design.program, self.board, design.plan,
                self.library, backend=self.backend,
            )
        else:
            with current_tracer().span(
                "estimate.call", backend=self.backend.id
            ):
                estimate = self.backend.estimate(
                    design.program, self.board, design.plan, self.library,
                )
        return design, estimate

    def _context(self) -> str:
        if self._memo_context is None:
            self._memo_context = context_fingerprint(
                self.board, self.library, self.options, self.backend.id
            )
        return self._memo_context

    @staticmethod
    def _decode_point(memo, entry) -> Optional[Estimate]:
        """Decode a stored point estimate; an undecodable entry (schema
        drift in a shared journal) counts as an invalidation and the
        point re-runs from scratch."""
        if entry is None:
            return None
        from repro.synthesis.cache import _decode
        try:
            return _decode(entry)
        except (KeyError, TypeError, ValueError):
            memo.invalidate(reason="undecodable")
            return None

    def try_evaluate(self, unroll: UnrollVector) -> Optional[DesignEvaluation]:
        """Like :meth:`evaluate`, but permanent single-point failures
        return ``None`` (diagnostic recorded) instead of raising.
        Transient failures still propagate — retry machinery owns those.
        """
        try:
            return self.evaluate(unroll)
        except POINT_FAILURES as error:
            if not is_point_failure(error):
                raise
            return None

    def reestimate(self, evaluation: DesignEvaluation, backend) -> Estimate:
        """Re-estimate an already-compiled point on another backend.

        Bypasses the per-point memoization (which is keyed on this
        space's navigation backend) so a strategy can confirm a design
        on a higher-fidelity model mid-walk without poisoning the cache.
        Point failures propagate as the usual typed estimation errors.
        """
        from repro.estimate.backends import get_backend
        confirmer = get_backend(backend)
        design = evaluation.design
        if self.estimate_cache is not None:
            return self.estimate_cache.synthesize(
                design.program, self.board, design.plan, self.library,
                backend=confirmer,
            )
        with current_tracer().span("estimate.call", backend=confirmer.id):
            return confirmer.estimate(
                design.program, self.board, design.plan, self.library
            )

    @property
    def points_evaluated(self) -> int:
        return len(self._cache)

    @property
    def points_failed(self) -> int:
        return len(self._infeasible)

    def evaluated(self) -> List[DesignEvaluation]:
        return list(self._cache.values())

    def infeasible_points(self) -> List[PointDiagnostic]:
        """Diagnostics for every point that failed (and never recovered),
        in insertion order."""
        return list(self._infeasible.values())

    # -- geometry --------------------------------------------------------------

    @property
    def depth(self) -> int:
        return self.nest.depth

    @property
    def max_factors(self) -> Tuple[int, ...]:
        """Umax: full unrolling, with pinned loops at 1."""
        return tuple(
            1 if depth in self.pinned_depths else trip
            for depth, trip in enumerate(self.nest.trip_counts)
        )

    def baseline_vector(self) -> UnrollVector:
        """Ubase: no unrolling."""
        return UnrollVector.ones(self.depth)

    def max_vector(self) -> UnrollVector:
        return UnrollVector(self.max_factors)

    def is_valid(self, unroll: UnrollVector) -> bool:
        """Factors divide trip counts and respect pinned loops."""
        for depth, (factor, trip) in enumerate(zip(unroll, self.nest.trip_counts)):
            if depth in self.pinned_depths and factor != 1:
                return False
            if trip > 0 and (factor > trip or trip % factor != 0):
                return False
        return True

    def size(self) -> int:
        """The paper's design-space size: all possible unroll factors —
        the product of the trip counts."""
        total = 1
        for trip in self.nest.trip_counts:
            total *= max(trip, 1)
        return total

    def enumerable_points(self) -> Iterator[UnrollVector]:
        """Every realizable (divisor-constrained) point."""
        axes: List[List[int]] = []
        for depth, trip in enumerate(self.nest.trip_counts):
            if depth in self.pinned_depths:
                axes.append([1])
            else:
                axes.append([d for d in range(1, trip + 1) if trip % d == 0])

        def product(position: int, prefix: List[int]) -> Iterator[UnrollVector]:
            if position == len(axes):
                yield UnrollVector(tuple(prefix))
                return
            for factor in axes[position]:
                yield from product(position + 1, prefix + [factor])

        yield from product(0, [])

    # -- the oracle --------------------------------------------------------------

    def exhaustive_search(self) -> "ExhaustiveResult":
        """Evaluate every realizable point; the certification oracle.

        Points whose compilation is illegal (dependence violations) are
        skipped.  The best design minimizes cycles among capacity-feasible
        points, breaking ties by space — the paper's optimization
        criteria from Section 3.
        """
        evaluations: List[DesignEvaluation] = []
        for unroll in self.enumerable_points():
            evaluation = self.try_evaluate(unroll)
            if evaluation is not None:
                evaluations.append(evaluation)
        feasible = [
            e for e in evaluations if e.estimate.fits(self.board)
        ]
        pool = feasible or evaluations
        if not pool:
            from repro.errors import NoFeasiblePoint
            raise NoFeasiblePoint(
                f"exhaustive search over {self.program.name}: every point "
                f"failed ({self.points_failed} failures)"
            )
        best = min(pool, key=lambda e: (e.cycles, e.space))
        return ExhaustiveResult(evaluations=evaluations, best=best)


@dataclass
class ExhaustiveResult:
    evaluations: List[DesignEvaluation]
    best: DesignEvaluation

    def within_performance(self, slack: float = 0.05) -> List[DesignEvaluation]:
        """Feasible designs whose cycle count is within ``slack`` of the
        best — the "comparable performance" pool for the smallest-design
        criterion."""
        limit = self.best.cycles * (1.0 + slack)
        return [e for e in self.evaluations if e.cycles <= limit]
