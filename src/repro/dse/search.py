"""The design space exploration algorithm of Figure 2.

Starting from a design in the saturation set (memory parallelism already
maximal), the search walks unroll products up and down guided by the
balance metric's monotonicity (Observation 3):

* compute bound (B > 1) and no memory-bound point seen: ``Increase``
  doubles the unroll product;
* memory bound (B < 1): the balanced design lies between the last
  compute-bound point and this one — ``SelectBetween`` bisects products;
* space exceeds capacity: shrink the same way (``FindLargestFit`` if
  even the initial point is too big);
* balanced (within tolerance): done.

Initial unroll factors follow Section 5.3: the whole saturation product
goes to a loop that carries no dependence if one exists (its unrolled
iterations are fully parallel); otherwise factors favor loops with the
largest minimum nonzero dependence distances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.dependence import DependenceGraph
from repro.dse.failures import PointDiagnostic
from repro.dse.saturation import SaturationInfo, analyze_saturation
from repro.dse.space import DesignEvaluation, DesignSpace
from repro.errors import (
    NoFeasiblePoint, PointFailureBudgetExceeded, SearchError,
)
from repro.obs import current_registry, current_tracer
from repro.transform.unroll import UnrollVector


@dataclass
class SearchOptions:
    """Tunables for the Figure-2 search."""

    #: |B - 1| within this is "balanced, so DONE".
    balance_tolerance: float = 0.10
    #: hard stop against pathological oscillation.
    max_iterations: int = 64
    #: fail-soft budget: how many infeasible points (illegal transforms,
    #: estimation failures, verifier violations) the search tolerates
    #: before declaring the nest hopeless with
    #: :class:`~repro.errors.PointFailureBudgetExceeded`.  ``None``
    #: means unlimited.
    max_point_failures: Optional[int] = 16
    #: which :class:`~repro.dse.strategy.SearchStrategy` drives the walk
    #: (a registered strategy id, or ``"auto"`` for learned selection).
    strategy: str = "balance"


@dataclass
class TraceStep:
    """One search iteration, for the narrative trace."""

    unroll: UnrollVector
    balance: float
    cycles: int
    space: int
    verdict: str

    def __str__(self) -> str:
        return (
            f"U={self.unroll}: balance={self.balance:.3f} cycles={self.cycles} "
            f"space={self.space} -> {self.verdict}"
        )


@dataclass(frozen=True)
class FidelitySwitch:
    """One mid-walk backend escalation a strategy requested.

    Recorded outside the trace (trace steps narrate the *walk*; fidelity
    switches narrate the *estimation policy*), so trace-pinning callers
    are unaffected when multi-fidelity mode is on.
    """

    unroll: Tuple[int, ...]
    from_backend: str
    to_backend: str
    reason: str
    cycles_before: int
    cycles_after: int

    def as_dict(self) -> dict:
        return {
            "unroll": list(self.unroll),
            "from_backend": self.from_backend,
            "to_backend": self.to_backend,
            "reason": self.reason,
            "cycles_before": self.cycles_before,
            "cycles_after": self.cycles_after,
        }


@dataclass
class SearchResult:
    """What the guided search found and how."""

    selected: DesignEvaluation
    trace: List[TraceStep]
    saturation: SaturationInfo
    initial: UnrollVector
    #: diagnostics for points that failed and were skipped (fail-soft).
    infeasible: Tuple[PointDiagnostic, ...] = ()
    #: which strategy produced this result (registered strategy id).
    strategy: str = "balance"
    #: mid-walk backend escalations the strategy requested (multi-fidelity).
    fidelity_switches: Tuple[FidelitySwitch, ...] = ()

    @property
    def points_searched(self) -> int:
        return len({step.unroll.factors for step in self.trace})


class BalanceGuidedSearch:
    """Runs Figure 2 over a :class:`DesignSpace`."""

    def __init__(
        self,
        space: DesignSpace,
        options: Optional[SearchOptions] = None,
    ):
        self.space = space
        self.options = options or SearchOptions()
        self.graph = DependenceGraph.build(space.nest)
        self.saturation = analyze_saturation(
            space.program, space.board.num_memories
        )
        self.priority = self._loop_priority()
        self._point_failures = 0

    # -- the algorithm (Figure 2) ---------------------------------------------

    def run(self) -> SearchResult:
        """Walk Figure 2 under a ``dse.search`` span recording the
        walk's shape (iterations, points searched, final selection)."""
        with current_tracer().span(
            "dse.search", kernel=self.space.program.name
        ) as span:
            result = self._run()
            span.set_attribute("iterations", len(result.trace))
            span.set_attribute("points_searched", result.points_searched)
            span.set_attribute("infeasible", len(result.infeasible))
            span.set_attribute(
                "selected", list(result.selected.unroll.factors)
            )
            registry = current_registry()
            registry.histogram(
                "dse.search_iterations",
                boundaries=(1, 2, 4, 8, 16, 32, 64),
            ).observe(len(result.trace))
            return result

    def _run(self) -> SearchResult:
        capacity = self.space.board.fpga.capacity_slices
        u_base = self.space.baseline_vector()
        u_max = self.space.max_vector()
        u_init = self.initial_vector()

        u_curr = u_init
        u_mb = u_max          # best-known memory-bound point
        u_cb: Optional[UnrollVector] = None  # last compute-bound point that fit
        trace: List[TraceStep] = []
        visited: Set[Tuple[int, ...]] = set()
        ok = False
        self._point_failures = 0

        for _ in range(self.options.max_iterations):
            if ok:
                break
            evaluation = self._evaluate_point(u_curr)
            if evaluation is None:
                # Infeasible point (illegal jam, verifier violation,
                # estimation failure): record-and-skip, shrinking toward
                # the last good design like a capacity failure.
                fallback = u_cb or u_base
                shrunk = self.select_between(fallback, u_curr)
                if shrunk == u_curr:
                    u_curr = fallback
                    ok = True
                else:
                    u_curr = shrunk
                    if u_curr == u_cb:
                        ok = True
                continue
            visited.add(u_curr.factors)
            balance = evaluation.balance

            if evaluation.space > capacity:
                verdict = "exceeds capacity"
                if u_curr == u_init:
                    u_curr = self.find_largest_fit(u_base, u_curr)
                    ok = True
                else:
                    u_curr = self.select_between(u_cb or u_base, u_curr)
            elif self._balanced(balance):
                verdict = "balanced, done"
                ok = True
            elif balance < 1.0:
                verdict = "memory bound"
                u_mb = u_curr
                if u_curr == u_init:
                    ok = True
                else:
                    u_curr = self.select_between(u_cb or u_base, u_mb)
            else:
                verdict = "compute bound"
                u_cb = u_curr
                if u_mb == u_max:
                    u_curr = self.increase(u_cb)
                else:
                    u_curr = self.select_between(u_cb, u_mb)
            trace.append(TraceStep(
                evaluation.unroll, balance, evaluation.cycles,
                evaluation.space, verdict,
            ))
            if u_cb is not None and u_curr == u_cb:
                ok = True
            if not ok and u_curr.factors in visited:
                ok = True  # no new points reachable

        selected = self._final_selection(u_curr, capacity)
        return SearchResult(
            selected=selected,
            trace=trace,
            saturation=self.saturation,
            initial=u_init,
            infeasible=tuple(self.space.infeasible_points()),
        )

    # -- fail-soft machinery --------------------------------------------------

    def _evaluate_point(
        self, unroll: UnrollVector
    ) -> Optional[DesignEvaluation]:
        """Evaluate one point; ``None`` marks it infeasible.

        Every infeasible point spends one unit of the failure budget;
        past the budget the nest is hopeless and the search aborts with
        a typed :class:`~repro.errors.PointFailureBudgetExceeded` whose
        message still names the underlying failure kinds.  Transient
        errors propagate untouched — the caller's retry machinery, not
        this search, owns those.
        """
        evaluation = self.space.try_evaluate(unroll)
        if evaluation is None:
            self._point_failures += 1
            budget = self.options.max_point_failures
            if budget is not None and self._point_failures > budget:
                raise PointFailureBudgetExceeded(
                    f"search of {self.space.program.name} exceeded the "
                    f"point-failure budget ({budget}): "
                    f"{self._failure_summary()}"
                )
        return evaluation

    def _final_selection(
        self, u_curr: UnrollVector, capacity: int
    ) -> DesignEvaluation:
        """The walk's endpoint, or the best feasible point seen.

        No budget accounting here: once the walk is over, a failing
        endpoint should degrade to the best already-evaluated design,
        never abort an exploration that has a usable answer.
        """
        evaluation = self.space.try_evaluate(u_curr)
        if evaluation is not None:
            return evaluation
        evaluated = self.space.evaluated()
        fits = [e for e in evaluated if e.space <= capacity]
        pool = fits or evaluated
        if pool:
            return min(pool, key=lambda e: (e.cycles, e.space))
        raise NoFeasiblePoint(
            f"no feasible design point for {self.space.program.name}: "
            f"{self._failure_summary()}"
        )

    def _failure_summary(self) -> str:
        """Failure kinds histogram plus the most recent message."""
        diagnostics = self.space.infeasible_points()
        if not diagnostics:
            return "no failures recorded"
        kinds: Dict[str, int] = {}
        for diagnostic in diagnostics:
            kinds[diagnostic.kind] = kinds.get(diagnostic.kind, 0) + 1
        histogram = ", ".join(
            f"{kind} x{count}" for kind, count in sorted(kinds.items())
        )
        return (
            f"{len(diagnostics)} point(s) failed ({histogram}); "
            f"last: {diagnostics[-1].message}"
        )

    # -- Uinit (Section 5.3) -------------------------------------------------------

    def initial_vector(self) -> UnrollVector:
        """Pick Uinit from the saturation set.

        Prefer putting the whole product on the highest-priority loop —
        a dependence-free loop if one exists, else the loop carrying the
        largest minimum dependence distance.
        """
        candidates = list(self.saturation.saturation_set)
        if not candidates:
            raise SearchError("empty saturation set; is the nest degenerate?")

        def rank(vector: UnrollVector) -> Tuple:
            return tuple(-vector[depth] for depth in self.priority)

        return min(candidates, key=rank)

    def _loop_priority(self) -> List[int]:
        """Depths ordered by unrolling desirability (Section 5.3)."""
        varying = list(self.saturation.memory_varying_depths)
        if not varying:
            varying = list(range(self.space.depth))
        parallel = [d for d in varying if self.graph.loop_is_parallel(d)]
        rest = [d for d in varying if d not in parallel]

        def distance_key(depth: int) -> Tuple:
            distance = self.graph.min_nonzero_distance(depth)
            return (-(distance or 0), depth)

        rest.sort(key=distance_key)
        # Non-varying loops last: they add operator parallelism only.
        others = [d for d in range(self.space.depth)
                  if d not in varying and d not in self.space.pinned_depths]
        return parallel + rest + others

    # -- moves ----------------------------------------------------------------------

    def increase(self, current: UnrollVector) -> UnrollVector:
        """Return U' with P(U') = 2 * P(U), U <= U' <= Umax.

        Doubles the unrollable loop with the smallest current factor
        (ties broken by priority): the initial point already spent the
        whole saturation product on the best loop, so growth spreads
        across the nest, unrolling "all loops in the nest" as Section 5.3
        describes for sustained compute-bound designs.  Returns
        ``current`` unchanged when fully unrolled (the paper's
        no-points-left case).
        """
        order = self.priority + [d for d in range(self.space.depth)
                                 if d not in self.priority]
        by_laggard = sorted(order, key=lambda depth: (current[depth], order.index(depth)))
        for depth in by_laggard:
            candidate = current.with_factor(depth, current[depth] * 2)
            if self.space.is_valid(candidate):
                return candidate
        return current

    def select_between(
        self, small: UnrollVector, large: UnrollVector
    ) -> UnrollVector:
        """Approximate binary search between two products.

        Targets the product ``(P(small) + P(large)) / 2`` rounded to a
        multiple of Psat, over vectors component-wise between the
        endpoints; falls back toward ``small`` when no realizable vector
        hits any intermediate product.
        """
        p_small, p_large = small.product, large.product
        if p_large <= p_small:
            return small
        psat = max(self.saturation.psat, 1)
        midpoint = (p_small + p_large) // 2
        targets = self._product_targets(midpoint, p_small, p_large, psat)
        boxed = self._vectors_between(small, large)
        for target in targets:
            candidates = [v for v in boxed if v.product == target]
            if candidates:
                return min(
                    candidates,
                    key=lambda v: tuple(-v[d] for d in self.priority),
                )
        return small

    def find_largest_fit(
        self, base: UnrollVector, limit: UnrollVector
    ) -> UnrollVector:
        """Largest design between Ubase and an oversized Uinit that fits
        on the device, by descending product, regardless of balance."""
        capacity = self.space.board.fpga.capacity_slices
        candidates = sorted(
            self._vectors_between(base, limit),
            key=lambda v: (-v.product,) + tuple(-v[d] for d in self.priority),
        )
        for candidate in candidates:
            if candidate == limit:
                continue
            evaluation = self._evaluate_point(candidate)
            if evaluation is not None and evaluation.space <= capacity:
                return candidate
        return base

    # -- helpers ----------------------------------------------------------------------

    def _balanced(self, balance: float) -> bool:
        return abs(balance - 1.0) <= self.options.balance_tolerance

    def _product_targets(
        self, midpoint: int, low: int, high: int, psat: int
    ) -> List[int]:
        """Candidate products strictly between the endpoints, nearest the
        midpoint first, preferring multiples of Psat."""
        exact = [
            p for p in range(low + 1, high)
            if p % psat == 0
        ]
        others = [p for p in range(low + 1, high) if p % psat != 0]
        exact.sort(key=lambda p: abs(p - midpoint))
        others.sort(key=lambda p: abs(p - midpoint))
        return exact + others

    def _vectors_between(
        self, small: UnrollVector, large: UnrollVector
    ) -> List[UnrollVector]:
        """All realizable vectors component-wise between the endpoints."""
        trips = self.space.nest.trip_counts
        axes: List[List[int]] = []
        for depth in range(self.space.depth):
            lo, hi = small[depth], large[depth]
            axes.append([
                f for f in range(lo, hi + 1)
                if trips[depth] % f == 0
                and (depth not in self.space.pinned_depths or f == 1)
            ])
        result: List[UnrollVector] = []

        def extend(position: int, prefix: List[int]) -> None:
            if position == len(axes):
                result.append(UnrollVector(tuple(prefix)))
                return
            for factor in axes[position]:
                extend(position + 1, prefix + [factor])

        extend(0, [])
        return result
