"""Structured per-point failure diagnostics for fail-soft exploration.

One malformed design point should cost the search *one point*, not the
whole kernel: the DSE layer catches the typed, permanent failures a
point evaluation can raise — illegal transforms, verifier violations,
estimation failures, capacity errors — and records each as an
*infeasible point* carrying everything a report needs to say what died
and where (kernel, unroll vector, pipeline stage, source location).
Transient failures are deliberately **not** in this family: retrying the
same point can fix them, so they propagate to the job-level retry
machinery instead of being branded infeasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import (
    CapacityError, EstimationError, TransformError, failure_kind,
    is_transient,
)
from repro.transform.unroll import UnrollVector

#: The typed failures that make one design point infeasible without
#: implicating the rest of the space.  ``VerificationError`` is a
#: ``TransformError``; ``CorruptEstimate`` is an ``EstimationError``.
POINT_FAILURES = (TransformError, EstimationError, CapacityError)


def is_point_failure(error: BaseException) -> bool:
    """Whether an exception is a permanent single-point failure."""
    return isinstance(error, POINT_FAILURES) and not is_transient(error)


@dataclass(frozen=True)
class PointDiagnostic:
    """Why one design point is infeasible."""

    unroll: Tuple[int, ...]
    kind: str
    message: str
    kernel: Optional[str] = None
    stage: Optional[str] = None
    loop: Optional[str] = None
    location: Optional[str] = None

    @classmethod
    def from_error(
        cls, unroll: UnrollVector, error: BaseException,
        kernel: Optional[str] = None,
    ) -> "PointDiagnostic":
        context = error.context() if isinstance(error, TransformError) else {}
        return cls(
            unroll=tuple(unroll),
            kind=failure_kind(error),
            message=str(error),
            kernel=context.get("kernel") or kernel,
            stage=context.get("stage"),
            loop=context.get("loop"),
            location=context.get("location"),
        )

    def as_dict(self) -> Dict[str, Any]:
        """Primitives-only form for telemetry/JSON payloads."""
        record: Dict[str, Any] = {
            "unroll": list(self.unroll),
            "kind": self.kind,
            "message": self.message,
        }
        for key in ("kernel", "stage", "loop", "location"):
            value = getattr(self, key)
            if value:
                record[key] = value
        return record

    def __str__(self) -> str:
        factors = ", ".join(str(f) for f in self.unroll)
        where = f" at stage {self.stage}" if self.stage else ""
        return f"U=({factors}) infeasible ({self.kind}{where}): {self.message}"
