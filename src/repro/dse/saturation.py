"""Saturation-point analysis (Section 5.1).

The *saturation point* is the smallest unroll product at which the
unrolled body's memory accesses can fill all the board's memories every
cycle.  With ``R`` uniformly generated read sets and ``W`` write sets
surviving scalar replacement, the paper defines::

    Psat = lcm(gcd(R, W), NumMemories)

and the *saturation set* ``Sat`` as the unroll vectors whose product is
``Psat``, where only loops that actually vary the surviving memory
accesses get factors above 1 ("the saturation point considers unrolling
only those loops that will introduce additional memory parallelism").
For MM this pins the innermost loop at 1 — loop-invariant code motion
removed all its memory accesses — reproducing the paper's restriction
of the MM search to the two outermost loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd, lcm
from typing import List, Set, Tuple

from repro.analysis.reuse import ReuseAnalysis, ReuseKind
from repro.ir.nest import LoopNest
from repro.ir.symbols import Program
from repro.transform.unroll import UnrollVector


@dataclass(frozen=True)
class SaturationInfo:
    """R, W, Psat, and the loops eligible for memory-parallel unrolling."""

    read_sets: int
    write_sets: int
    psat: int
    #: depths of loops whose unrolling adds memory parallelism.
    memory_varying_depths: Tuple[int, ...]
    #: every unroll vector in the saturation set Sat.
    saturation_set: Tuple[UnrollVector, ...]


def analyze_saturation(program: Program, num_memories: int) -> SaturationInfo:
    """Compute the saturation structure of a loop-nest program."""
    nest = LoopNest(program)
    reuse = ReuseAnalysis.run(nest)
    read_sets, write_sets, varying = _surviving_sets(reuse, nest)
    psat = compute_psat(read_sets, write_sets, num_memories)
    vectors = saturation_vectors(nest, psat, varying)
    return SaturationInfo(
        read_sets=read_sets,
        write_sets=write_sets,
        psat=psat,
        memory_varying_depths=tuple(sorted(varying)),
        saturation_set=tuple(vectors),
    )


def compute_psat(read_sets: int, write_sets: int, num_memories: int) -> int:
    """``Psat = lcm(gcd(R, W), NumMemories)`` with gcd(0,0) taken as 1."""
    base = gcd(read_sets, write_sets)
    if base == 0:
        base = 1
    return lcm(base, num_memories)


def _surviving_sets(
    reuse: ReuseAnalysis, nest: LoopNest
) -> Tuple[int, int, Set[int]]:
    """Count uniformly generated sets with steady-state memory accesses
    after scalar replacement, and the loop depths that vary them.

    ROTATING groups vanish from the steady state (their loads move to
    the peeled first carrier iteration).  INVARIANT groups keep one load
    (and one store if written) at their hoist level.  Everything else
    keeps its reads/writes in place.
    """
    reads = writes = 0
    varying: Set[int] = set()
    index_vars = nest.index_vars
    for group in reuse.groups:
        if group.kind is ReuseKind.ROTATING:
            continue
        has_reads = any(access.is_read for access in group.accesses)
        mentioned = set()
        for access in group.accesses:
            mentioned.update(access.variables())
        depths = {index_vars.index(var) for var in mentioned}
        if has_reads:
            reads += 1
            varying.update(depths)
        if group.has_write:
            writes += 1
            varying.update(depths)
    return reads, writes, varying


def saturation_vectors(
    nest: LoopNest, psat: int, varying: Set[int]
) -> List[UnrollVector]:
    """All unroll vectors with product ``psat``, factors dividing the
    trip counts, and 1 everywhere except memory-varying loops.

    If the trip counts cannot realize the full product (tiny nests), the
    vectors with the largest achievable product are returned instead, so
    the search always has a starting point.
    """
    depth = nest.depth
    trips = nest.trip_counts
    eligible = sorted(varying) if varying else list(range(depth))

    best: List[UnrollVector] = []
    best_product = 0

    def extend(position: int, remaining: List[int], factors: List[int]) -> None:
        nonlocal best, best_product
        if position == len(eligible):
            product = 1
            for factor in factors:
                product *= factor
            if product > psat:
                return
            vector = UnrollVector.ones(depth)
            for depth_index, factor in zip(eligible, factors):
                vector = vector.with_factor(depth_index, factor)
            if product > best_product:
                best, best_product = [vector], product
            elif product == best_product:
                best.append(vector)
            return
        depth_index = eligible[position]
        for factor in _divisors(trips[depth_index]):
            if factor > psat:
                break
            extend(position + 1, remaining, factors + [factor])

    extend(0, [], [])
    return best


def _divisors(value: int) -> List[int]:
    if value <= 0:
        return [1]
    return [d for d in range(1, value + 1) if value % d == 0]
