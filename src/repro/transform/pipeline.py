"""The full code-generation pipeline of Figure 3.

Given a loop-nest program and an unroll factor vector, applies the
paper's transformation sequence::

    unroll-and-jam -> scalar replacement -> loop peeling ->
    loop-invariant code motion -> loop normalization -> custom data layout

and returns a :class:`CompiledDesign` bundling the transformed program
with its layout plan — everything behavioral synthesis needs to estimate
the design point.

The pipeline requires unroll factors that divide the trip counts: a
residual epilogue loop would make the program no longer a single
near-perfect nest, which scalar replacement needs.  (The raw
:func:`repro.transform.unroll.unroll_and_jam` supports epilogues for
callers that want them without the rest of the pipeline.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis.dependence import DependenceGraph
from repro.errors import TransformError
from repro.ir.nest import LoopNest
from repro.ir.symbols import Program
from repro.layout import apply_layout
from repro.layout.mapping import map_memories
from repro.layout.plan import LayoutPlan
from repro.transform.licm import hoist_invariants
from repro.transform.normalize import normalize_loops
from repro.transform.peel import peel_loop
from repro.transform.scalar_replacement import (
    ReplacementStats, scalar_replace,
)
from repro.transform.unroll import UnrollVector, unroll_and_jam


@dataclass
class PipelineOptions:
    """Knobs for the code-generation pipeline.

    Attributes:
        exploit_outer_reuse: exploit reuse carried by outer loops with
            rotating register banks (the paper's extension over
            Carr–Kennedy); disable for the ablation baseline.
        register_cap: drop the largest register consumers when the
            scalar-replacement register estimate exceeds this (§5.4's
            space/storage trade-off without retiling).
        apply_data_layout: run array renaming + memory mapping; when
            False every array maps whole to one memory round-robin.
        run_licm: run the cleanup loop-invariant code motion pass.
        narrow_bitwidths: run value-range analysis and shrink declared
            types before transforming (Section 2.4's "reduced data
            widths"); operator and register sizes downstream follow.
        input_value_ranges: optional data-range assumptions feeding the
            bitwidth analysis (e.g. a kernel's
            :meth:`~repro.kernels.Kernel.value_ranges`).
    """

    exploit_outer_reuse: bool = True
    register_cap: Optional[int] = None
    apply_data_layout: bool = True
    run_licm: bool = True
    narrow_bitwidths: bool = False
    input_value_ranges: Optional[dict] = None


@dataclass
class CompiledDesign:
    """One fully transformed design point."""

    source: Program
    program: Program
    unroll: UnrollVector
    plan: LayoutPlan
    stats: ReplacementStats
    peeled: Tuple[str, ...]

    @property
    def name(self) -> str:
        factors = "x".join(str(f) for f in self.unroll)
        return f"{self.source.name}@{factors}"


def check_unroll_legality(program: Program, unroll: UnrollVector) -> None:
    """Raise :class:`TransformError` if unroll-and-jam is illegal or the
    factors do not divide the trip counts."""
    nest = LoopNest(program)
    if len(unroll) != nest.depth:
        raise TransformError(
            f"unroll vector {unroll} does not match nest depth {nest.depth}"
        )
    graph: Optional[DependenceGraph] = None
    for depth, (info, factor) in enumerate(zip(nest.loops, unroll)):
        if factor == 1:
            continue
        if info.trip_count % factor != 0:
            raise TransformError(
                f"unroll factor {factor} does not divide trip count "
                f"{info.trip_count} of loop {info.var!r}"
            )
        if graph is None:
            graph = DependenceGraph.build(nest)
        if not graph.unroll_and_jam_legal(depth):
            raise TransformError(
                f"unroll-and-jam of loop {info.var!r} is illegal: a carried "
                "dependence has a negative inner entry"
            )


def compile_design(
    program: Program,
    unroll: UnrollVector,
    num_memories: int,
    options: Optional[PipelineOptions] = None,
) -> CompiledDesign:
    """Run the whole Figure-3 transformation sequence for one unroll
    factor vector."""
    options = options or PipelineOptions()
    check_unroll_legality(program, unroll)

    if options.narrow_bitwidths:
        from repro.transform.narrowing import narrow_types
        program = narrow_types(program, input_ranges=options.input_value_ranges)

    unrolled = unroll_and_jam(program, unroll)
    replaced = scalar_replace(
        unrolled,
        exploit_outer_loops=options.exploit_outer_reuse,
        register_cap=options.register_cap,
    )
    current = replaced.program
    nest = LoopNest(current)
    peeled_vars: List[str] = []
    for depth in replaced.carriers_to_peel:
        var = nest.index_vars[depth]
        current = peel_loop(current, var)
        peeled_vars.append(var)
    if options.run_licm:
        current = hoist_invariants(current)
    current = normalize_loops(current)
    if options.apply_data_layout:
        current, plan = apply_layout(current, num_memories)
    else:
        physical, _interleaved = map_memories(current, num_memories)
        plan = LayoutPlan(num_memories=num_memories, physical=physical)
    return CompiledDesign(
        source=program,
        program=current,
        unroll=unroll,
        plan=plan,
        stats=replaced.stats,
        peeled=tuple(peeled_vars),
    )
