"""The full code-generation pipeline of Figure 3.

Given a loop-nest program and an unroll factor vector, applies the
paper's transformation sequence::

    unroll-and-jam -> scalar replacement -> loop peeling ->
    loop-invariant code motion -> loop normalization -> custom data layout

and returns a :class:`CompiledDesign` bundling the transformed program
with its layout plan — everything behavioral synthesis needs to estimate
the design point.

The pipeline requires unroll factors that divide the trip counts: a
residual epilogue loop would make the program no longer a single
near-perfect nest, which scalar replacement needs.  (The raw
:func:`repro.transform.unroll.unroll_and_jam` supports epilogues for
callers that want them without the rest of the pipeline.)

Every stage runs under a :class:`TransformContract`: a
:class:`TransformError` escaping a stage is annotated with the stage
name and kernel so DSE diagnostics can say *where* a point died, and
(unless ``PipelineOptions.verify`` is off) the stage's output is checked
against the IR invariants of :mod:`repro.ir.verify` — with affine
subscripts required up to the data-layout stage, which legitimately
introduces ``/`` and ``%`` through static residue banking.  A contract
violation raises :class:`~repro.errors.VerificationError`, evidence of
a transform bug rather than a bad input.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import faults
from repro.analysis.dependence import DependenceGraph
from repro.errors import TransformError
from repro.incremental.hashing import program_hash
from repro.incremental.memo import current_memo
from repro.obs import current_tracer
from repro.ir.nest import LoopNest
from repro.ir.symbols import Program
from repro.ir.verify import check_ir
from repro.layout import apply_layout
from repro.layout.mapping import map_memories
from repro.layout.plan import LayoutPlan
from repro.transform.licm import hoist_invariants
from repro.transform.normalize import normalize_loops
from repro.transform.peel import peel_loop
from repro.transform.scalar_replacement import (
    ReplacementStats, scalar_replace,
)
from repro.transform.unroll import UnrollVector, unroll_and_jam


@dataclass
class PipelineOptions:
    """Knobs for the code-generation pipeline.

    Attributes:
        exploit_outer_reuse: exploit reuse carried by outer loops with
            rotating register banks (the paper's extension over
            Carr–Kennedy); disable for the ablation baseline.
        register_cap: drop the largest register consumers when the
            scalar-replacement register estimate exceeds this (§5.4's
            space/storage trade-off without retiling).
        apply_data_layout: run array renaming + memory mapping; when
            False every array maps whole to one memory round-robin.
        run_licm: run the cleanup loop-invariant code motion pass.
        narrow_bitwidths: run value-range analysis and shrink declared
            types before transforming (Section 2.4's "reduced data
            widths"); operator and register sizes downstream follow.
        input_value_ranges: optional data-range assumptions feeding the
            bitwidth analysis (e.g. a kernel's
            :meth:`~repro.kernels.Kernel.value_ranges`).
        verify: run the IR invariant checker after every stage
            (post-condition contracts); disable only to shave the walk
            off hot paths that have other correctness evidence.
    """

    exploit_outer_reuse: bool = True
    register_cap: Optional[int] = None
    apply_data_layout: bool = True
    run_licm: bool = True
    narrow_bitwidths: bool = False
    input_value_ranges: Optional[dict] = None
    verify: bool = True


@dataclass(frozen=True)
class TransformContract:
    """The checkable obligations around one pipeline stage.

    ``affine`` is the postcondition knob: up to (and including) loop
    normalization every stage must keep array subscripts affine in the
    loop indices; the data-layout stage is exempt because static residue
    banking rewrites subscripts with ``/`` and ``%``.
    """

    stage: str
    affine: bool = True


#: The Figure-3 sequence, in order.  ``input`` is the entry
#: precondition — the source program itself must verify before any
#: stage may blame a transform for a violation.
PIPELINE_CONTRACTS: Tuple[TransformContract, ...] = (
    TransformContract("input"),
    TransformContract("narrowing"),
    TransformContract("unroll"),
    TransformContract("scalar_replacement"),
    TransformContract("peel"),
    TransformContract("licm"),
    TransformContract("normalize"),
    TransformContract("layout", affine=False),
)

_CONTRACTS = {contract.stage: contract for contract in PIPELINE_CONTRACTS}


class _StageRunner:
    """Wraps each stage with its contract: annotate escaping transform
    errors with stage/kernel context, verify the stage's output, and
    record a ``pipeline.<stage>`` span against the ambient tracer."""

    def __init__(self, kernel: str, options: "PipelineOptions"):
        self.kernel = kernel
        self.options = options

    @contextmanager
    def guard(self, stage: str):
        with current_tracer().span(f"pipeline.{stage}", kernel=self.kernel):
            try:
                yield
            except TransformError as error:
                annotated = error.annotate(stage=stage, kernel=self.kernel)
                if annotated is error:
                    raise
                raise annotated from error

    def checked(self, stage: str, program: Program) -> Program:
        if self.options.verify:
            contract = _CONTRACTS.get(stage) or TransformContract(stage)
            # A program already verified under the same affine
            # requirement cannot fail a second time: check_ir is a pure
            # function of the IR (stage/kernel only decorate messages),
            # so the memo skips the re-check.  Only successes are
            # memoized — a failing check always raises fresh.
            memo = current_memo()
            key = None
            if memo is not None:
                key = f"{int(contract.affine)}:{program_hash(program)}"
                if memo.verified(key):
                    return program
            check_ir(
                program,
                require_affine=contract.affine,
                stage=stage,
                kernel=self.kernel,
            )
            if memo is not None:
                memo.note_verified(key)
        return program


@dataclass
class CompiledDesign:
    """One fully transformed design point."""

    source: Program
    program: Program
    unroll: UnrollVector
    plan: LayoutPlan
    stats: ReplacementStats
    peeled: Tuple[str, ...]

    @property
    def name(self) -> str:
        factors = "x".join(str(f) for f in self.unroll)
        return f"{self.source.name}@{factors}"


def check_unroll_legality(program: Program, unroll: UnrollVector) -> None:
    """Raise :class:`TransformError` if unroll-and-jam is illegal or the
    factors do not divide the trip counts."""
    nest = LoopNest(program)
    if len(unroll) != nest.depth:
        raise TransformError(
            f"unroll vector {unroll} does not match nest depth {nest.depth}",
            kernel=program.name, stage="legality",
        )
    # Dependence legality is factor-independent: whether unroll-and-jam
    # of depth d is legal depends only on the source nest, so the set of
    # illegal depths is memoized per program hash and one graph build
    # serves every point of a walk.  Divisibility stays inline — it is
    # the factor-dependent half, and it is free.
    memo = current_memo()
    illegal: Optional[Tuple[int, ...]] = None
    if memo is not None:
        illegal = memo.legality_get(program_hash(program))
    graph: Optional[DependenceGraph] = None
    for depth, (info, factor) in enumerate(zip(nest.loops, unroll)):
        if factor == 1:
            continue
        if info.trip_count % factor != 0:
            raise TransformError(
                f"unroll factor {factor} does not divide trip count "
                f"{info.trip_count} of loop {info.var!r}",
                kernel=program.name, stage="legality", loop=info.var,
                location=info.loop.location,
            )
        if illegal is None:
            if graph is None:
                graph = DependenceGraph.build(nest)
            if memo is not None:
                illegal = tuple(
                    d for d in range(nest.depth)
                    if not graph.unroll_and_jam_legal(d)
                )
                memo.legality_put(program_hash(program), illegal)
        if illegal is not None:
            depth_legal = depth not in illegal
        else:
            depth_legal = graph.unroll_and_jam_legal(depth)
        if not depth_legal:
            raise TransformError(
                f"unroll-and-jam of loop {info.var!r} is illegal: a carried "
                "dependence has a negative inner entry",
                kernel=program.name, stage="legality", loop=info.var,
                location=info.loop.location,
            )


def compile_design(
    program: Program,
    unroll: UnrollVector,
    num_memories: int,
    options: Optional[PipelineOptions] = None,
) -> CompiledDesign:
    """Run the whole Figure-3 transformation sequence for one unroll
    factor vector."""
    options = options or PipelineOptions()
    with current_tracer().span(
        "pipeline",
        kernel=program.name,
        unroll=list(unroll.factors),
        memories=num_memories,
    ):
        return _compile_design(program, unroll, num_memories, options)


def _compile_design(
    program: Program,
    unroll: UnrollVector,
    num_memories: int,
    options: PipelineOptions,
) -> CompiledDesign:
    faults.check("transform", key=program.name)
    runner = _StageRunner(program.name, options)

    runner.checked("input", program)
    with runner.guard("legality"):
        check_unroll_legality(program, unroll)

    if options.narrow_bitwidths:
        from repro.transform.narrowing import narrow_types
        with runner.guard("narrowing"):
            program = runner.checked("narrowing", narrow_types(
                program, input_ranges=options.input_value_ranges,
            ))

    with runner.guard("unroll"):
        unrolled = runner.checked("unroll", unroll_and_jam(program, unroll))
    with runner.guard("scalar_replacement"):
        replaced = scalar_replace(
            unrolled,
            exploit_outer_loops=options.exploit_outer_reuse,
            register_cap=options.register_cap,
        )
        current = runner.checked("scalar_replacement", replaced.program)
    nest = LoopNest(current)
    peeled_vars: List[str] = []
    with runner.guard("peel"):
        for depth in replaced.carriers_to_peel:
            var = nest.index_vars[depth]
            current = peel_loop(current, var)
            peeled_vars.append(var)
        current = runner.checked("peel", current)
    if options.run_licm:
        with runner.guard("licm"):
            current = runner.checked("licm", hoist_invariants(current))
    with runner.guard("normalize"):
        current = runner.checked("normalize", normalize_loops(current))
    with runner.guard("layout"):
        if options.apply_data_layout:
            current, plan = apply_layout(current, num_memories)
        else:
            physical, _interleaved = map_memories(current, num_memories)
            plan = LayoutPlan(num_memories=num_memories, physical=physical)
        current = runner.checked("layout", current)
    return CompiledDesign(
        source=program,
        program=current,
        unroll=unroll,
        plan=plan,
        stats=replaced.stats,
        peeled=tuple(peeled_vars),
    )
