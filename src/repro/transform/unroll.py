"""Unroll-and-jam.

The transformation at the heart of the design space: unrolling one or
more loops of the nest by an *unroll factor vector* ``U = (u1, ..., un)``
replicates the loop body, exposing operator parallelism to behavioral
synthesis and shrinking dependence distances so scalar replacement can
turn reused values into registers (Section 4).

Unrolling loop ``i`` by factor ``u`` multiplies its step by ``u`` and
replicates the body ``u`` times with ``i`` shifted by ``k * step``; for a
non-innermost loop the replicated inner loops are *jammed* (fused) back
into one.  When ``u`` does not divide the trip count, a residual
("epilogue") loop with the original step covers the leftover iterations —
note an epilogue makes the result no longer a single near-perfect nest,
so the DSE pipeline restricts itself to divisor factors while this
function stays general.

Scalar temporaries that are dead on entry to the body are privatized
(renamed per copy) so jamming cannot cross copies' values; a scalar that
is live into the body (an accumulator) keeps its name, which is correct
because copies execute in iteration order within the jammed body.

Legality across iterations is the caller's job via
:meth:`repro.analysis.DependenceGraph.unroll_and_jam_legal`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import TransformError
from repro.ir.expr import BinOp, Expr, IntLit, VarRef, fold_constants, substitute
from repro.ir.nest import LoopNest
from repro.ir.stmt import Assign, For, If, RotateRegisters, Stmt
from repro.ir.symbols import Program, VarDecl
from repro.ir.types import INT32


@dataclass(frozen=True)
class UnrollVector:
    """An unroll factor per loop, outermost first (the paper's ``U``)."""

    factors: Tuple[int, ...]

    def __post_init__(self):
        for factor in self.factors:
            if factor < 1:
                raise TransformError(f"unroll factors must be >= 1, got {self.factors}")

    @classmethod
    def ones(cls, depth: int) -> "UnrollVector":
        return cls((1,) * depth)

    @classmethod
    def of(cls, *factors: int) -> "UnrollVector":
        return cls(tuple(factors))

    @property
    def product(self) -> int:
        """The paper's ``P(U)`` — product of all factors."""
        result = 1
        for factor in self.factors:
            result *= factor
        return result

    def __len__(self) -> int:
        return len(self.factors)

    def __getitem__(self, depth: int) -> int:
        return self.factors[depth]

    def __iter__(self):
        return iter(self.factors)

    def with_factor(self, depth: int, factor: int) -> "UnrollVector":
        factors = list(self.factors)
        factors[depth] = factor
        return UnrollVector(tuple(factors))

    def dominates(self, other: "UnrollVector") -> bool:
        """True if every factor is >= the other's (the component-wise
        ordering Increase/SelectBetween must respect)."""
        return all(a >= b for a, b in zip(self.factors, other.factors))

    def clamped(self, maxima: Sequence[int]) -> "UnrollVector":
        return UnrollVector(tuple(min(f, m) for f, m in zip(self.factors, maxima)))

    def __str__(self) -> str:
        return "(" + ", ".join(str(f) for f in self.factors) + ")"


def unroll_and_jam(program: Program, factors: UnrollVector) -> Program:
    """Apply unroll-and-jam to the program's loop nest.

    Returns a new program; the input is untouched.  Subscript arithmetic
    introduced by the shifts is constant-folded so downstream analyses
    see normalized offsets.  Privatized temporaries get fresh
    declarations appended.
    """
    nest = LoopNest(program)
    if len(factors) != nest.depth:
        raise TransformError(
            f"unroll vector has {len(factors)} entries for a depth-{nest.depth} nest",
            kernel=program.name, stage="unroll",
        )
    for info, factor in zip(nest.loops, factors):
        if factor > info.trip_count and info.trip_count > 0:
            raise TransformError(
                f"unroll factor {factor} exceeds trip count {info.trip_count} "
                f"of loop {info.var!r}",
                kernel=program.name, stage="unroll", loop=info.var,
                location=info.loop.location,
            )
    context = _UnrollContext(program)
    new_body: List[Stmt] = []
    for stmt in program.body:
        if stmt is nest.outermost:
            new_body.extend(context.unroll(stmt, list(factors.factors)))
        else:
            new_body.append(stmt)
    folded = tuple(_fold_stmt(stmt) for stmt in new_body)
    result = program.with_body(folded)
    if context.new_decls:
        result = result.with_decl(*context.new_decls)
    return result


class _UnrollContext:
    """Carries fresh-name generation state through the recursion."""

    def __init__(self, program: Program):
        self.taken: Set[str] = {decl.name for decl in program.decls}
        self.new_decls: List[VarDecl] = []

    def unroll(self, loop: For, factors: List[int]) -> List[Stmt]:
        """Unroll ``loop`` by ``factors[0]`` (inner loops by the rest).

        Returns the replacement statements: the main unrolled loop, plus
        an epilogue loop when the factor does not divide the trip count.
        """
        factor = factors[0]
        inner_factors = factors[1:]
        body = self._unroll_inner(loop.body, inner_factors)

        if factor == 1:
            return [For(loop.var, loop.lower, loop.upper, loop.step, tuple(body))]

        trip = loop.trip_count
        main_trips = (trip // factor) * factor
        main_upper = loop.lower + main_trips * loop.step

        private = _privatizable_scalars(body)
        copies: List[List[Stmt]] = []
        for k in range(factor):
            # The last copy keeps original scalar names so values that are
            # live out of the loop land in the right place.
            renames = {} if k == factor - 1 else {
                name: self._fresh(f"{name}__u{k}") for name in private
            }
            copies.append(_make_copy(body, loop.var, k * loop.step, renames))
        jammed = _jam(copies)

        main = For(loop.var, loop.lower, main_upper, loop.step * factor, jammed)
        result: List[Stmt] = [main]
        if main_trips != trip:
            result.append(For(loop.var, main_upper, loop.upper, loop.step, tuple(body)))
        return result

    def _unroll_inner(self, body: Tuple[Stmt, ...], factors: List[int]) -> List[Stmt]:
        if not factors:
            return list(body)
        result: List[Stmt] = []
        for stmt in body:
            if isinstance(stmt, For):
                result.extend(self.unroll(stmt, factors))
            else:
                result.append(stmt)
        return result

    def _fresh(self, base: str) -> str:
        name = base
        counter = 0
        while name in self.taken:
            counter += 1
            name = f"{base}_{counter}"
        self.taken.add(name)
        self.new_decls.append(VarDecl(name, INT32))
        return name


def _privatizable_scalars(body: Sequence[Stmt]) -> Set[str]:
    """Scalars that are definitely written before any read in the body.

    These are per-iteration temporaries; each unrolled copy gets its own.
    The walk is conservative: a write under an ``if`` or inside an inner
    loop does not count as a definite write, and any read (anywhere,
    including inner loops or conditions) of a not-yet-definitely-written
    scalar disqualifies it.
    """
    written: Set[str] = set()
    disqualified: Set[str] = set()
    candidates: Set[str] = set()

    def read_names(expr: Expr) -> Set[str]:
        return {node.name for node in expr.walk() if isinstance(node, VarRef)}

    def scan(stmt: Stmt, definite: bool) -> None:
        if isinstance(stmt, Assign):
            reads: Set[str] = read_names(stmt.value)
            if not isinstance(stmt.target, VarRef):
                for index in stmt.target.indices:
                    reads |= read_names(index)
            for name in reads - written:
                disqualified.add(name)
            if isinstance(stmt.target, VarRef):
                candidates.add(stmt.target.name)
                if definite:
                    written.add(stmt.target.name)
        elif isinstance(stmt, If):
            for name in read_names(stmt.cond) - written:
                disqualified.add(name)
            for inner in stmt.then_body + stmt.else_body:
                scan(inner, definite=False)
        elif isinstance(stmt, For):
            disqualified.add(stmt.var)
            for inner in stmt.body:
                scan(inner, definite=False)
        elif isinstance(stmt, RotateRegisters):
            # Rotation reads every register: live-in state, never private.
            disqualified.update(stmt.registers)

    for stmt in body:
        scan(stmt, definite=True)
    return candidates - disqualified


def _make_copy(
    body: Sequence[Stmt], var: str, shift: int, renames: Dict[str, str]
) -> List[Stmt]:
    """One unrolled copy: ``var -> var + shift`` plus scalar privatization."""
    bindings: Dict[str, Expr] = {old: VarRef(new) for old, new in renames.items()}
    if shift != 0:
        bindings[var] = BinOp("+", VarRef(var), IntLit(shift))
    if not bindings:
        return list(body)
    return [_substitute_stmt(stmt, bindings, renames) for stmt in body]


def _substitute_stmt(
    stmt: Stmt, bindings: Dict[str, Expr], renames: Dict[str, str]
) -> Stmt:
    if isinstance(stmt, Assign):
        if isinstance(stmt.target, VarRef):
            target: Expr = VarRef(renames.get(stmt.target.name, stmt.target.name))
        else:
            target = substitute(stmt.target, bindings)
        return Assign(target, substitute(stmt.value, bindings))
    if isinstance(stmt, If):
        return If(
            substitute(stmt.cond, bindings),
            tuple(_substitute_stmt(s, bindings, renames) for s in stmt.then_body),
            tuple(_substitute_stmt(s, bindings, renames) for s in stmt.else_body),
        )
    if isinstance(stmt, For):
        if stmt.var in bindings:
            raise TransformError(
                f"inner loop reuses index variable {stmt.var!r}",
                stage="unroll", loop=stmt.var, location=stmt.location,
            )
        return For(
            stmt.var, stmt.lower, stmt.upper, stmt.step,
            tuple(_substitute_stmt(s, bindings, renames) for s in stmt.body),
        )
    if isinstance(stmt, RotateRegisters):
        return stmt
    raise TransformError(
        f"unknown statement node {type(stmt).__name__}", stage="unroll",
    )


def _jam(copies: List[List[Stmt]]) -> Tuple[Stmt, ...]:
    """Fuse unrolled copies.

    If the body contains loops, walk by position: loops at the same
    position fuse recursively; straight-line statements at the same
    position concatenate across copies (so every copy's pre-statements
    run before the fused inner loop).  A flat body concatenates
    copy-major, preserving each copy's internal order and iteration
    order between copies — required for shared accumulators.
    """
    template = copies[0]
    if not any(isinstance(stmt, For) for stmt in template):
        return tuple(stmt for copy in copies for stmt in copy)
    jammed: List[Stmt] = []
    for position, stmt in enumerate(template):
        if isinstance(stmt, For):
            inner_copies = []
            for copy in copies:
                inner = copy[position]
                assert isinstance(inner, For) and inner.var == stmt.var
                inner_copies.append(list(inner.body))
            jammed.append(
                For(stmt.var, stmt.lower, stmt.upper, stmt.step, _jam(inner_copies))
            )
        else:
            for copy in copies:
                jammed.append(copy[position])
    return tuple(jammed)


def _fold_stmt(stmt: Stmt) -> Stmt:
    """Recursively constant-fold every expression in a statement tree."""
    if isinstance(stmt, Assign):
        return Assign(fold_constants(stmt.target), fold_constants(stmt.value))
    if isinstance(stmt, If):
        return If(
            fold_constants(stmt.cond),
            tuple(_fold_stmt(s) for s in stmt.then_body),
            tuple(_fold_stmt(s) for s in stmt.else_body),
        )
    if isinstance(stmt, For):
        return For(
            stmt.var, stmt.lower, stmt.upper, stmt.step,
            tuple(_fold_stmt(s) for s in stmt.body),
        )
    return stmt
