"""Loop-invariant code motion.

Scalar replacement already hoists the memory accesses that matter (the
INVARIANT strategy).  This pass cleans up what remains: an assignment to
a scalar whose right-hand side is invariant in the enclosing loop, where
the scalar is written nowhere else in the loop, moves in front of the
loop.  Assignments under conditionals stay put (they may not execute).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.invariance import assigned_scalars, expr_is_invariant
from repro.ir.expr import VarRef
from repro.ir.stmt import Assign, For, If, Stmt
from repro.ir.symbols import Program


def hoist_invariants(program: Program) -> Program:
    """Apply LICM throughout the program, innermost loops first."""

    def rebuild(stmt: Stmt) -> List[Stmt]:
        if isinstance(stmt, If):
            return [If(
                stmt.cond,
                tuple(s for inner in stmt.then_body for s in rebuild(inner)),
                tuple(s for inner in stmt.else_body for s in rebuild(inner)),
            )]
        if not isinstance(stmt, For):
            return [stmt]
        body = tuple(s for inner in stmt.body for s in rebuild(inner))
        loop = For(stmt.var, stmt.lower, stmt.upper, stmt.step, body)
        hoisted, remaining = _partition(loop)
        new_loop = For(loop.var, loop.lower, loop.upper, loop.step, remaining)
        return hoisted + [new_loop]

    return program.with_body(
        tuple(s for stmt in program.body for s in rebuild(stmt))
    )


def _partition(loop: For) -> Tuple[List[Stmt], Tuple[Stmt, ...]]:
    """Split the loop body into hoistable assignments and the rest.

    Only top-level scalar assignments whose RHS is loop-invariant and
    whose target has exactly one write in the loop are moved; moving is
    iterated so chains (``a = 5; b = a + 1``) hoist together.  A loop
    that might execute zero times must keep its assignments (the hoisted
    copy would run when the original would not), so zero-trip loops are
    left alone.
    """
    if loop.trip_count == 0:
        return [], loop.body
    hoisted: List[Stmt] = []
    body = list(loop.body)
    changed = True
    while changed:
        changed = False
        current = For(loop.var, loop.lower, loop.upper, loop.step, tuple(body))
        write_counts = _write_counts(current)
        for position, stmt in enumerate(body):
            if not isinstance(stmt, Assign) or not isinstance(stmt.target, VarRef):
                continue
            if write_counts.get(stmt.target.name, 0) != 1:
                continue
            # An accumulation (target appears in its own right-hand side)
            # executes once per iteration by design; hoisting it would
            # collapse the whole reduction into a single step.
            from repro.ir.expr import referenced_scalars
            if stmt.target.name in referenced_scalars(stmt.value):
                continue
            remainder = For(
                loop.var, loop.lower, loop.upper, loop.step,
                tuple(body[:position] + body[position + 1:]),
            )
            if not expr_is_invariant(stmt.value, remainder):
                continue
            # The target must not be read before this statement in the
            # body (the pre-loop value would be observed differently).
            before = tuple(body[:position])
            if stmt.target.name in _read_scalars(before):
                continue
            hoisted.append(stmt)
            body.pop(position)
            changed = True
            break
    return hoisted, tuple(body)


def _write_counts(loop: For):
    counts = {}
    from repro.ir.stmt import walk_all, RotateRegisters
    for stmt in walk_all(loop.body):
        if isinstance(stmt, Assign) and isinstance(stmt.target, VarRef):
            counts[stmt.target.name] = counts.get(stmt.target.name, 0) + 1
        elif isinstance(stmt, RotateRegisters):
            for name in stmt.registers:
                counts[name] = counts.get(name, 0) + 1
    return counts


def _read_scalars(body: Tuple[Stmt, ...]):
    from repro.ir.stmt import walk_all
    names = set()
    for stmt in walk_all(body):
        for expr in stmt.expressions():
            for node in expr.walk():
                if isinstance(node, VarRef) and node is not getattr(stmt, "target", None):
                    names.add(node.name)
    return names
