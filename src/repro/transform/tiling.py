"""Loop tiling, used to cap on-chip register usage (Section 5.4).

When the reuse distance is large, scalar replacement would demand more
registers than the FPGA should spend on storage.  Tiling a loop splits
it into a tile-loop / element-loop pair so that rotating banks and
invariant registers are sized by the tile, and reuse is exploited fully
*within* each tile.

Because the IR requires constant loop bounds, tiling uses the
divisor form::

    for (i = 0; i < N; i++)          for (i_t = 0; i_t < N/T; i_t++)
        body(i)              ==>         for (i_e = 0; i_e < T; i_e++)
                                             body(i_t * T + i_e)

which requires ``T`` to divide the trip count and the loop to be
normalized (lower bound 0, step 1) — run
:func:`repro.transform.normalize.normalize_loops` first if needed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import TransformError
from repro.ir.expr import ArrayRef, BinOp, IntLit, VarRef, fold_constants, substitute
from repro.ir.stmt import Assign, For, If, RotateRegisters, Stmt, walk_all
from repro.ir.symbols import Program


def tile_loop(program: Program, var: str, tile: int) -> Program:
    """Tile every loop with index variable ``var`` by ``tile``.

    The element loop keeps the original variable name (so subscripts keep
    their shape for later analyses); the new tile-loop variable is
    ``{var}_t`` (made fresh on collision).
    """
    if tile < 1:
        raise TransformError(
            f"tile size must be >= 1, got {tile}",
            kernel=program.name, stage="tiling", loop=var,
        )
    taken: Set[str] = {decl.name for decl in program.decls}
    for stmt in walk_all(program.body):
        if isinstance(stmt, For):
            taken.add(stmt.var)
    found = False

    def rebuild(stmt: Stmt) -> Stmt:
        nonlocal found
        if isinstance(stmt, If):
            return If(
                stmt.cond,
                tuple(rebuild(s) for s in stmt.then_body),
                tuple(rebuild(s) for s in stmt.else_body),
            )
        if not isinstance(stmt, For):
            return stmt
        body = tuple(rebuild(s) for s in stmt.body)
        loop = For(stmt.var, stmt.lower, stmt.upper, stmt.step, body)
        if loop.var != var:
            return loop
        found = True
        if tile == 1 or tile >= loop.trip_count:
            return loop
        if loop.lower != 0 or loop.step != 1:
            raise TransformError(
                f"loop {var!r} must be normalized (lower 0, step 1) before tiling",
                stage="tiling", loop=var, location=loop.location,
            )
        if loop.trip_count % tile != 0:
            raise TransformError(
                f"tile size {tile} does not divide trip count {loop.trip_count} "
                f"of loop {var!r}",
                stage="tiling", loop=var, location=loop.location,
            )
        tile_var = _fresh(f"{var}_t", taken)
        # i -> i_t * tile + i
        replacement = BinOp(
            "+", BinOp("*", VarRef(tile_var), IntLit(tile)), VarRef(var)
        )
        inner_body = tuple(_substitute_stmt(s, var, replacement) for s in loop.body)
        element = For(var, 0, tile, 1, inner_body)
        return For(tile_var, 0, loop.trip_count // tile, 1, (element,))

    new_body = tuple(rebuild(stmt) for stmt in program.body)
    if not found:
        raise TransformError(
            f"no loop with index variable {var!r} to tile",
            kernel=program.name, stage="tiling", loop=var,
        )
    return program.with_body(new_body)


def _fresh(base: str, taken: Set[str]) -> str:
    name = base
    counter = 0
    while name in taken:
        counter += 1
        name = f"{base}{counter}"
    taken.add(name)
    return name


def _substitute_stmt(stmt: Stmt, var: str, replacement) -> Stmt:
    bindings = {var: replacement}
    if isinstance(stmt, Assign):
        target = substitute(stmt.target, bindings)
        assert isinstance(target, (VarRef, ArrayRef))
        return Assign(
            fold_constants(target), fold_constants(substitute(stmt.value, bindings))
        )
    if isinstance(stmt, If):
        return If(
            fold_constants(substitute(stmt.cond, bindings)),
            tuple(_substitute_stmt(s, var, replacement) for s in stmt.then_body),
            tuple(_substitute_stmt(s, var, replacement) for s in stmt.else_body),
        )
    if isinstance(stmt, For):
        return For(
            stmt.var, stmt.lower, stmt.upper, stmt.step,
            tuple(_substitute_stmt(s, var, replacement) for s in stmt.body),
        )
    if isinstance(stmt, RotateRegisters):
        return stmt
    raise TransformError(
        f"unknown statement node {type(stmt).__name__}", stage="tiling",
    )
