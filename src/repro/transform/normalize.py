"""Loop normalization: rewrite every loop to ``for (v = 0; v < trip; v++)``.

After unrolling, loops step by the unroll factor (``for (i = 0; i < 32;
i += 2)``).  Normalization substitutes ``v -> lower + step * v`` in the
body and resets the bounds, producing the form in Figure 1(d) where the
custom data layout can fold the remaining constant strides into memory
bank selection.
"""

from __future__ import annotations

from typing import List

from repro.ir.expr import ArrayRef, BinOp, IntLit, VarRef, fold_constants, substitute
from repro.ir.stmt import Assign, For, If, RotateRegisters, Stmt
from repro.ir.symbols import Program


def normalize_loops(program: Program) -> Program:
    """Normalize every loop in the program to lower bound 0 and step 1."""

    def rebuild(stmt: Stmt) -> Stmt:
        if isinstance(stmt, For):
            body = tuple(rebuild(s) for s in stmt.body)
            if stmt.lower == 0 and stmt.step == 1:
                return For(stmt.var, 0, stmt.upper, 1, body)
            replacement = BinOp(
                "+",
                IntLit(stmt.lower),
                BinOp("*", IntLit(stmt.step), VarRef(stmt.var)),
            )
            new_body = tuple(_substitute_stmt(s, stmt.var, replacement) for s in body)
            return For(stmt.var, 0, stmt.trip_count, 1, new_body)
        if isinstance(stmt, If):
            return If(
                stmt.cond,
                tuple(rebuild(s) for s in stmt.then_body),
                tuple(rebuild(s) for s in stmt.else_body),
            )
        return stmt

    return program.with_body(tuple(rebuild(stmt) for stmt in program.body))


def _substitute_stmt(stmt: Stmt, var: str, replacement) -> Stmt:
    bindings = {var: replacement}
    if isinstance(stmt, Assign):
        target = substitute(stmt.target, bindings)
        assert isinstance(target, (VarRef, ArrayRef))
        return Assign(fold_constants(target), fold_constants(substitute(stmt.value, bindings)))
    if isinstance(stmt, If):
        return If(
            fold_constants(substitute(stmt.cond, bindings)),
            tuple(_substitute_stmt(s, var, replacement) for s in stmt.then_body),
            tuple(_substitute_stmt(s, var, replacement) for s in stmt.else_body),
        )
    if isinstance(stmt, For):
        # Nested loops were already normalized bottom-up; their index
        # variables are distinct from ``var`` by semantic checking.
        return For(
            stmt.var, stmt.lower, stmt.upper, stmt.step,
            tuple(_substitute_stmt(s, var, replacement) for s in stmt.body),
        )
    if isinstance(stmt, RotateRegisters):
        return stmt
    raise TypeError(f"unknown statement node {type(stmt).__name__}")
