"""Scalar replacement with register rotation and redundant-write
elimination (Section 4, Figure 1(c)).

Replaces array references with compiler-introduced registers according to
the strategies chosen by :class:`repro.analysis.ReuseAnalysis`:

* **INVARIANT** groups load into a register in the body of the deepest
  loop their subscripts mention, are used from the register throughout
  the inner loops, and (if written) store back once at the end of that
  body — eliminating the redundant per-iteration memory writes of an
  accumulation like ``D[j] = D[j] + ...``.
* **ROTATING** groups get a register bank per distinct offset; the bank's
  head register serves every use, a ``rotate_registers`` statement at the
  end of the rotation loop advances it, and loads happen only on the
  first iteration of the carrier loop, guarded by
  ``if (carrier == first)``.  The pipeline later peels that iteration so
  the steady-state body has no conditionals (Section 4, "Loop Peeling").
* **BODY_ONLY** groups merge duplicate reads of the same element within
  one (unrolled) body through a temporary (Figure 1(c)'s ``S_0``).

Safety: an array is replaced only if all of its accesses participate in
strategies that cannot alias behind the registers' back — one uniformly
generated set, or several sets that are all read-only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.reuse import ReuseAnalysis, ReuseGroup, ReuseKind
from repro.errors import TransformError
from repro.ir.expr import ArrayRef, BinOp, Expr, IntLit, VarRef
from repro.ir.nest import LoopNest
from repro.ir.stmt import Assign, For, If, RotateRegisters, Stmt
from repro.ir.symbols import Program, VarDecl


@dataclass
class ReplacementStats:
    """What scalar replacement did, for reporting and tests."""

    registers_added: int = 0
    reads_removed: int = 0
    writes_removed: int = 0
    rotating_banks: int = 0
    groups_applied: List[ReuseGroup] = field(default_factory=list)
    groups_skipped: List[ReuseGroup] = field(default_factory=list)


@dataclass
class ScalarReplacementResult:
    program: Program
    stats: ReplacementStats
    #: Depths of carrier loops that now contain first-iteration load
    #: guards; the pipeline peels these (outermost first).
    carriers_to_peel: List[int] = field(default_factory=list)


def scalar_replace(
    program: Program,
    exploit_outer_loops: bool = True,
    register_cap: Optional[int] = None,
) -> ScalarReplacementResult:
    """Run scalar replacement over the program's loop nest.

    Args:
        program: the (typically already unrolled) program.
        exploit_outer_loops: when False, reuse carried by outer loops is
            ignored (no rotating banks) — the Carr–Kennedy baseline the
            paper extends; used by the ablation benchmark.
        register_cap: if given, rotating groups are dropped
            (largest first) until the register estimate fits — the
            fallback when Section 5.4's tiling is not applied.
    """
    nest = LoopNest(program)
    reuse = ReuseAnalysis.run(nest)
    chosen, skipped = _choose_groups(reuse, exploit_outer_loops, register_cap)

    builder = _Rewriter(program, nest)
    stats = ReplacementStats(groups_skipped=skipped)
    carriers: Set[int] = set()
    for group in chosen:
        if group.kind is ReuseKind.INVARIANT:
            builder.apply_invariant(group, stats)
        elif group.kind is ReuseKind.ROTATING:
            builder.apply_rotating(group, stats)
            carriers.add(group.carrier_depth)
        elif group.kind is ReuseKind.PIPELINE:
            needs_peel = builder.apply_pipeline(group, stats)
            if needs_peel:
                carriers.add(nest.depth - 1)
        elif group.kind is ReuseKind.BODY_ONLY:
            builder.apply_body_only(group, stats)
        stats.groups_applied.append(group)
    new_program = builder.build()
    return ScalarReplacementResult(
        program=new_program,
        stats=stats,
        carriers_to_peel=sorted(carriers),
    )


def _choose_groups(
    reuse: ReuseAnalysis,
    exploit_outer_loops: bool,
    register_cap: Optional[int],
) -> Tuple[List[ReuseGroup], List[ReuseGroup]]:
    """Select the groups that are both profitable and safe to apply."""
    by_array: Dict[str, List[ReuseGroup]] = {}
    for group in reuse.groups:
        by_array.setdefault(group.array, []).append(group)

    chosen: List[ReuseGroup] = []
    skipped: List[ReuseGroup] = []
    for array, groups in by_array.items():
        replaceable = [g for g in groups if g.kind is not ReuseKind.NONE]
        if not exploit_outer_loops:
            dropped = [g for g in replaceable if g.kind is ReuseKind.ROTATING]
            skipped.extend(dropped)
            replaceable = [g for g in replaceable if g.kind is not ReuseKind.ROTATING]
        if len(groups) > 1 and any(g.has_write for g in groups):
            # Another uniformly generated set writes this array: registers
            # could go stale.  Skip the whole array.
            skipped.extend(replaceable)
            continue
        chosen.extend(replaceable)
        skipped.extend(g for g in groups if g.kind is ReuseKind.NONE)

    if register_cap is not None:
        chosen.sort(key=lambda g: g.registers_needed)
        total = sum(g.registers_needed for g in chosen)
        while chosen and total > register_cap:
            dropped = chosen.pop()  # largest consumer
            total -= dropped.registers_needed
            skipped.append(dropped)
    return chosen, skipped


class _Rewriter:
    """Accumulates reference rewrites and per-depth insertions, then
    rebuilds the program in one pass."""

    def __init__(self, program: Program, nest: LoopNest):
        self.program = program
        self.nest = nest
        self.taken: Set[str] = {decl.name for decl in program.decls}
        self.taken.update(nest.index_vars)
        self.new_decls: List[VarDecl] = []
        # id(ArrayRef) -> replacement VarRef
        self.rewrites: Dict[int, VarRef] = {}
        # depth -> statements inserted at the start / end of that loop's
        # body; depth -1 means before/after the whole nest.
        self.pre: Dict[int, List[Stmt]] = {}
        self.post: Dict[int, List[Stmt]] = {}

    # -- strategies ---------------------------------------------------------

    def apply_invariant(self, group: ReuseGroup, stats: ReplacementStats) -> None:
        element_type = self.program.decl(group.array).type
        for offset in group.distinct_offsets:
            members = [m for m in group.accesses if m.constant_vector() == offset]
            register = self._fresh(_offset_name(group.array, offset), element_type)
            representative = members[0].ref
            # A write-only set needs no initial load — unless a zero-trip
            # inner loop could leave the register unwritten, in which
            # case the load makes the unconditional write-back a no-op.
            has_reads = any(member.is_read for member in members)
            needs_load = has_reads or self._inner_loops_may_skip(
                group.hoist_depth, max(member.depth for member in members)
            )
            if needs_load:
                self.pre.setdefault(group.hoist_depth, []).append(
                    Assign(VarRef(register), representative)
                )
            has_write = False
            for member in members:
                self.rewrites[id(member.ref)] = VarRef(register)
                if member.is_write:
                    has_write = True
                    stats.writes_removed += 1
                else:
                    stats.reads_removed += 1
            if has_write:
                write_back = ArrayRef(representative.array, representative.indices)
                self.post.setdefault(group.hoist_depth, []).append(
                    Assign(write_back, VarRef(register))
                )
                stats.writes_removed -= 1  # one store survives
            if needs_load:
                stats.reads_removed -= 1  # one load survives
            stats.registers_added += 1

    def _inner_loops_may_skip(self, hoist_depth: int, member_depth: int) -> bool:
        """True if any loop between the hoist level and the accesses can
        execute zero iterations."""
        trips = self.nest.trip_counts
        return any(
            trips[depth] == 0
            for depth in range(hoist_depth + 1, member_depth + 1)
        )

    def apply_rotating(self, group: ReuseGroup, stats: ReplacementStats) -> None:
        element_type = self.program.decl(group.array).type
        rotation_depth = group.hoist_depth  # deepest mentioned loop
        carrier = self.nest.loop_at(group.carrier_depth)
        bank_size = group.registers_needed // max(len(group.distinct_offsets), 1)
        if bank_size < 1:
            raise TransformError(
                f"rotating group for {group.array!r} computed an empty bank",
                kernel=self.program.name, stage="scalar_replacement",
                loop=carrier.var,
            )
        for offset in group.distinct_offsets:
            members = [m for m in group.accesses if m.constant_vector() == offset]
            base = _offset_name(group.array, offset)
            bank = [
                self._fresh(f"{base}_{slot}", element_type) for slot in range(bank_size)
            ]
            representative = members[0].ref
            load = Assign(VarRef(bank[0]), representative)
            guard = If(
                BinOp("==", VarRef(carrier.var), IntLit(carrier.lower)),
                (load,),
            )
            self.pre.setdefault(rotation_depth, []).append(guard)
            for member in members:
                self.rewrites[id(member.ref)] = VarRef(bank[0])
                stats.reads_removed += 1
            if bank_size > 1:
                self.post.setdefault(rotation_depth, []).append(
                    RotateRegisters(tuple(bank))
                )
            stats.registers_added += bank_size
            stats.rotating_banks += 1

    def apply_pipeline(self, group: ReuseGroup, stats: ReplacementStats) -> bool:
        """Shift-register chains for innermost-carried reuse.

        Per chain: ``span`` registers, one unguarded load of the leading
        offset each iteration, trailing registers initialized on the
        innermost loop's first iteration (guard peeled later), and a
        rotation at the end of the body.  Returns True when any guard
        was emitted (the innermost loop then needs peeling).
        """
        element_type = self.program.decl(group.array).type
        depth = group.hoist_depth  # the innermost loop's depth
        inner = self.nest.loop_at(depth)
        needs_peel = False
        for chain in group.chains:
            members = [
                m for m in group.accesses
                if m.constant_vector() in chain.member_offsets
            ]
            base = _offset_name(group.array, (chain.min_offset,) + chain.key)
            bank = [
                self._fresh(f"{base}_{slot}", element_type)
                for slot in range(chain.span)
            ]
            anchor = min(members, key=lambda m: m.constant_vector()[chain.dim])
            anchor_offset = anchor.constant_vector()[chain.dim]

            def ref_for_slot(slot: int) -> ArrayRef:
                delta = (chain.min_offset + slot * chain.advance) - anchor_offset
                indices = list(anchor.ref.indices)
                if delta:
                    indices[chain.dim] = BinOp(
                        "+", indices[chain.dim], IntLit(delta)
                    )
                return ArrayRef(anchor.ref.array, tuple(indices))

            if chain.span > 1:
                init_loads = tuple(
                    Assign(VarRef(bank[slot]), ref_for_slot(slot))
                    for slot in range(chain.span - 1)
                )
                guard = If(
                    BinOp("==", VarRef(inner.var), IntLit(inner.lower)),
                    init_loads,
                )
                self.pre.setdefault(depth, []).append(guard)
                needs_peel = True
            head_load = Assign(VarRef(bank[-1]), ref_for_slot(chain.span - 1))
            self.pre.setdefault(depth, []).append(head_load)
            for member in members:
                slot = chain.register_slot(member.constant_vector())
                self.rewrites[id(member.ref)] = VarRef(bank[slot])
                stats.reads_removed += 1
            stats.reads_removed -= 1  # the head load survives
            if chain.span > 1:
                self.post.setdefault(depth, []).append(
                    RotateRegisters(tuple(bank))
                )
            stats.registers_added += chain.span
        return needs_peel

    def apply_body_only(self, group: ReuseGroup, stats: ReplacementStats) -> None:
        element_type = self.program.decl(group.array).type
        for offset in group.distinct_offsets:
            members = [
                m for m in group.accesses
                if m.constant_vector() == offset and m.is_read
            ]
            if len(members) < 2:
                continue
            register = self._fresh(_offset_name(group.array, offset), element_type)
            depth = max(member.depth for member in members)
            representative = members[0].ref
            self.pre.setdefault(depth, []).append(
                Assign(VarRef(register), representative)
            )
            for member in members:
                self.rewrites[id(member.ref)] = VarRef(register)
                stats.reads_removed += 1
            stats.reads_removed -= 1  # the load itself
            stats.registers_added += 1

    # -- rebuild ------------------------------------------------------------

    def build(self) -> Program:
        new_body: List[Stmt] = []
        for stmt in self.program.body:
            if isinstance(stmt, For) and stmt is self.nest.outermost:
                new_body.extend(self.pre.get(-1, []))
                new_body.append(self._rebuild_loop(stmt, depth=0))
                new_body.extend(self.post.get(-1, []))
            else:
                new_body.append(self._rewrite_stmt(stmt))
        program = self.program.with_body(tuple(new_body))
        if self.new_decls:
            program = program.with_decl(*self.new_decls)
        return program

    def _rebuild_loop(self, loop: For, depth: int) -> For:
        body: List[Stmt] = list(self.pre.get(depth, []))
        for stmt in loop.body:
            if isinstance(stmt, For):
                body.append(self._rebuild_loop(stmt, depth + 1))
            else:
                body.append(self._rewrite_stmt(stmt))
        body.extend(self.post.get(depth, []))
        return For(loop.var, loop.lower, loop.upper, loop.step, tuple(body))

    def _rewrite_stmt(self, stmt: Stmt) -> Stmt:
        if isinstance(stmt, Assign):
            target = self._rewrite_expr(stmt.target)
            if not isinstance(target, (VarRef, ArrayRef)):
                raise TransformError("rewrite produced a non-lvalue target",
                                     stage="scalar_replacement")
            return Assign(target, self._rewrite_expr(stmt.value))
        if isinstance(stmt, If):
            return If(
                self._rewrite_expr(stmt.cond),
                tuple(self._rewrite_stmt(s) for s in stmt.then_body),
                tuple(self._rewrite_stmt(s) for s in stmt.else_body),
            )
        if isinstance(stmt, For):
            return For(
                stmt.var, stmt.lower, stmt.upper, stmt.step,
                tuple(self._rewrite_stmt(s) for s in stmt.body),
            )
        return stmt

    def _rewrite_expr(self, expr: Expr) -> Expr:
        replacement = self.rewrites.get(id(expr))
        if replacement is not None:
            return replacement
        if isinstance(expr, ArrayRef):
            return ArrayRef(
                expr.array, tuple(self._rewrite_expr(e) for e in expr.indices)
            )
        if isinstance(expr, BinOp):
            return BinOp(
                expr.op, self._rewrite_expr(expr.left), self._rewrite_expr(expr.right)
            )
        from repro.ir.expr import Call, UnOp
        if isinstance(expr, UnOp):
            return UnOp(expr.op, self._rewrite_expr(expr.operand))
        if isinstance(expr, Call):
            return Call(expr.name, tuple(self._rewrite_expr(a) for a in expr.args))
        return expr

    def _fresh(self, base: str, element_type) -> str:
        name = base
        counter = 0
        while name in self.taken:
            counter += 1
            name = f"{base}_{counter}"
        self.taken.add(name)
        self.new_decls.append(VarDecl(name, element_type))
        return name


def _offset_name(array: str, offset: Tuple[int, ...]) -> str:
    """Paper-style register names: D + (0,) -> d_0."""
    suffix = "_".join(str(part) for part in offset)
    return f"{array.lower()}_{suffix}".replace("-", "m")
