"""Loop interchange.

Section 5.4 caps register pressure by tiling: strip-mine a loop and move
the tile loop *outside* the reuse carrier so the rotating banks only
span one tile.  The moving part is this transform.

Legality is the classic direction-vector test: after permuting the
distance vector, every dependence must stay lexicographically
non-negative, where an unconstrained entry is treated as "can be
negative" (strict).  Dependences between accesses of one recognized
reduction (``A[j] = A[j] + ...``) are exempt — reordering a reduction's
iterations only reorders an associative-commutative accumulation.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.dependence import Dependence, DependenceGraph, DependenceKind
from repro.analysis.reduction import find_reductions, same_reduction
from repro.errors import TransformError
from repro.ir.nest import LoopNest
from repro.ir.stmt import For, Stmt
from repro.ir.symbols import Program


def interchange_loops(program: Program, outer_var: str, inner_var: str) -> Program:
    """Swap two perfectly-nested adjacent loops of the program's nest.

    ``outer_var`` must be the loop immediately enclosing ``inner_var``,
    with no other statements between them (a perfectly nested pair).
    Raises :class:`TransformError` if the pair is not adjacent/perfect or
    if a dependence forbids the swap.
    """
    nest = LoopNest(program)
    outer_depth = nest.depth_of(outer_var)
    inner_depth = nest.depth_of(inner_var)
    if inner_depth != outer_depth + 1:
        raise TransformError(
            f"loops {outer_var!r} and {inner_var!r} are not adjacent "
            f"(depths {outer_depth} and {inner_depth})",
            kernel=program.name, stage="interchange", loop=outer_var,
        )
    outer = nest.loop_at(outer_depth)
    if len(outer.body) != 1 or not isinstance(outer.body[0], For):
        raise TransformError(
            f"loop {outer_var!r} has statements besides the {inner_var!r} loop; "
            "the pair must be perfectly nested",
            kernel=program.name, stage="interchange", loop=outer_var,
        )
    _check_legality(program, nest, outer_depth)

    inner = outer.body[0]
    swapped = For(
        inner.var, inner.lower, inner.upper, inner.step,
        (For(outer.var, outer.lower, outer.upper, outer.step, inner.body),),
    )

    def rebuild(stmt: Stmt) -> Stmt:
        if stmt is outer:
            return swapped
        if isinstance(stmt, For):
            return For(
                stmt.var, stmt.lower, stmt.upper, stmt.step,
                tuple(rebuild(s) for s in stmt.body),
            )
        return stmt

    return program.with_body(tuple(rebuild(stmt) for stmt in program.body))


def _check_legality(program: Program, nest: LoopNest, depth: int) -> None:
    """Strict direction-vector legality with reduction exemption."""
    graph = DependenceGraph.build(nest)
    reductions = find_reductions(program.body)
    for dep in graph.true_dependences():
        if same_reduction(reductions, dep.source.ref, dep.sink.ref):
            continue
        if dep.distance is None:
            raise TransformError(
                f"cannot prove interchange legal: inconsistent dependence "
                f"{dep.source} -> {dep.sink}",
                kernel=program.name, stage="interchange",
            )
        permuted = _swap(dep.distance, depth)
        if not _strictly_nonnegative(permuted):
            raise TransformError(
                f"interchange reverses dependence {dep}",
                kernel=program.name, stage="interchange",
            )


def _swap(distance: Tuple, depth: int) -> Tuple:
    entries = list(distance)
    entries[depth], entries[depth + 1] = entries[depth + 1], entries[depth]
    return tuple(entries)


def _strictly_nonnegative(distance: Tuple) -> bool:
    """Lexicographic non-negativity with unconstrained entries treated as
    possibly negative (the conservative direction for reordering)."""
    for entry in distance:
        if entry is None:
            return False
        if entry != 0:
            return entry > 0
    return True
