"""Loop peeling and guard simplification.

Scalar replacement guards its rotating-bank loads with
``if (carrier == first_iteration)``.  Peeling the carrier's first
iteration specializes those guards away: in the peeled copy the
condition folds to true (the loads run unconditionally), and in the main
loop — whose lower bound moved past the first iteration — it folds to
false (the loads vanish).  The result is the paper's steady-state body
where every iteration performs the same memory accesses and high-level
synthesis can schedule them uniformly (Section 4, "Loop Peeling and
Loop-Invariant Code Motion").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import TransformError
from repro.ir.expr import (
    ArrayRef, BinOp, Call, Expr, IntLit, UnOp, VarRef, fold_constants,
)
from repro.ir.nest import LoopNest
from repro.ir.stmt import Assign, For, If, RotateRegisters, Stmt
from repro.ir.symbols import Program


def peel_loop(program: Program, var: str) -> Program:
    """Peel the first iteration of *every* loop with index variable ``var``.

    The peeled copy (index variable bound to the loop's lower bound and
    substituted into the body) precedes the remaining loop, whose lower
    bound advances by one step.  All occurrences are peeled because
    earlier peels replicate inner loops: after peeling MM's ``i`` loop
    there are two ``j`` loops, and both carry first-iteration load
    guards.  Guards decided by the peel are simplified in both copies.
    """
    found = False

    def rebuild(stmt: Stmt) -> List[Stmt]:
        nonlocal found
        if isinstance(stmt, For):
            body = tuple(out for inner in stmt.body for out in rebuild(inner))
            loop = For(stmt.var, stmt.lower, stmt.upper, stmt.step, body)
            if stmt.var != var:
                return [loop]
            found = True
            if loop.trip_count < 1:
                return [loop]
            peeled = _simplify_body(tuple(
                _substitute_and_fold(s, loop.var, loop.lower) for s in loop.body
            ))
            result = list(peeled)
            rest_lower = loop.lower + loop.step
            if rest_lower < loop.upper:
                result.append(
                    For(loop.var, rest_lower, loop.upper, loop.step, loop.body)
                )
            return result
        if isinstance(stmt, If):
            return [If(
                stmt.cond,
                tuple(out for s in stmt.then_body for out in rebuild(s)),
                tuple(out for s in stmt.else_body for out in rebuild(s)),
            )]
        return [stmt]

    new_body = tuple(out for stmt in program.body for out in rebuild(stmt))
    if not found:
        raise TransformError(
            f"no loop with index variable {var!r} to peel",
            kernel=program.name, stage="peel", loop=var,
        )
    return simplify_guards(program.with_body(new_body))


def simplify_guards(program: Program) -> Program:
    """Fold ``if`` statements whose conditions are decided by loop ranges.

    Understands conditions of the form ``var == constant`` (and constant
    conditions after folding) where ``var`` is an enclosing loop index:
    if the constant is outside the loop's iteration values the guard is
    dropped; if the loop executes exactly one iteration equal to it, the
    branch is spliced inline.
    """
    ranges: Dict[str, range] = {}

    def simplify(stmt: Stmt) -> List[Stmt]:
        if isinstance(stmt, For):
            ranges[stmt.var] = stmt.iteration_values()
            body = _splice(stmt.body, simplify)
            del ranges[stmt.var]
            return [For(stmt.var, stmt.lower, stmt.upper, stmt.step, body)]
        if isinstance(stmt, If):
            verdict = _decide(fold_constants(stmt.cond), ranges)
            if verdict is True:
                return list(_splice(stmt.then_body, simplify))
            if verdict is False:
                return list(_splice(stmt.else_body, simplify))
            return [If(
                fold_constants(stmt.cond),
                _splice(stmt.then_body, simplify),
                _splice(stmt.else_body, simplify),
            )]
        return [stmt]

    return program.with_body(_splice(program.body, simplify))


def _splice(body: Tuple[Stmt, ...], fn) -> Tuple[Stmt, ...]:
    return tuple(out for stmt in body for out in fn(stmt))


def _decide(cond: Expr, ranges: Dict[str, range]) -> Optional[bool]:
    """True/False when the condition is decided for every in-range value
    of the loop indices it mentions; None when genuinely dynamic."""
    if isinstance(cond, IntLit):
        return bool(cond.value)
    if isinstance(cond, BinOp) and cond.op == "==":
        var, literal = _var_and_literal(cond)
        if var is not None and var in ranges:
            values = ranges[var]
            if literal not in values:
                return False
            if len(values) == 1:
                return True
    return None


def _var_and_literal(cond: BinOp) -> Tuple[Optional[str], int]:
    if isinstance(cond.left, VarRef) and isinstance(cond.right, IntLit):
        return cond.left.name, cond.right.value
    if isinstance(cond.right, VarRef) and isinstance(cond.left, IntLit):
        return cond.right.name, cond.left.value
    return None, 0


def _substitute_and_fold(stmt: Stmt, var: str, value: int) -> Stmt:
    """Bind a loop index to a constant throughout a statement tree."""
    from repro.ir.expr import substitute
    bindings = {var: IntLit(value)}

    def walk(node: Stmt) -> Stmt:
        if isinstance(node, Assign):
            target = substitute(node.target, bindings)
            if not isinstance(target, (VarRef, ArrayRef)):
                raise TransformError("substitution produced a non-lvalue", stage="peel")
            return Assign(fold_constants(target), fold_constants(substitute(node.value, bindings)))
        if isinstance(node, If):
            return If(
                fold_constants(substitute(node.cond, bindings)),
                tuple(walk(s) for s in node.then_body),
                tuple(walk(s) for s in node.else_body),
            )
        if isinstance(node, For):
            if node.var == var:
                raise TransformError(
                    f"inner loop reuses index variable {var!r}",
                    stage="peel", loop=var,
                )
            return For(
                node.var, node.lower, node.upper, node.step,
                tuple(walk(s) for s in node.body),
            )
        return node

    return walk(stmt)


def _simplify_body(body: Tuple[Stmt, ...]) -> Tuple[Stmt, ...]:
    """Constant-condition folding inside an already-substituted body."""
    def simplify(stmt: Stmt) -> List[Stmt]:
        if isinstance(stmt, If):
            cond = fold_constants(stmt.cond)
            if isinstance(cond, IntLit):
                chosen = stmt.then_body if cond.value else stmt.else_body
                return list(_splice(chosen, simplify))
            return [If(cond, _splice(stmt.then_body, simplify),
                       _splice(stmt.else_body, simplify))]
        if isinstance(stmt, For):
            return [For(stmt.var, stmt.lower, stmt.upper, stmt.step,
                        _splice(stmt.body, simplify))]
        return [stmt]

    return _splice(body, simplify)
