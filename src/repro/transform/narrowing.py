"""Bitwidth narrowing: shrink declared types to what values require.

Consumes a :class:`repro.analysis.bitwidth.BitwidthReport` and rewrites
declarations to the narrowest two's-complement type that holds each
variable's inferred range.  Downstream consumers pick the savings up for
free: the synthesis estimator sizes operators and registers from the
declared widths, and the VHDL backend emits tighter integer ranges.

Narrowing is semantics-preserving because the inferred ranges are sound:
a value that always fits the narrow type wraps identically (i.e. never)
in both the original and the narrowed program.  The interpreter-backed
tests check exactly that.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.analysis.bitwidth import BitwidthReport, ValueRange, analyze_bitwidths
from repro.ir.symbols import Program, VarDecl


def narrow_types(
    program: Program,
    report: Optional[BitwidthReport] = None,
    input_ranges: Optional[Mapping[str, ValueRange]] = None,
) -> Program:
    """Return ``program`` with every declaration narrowed to its range.

    Pass a precomputed ``report`` to avoid re-analysis, or
    ``input_ranges`` to inform the analysis about input data bounds.
    """
    if report is None:
        report = analyze_bitwidths(program, input_ranges)
    new_decls = tuple(
        VarDecl(decl.name, report.narrowed_type(decl), decl.dims)
        for decl in program.decls
    )
    return Program(program.name, new_decls, program.body)


def narrowing_savings(program: Program, narrowed: Program) -> int:
    """Declared storage bits saved by narrowing (scalars + arrays)."""
    before = sum(decl.size_bits for decl in program.decls)
    after = sum(decl.size_bits for decl in narrowed.decls)
    return before - after
