"""Program transformations: unroll-and-jam, scalar replacement, peeling,
LICM, normalization, tiling, and the full Figure-3 pipeline."""

from repro.transform.interchange import interchange_loops
from repro.transform.licm import hoist_invariants
from repro.transform.narrowing import narrow_types, narrowing_savings
from repro.transform.normalize import normalize_loops
from repro.transform.peel import peel_loop, simplify_guards
from repro.transform.pipeline import (
    CompiledDesign, PipelineOptions, check_unroll_legality, compile_design,
)
from repro.transform.scalar_replacement import (
    ReplacementStats, ScalarReplacementResult, scalar_replace,
)
from repro.transform.tiling import tile_loop
from repro.transform.unroll import UnrollVector, unroll_and_jam

__all__ = [
    "CompiledDesign", "PipelineOptions", "ReplacementStats",
    "ScalarReplacementResult", "UnrollVector", "check_unroll_legality",
    "compile_design", "hoist_invariants", "interchange_loops",
    "narrow_types", "narrowing_savings", "normalize_loops", "peel_loop",
    "scalar_replace", "simplify_guards", "tile_loop", "unroll_and_jam",
]
